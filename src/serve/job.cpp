#include "serve/job.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "phy/registry.hpp"

namespace tinysdr::serve {

namespace {

using obs::JsonValue;
using obs::json_number;
using obs::json_quote;

// Integers ride in JSON doubles; beyond 2^53 they stop round-tripping.
constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

bool integral_in(const JsonValue& v, double lo, double hi, double* out) {
  if (!v.is_number()) return false;
  if (v.number != std::floor(v.number)) return false;
  if (v.number < lo || v.number > hi) return false;
  *out = v.number;
  return true;
}

/// Fetch an optional integral member into `out`; `error` names the field
/// on violation. Returns false only on a malformed present member.
bool opt_integral(const JsonValue& obj, const std::string& key, double lo,
                  double hi, std::optional<double>* out, std::string& error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  double value = 0.0;
  if (!integral_in(*v, lo, hi, &value)) {
    error = "'" + key + "' must be an integer in [" + json_number(lo) + ", " +
            json_number(hi) + "]";
    return false;
  }
  *out = value;
  return true;
}

bool parse_sweep(const JsonValue& v, const phy::Registry& registry,
                 std::size_t index, SweepSpec* out, std::string& error) {
  const std::string ctx = "sweeps[" + std::to_string(index) + "]: ";
  if (!v.is_object()) {
    error = ctx + "not an object";
    return false;
  }
  const JsonValue* phy_name = v.find("phy");
  if (phy_name == nullptr || !phy_name->is_string()) {
    error = ctx + "missing 'phy' name";
    return false;
  }
  const phy::RegisteredPhy* entry = registry.find_by_name(phy_name->text);
  if (entry == nullptr) {
    error = ctx + "unknown phy '" + phy_name->text + "'";
    return false;
  }
  out->phy = entry->id;

  const JsonValue* rssi = v.find("rssi");
  if (rssi == nullptr || !rssi->is_array() || rssi->items.empty()) {
    error = ctx + "'rssi' must be a non-empty array of numbers";
    return false;
  }
  out->rssi_dbm.clear();
  for (const JsonValue& x : rssi->items) {
    if (!x.is_number()) {
      error = ctx + "'rssi' must be a non-empty array of numbers";
      return false;
    }
    out->rssi_dbm.push_back(x.number);
  }

  std::optional<double> field;
  if (!opt_integral(v, "trials", 1, 1e6, &field, error)) {
    error = ctx + error;
    return false;
  }
  if (field) out->trials = static_cast<std::size_t>(*field);

  field.reset();
  if (!opt_integral(v, "payload_bytes", 1,
                    static_cast<double>(entry->max_payload), &field, error)) {
    error = ctx + error;
    return false;
  }
  if (field) out->payload_bytes = static_cast<std::size_t>(*field);

  field.reset();
  if (!opt_integral(v, "base_seed", 0, kMaxExactInteger, &field, error)) {
    error = ctx + error;
    return false;
  }
  if (field) out->base_seed = static_cast<std::uint64_t>(*field);

  // Unset pad/noise-figure canonicalise to the registry's calibrated
  // defaults here, so equivalent submissions share cache keys.
  field.reset();
  if (!opt_integral(v, "pad_samples", 0, 1e6, &field, error)) {
    error = ctx + error;
    return false;
  }
  out->pad_samples = field ? static_cast<std::size_t>(*field)
                           : entry->pad_samples;

  const JsonValue* nf = v.find("noise_figure_db");
  if (nf != nullptr && !nf->is_number()) {
    error = ctx + "'noise_figure_db' must be a number";
    return false;
  }
  out->noise_figure_db =
      nf != nullptr ? nf->number : entry->system_noise_figure_db;
  return true;
}

bool parse_fleet(const JsonValue& v, const phy::Registry& registry,
                 std::size_t index, FleetSpec* out, std::string& error) {
  const std::string ctx = "fleets[" + std::to_string(index) + "]: ";
  if (!v.is_object()) {
    error = ctx + "not an object";
    return false;
  }
  std::optional<double> field;
  if (!opt_integral(v, "nodes", 1, 1e5, &field, error)) {
    error = ctx + error;
    return false;
  }
  if (field) out->nodes = static_cast<std::size_t>(*field);

  field.reset();
  if (!opt_integral(v, "trials_per_node", 1, 1e6, &field, error)) {
    error = ctx + error;
    return false;
  }
  if (field) out->trials_per_node = static_cast<std::size_t>(*field);

  field.reset();
  if (!opt_integral(v, "payload_bytes", 1, 255, &field, error)) {
    error = ctx + error;
    return false;
  }
  if (field) out->payload_bytes = static_cast<std::size_t>(*field);

  field.reset();
  if (!opt_integral(v, "base_seed", 0, kMaxExactInteger, &field, error)) {
    error = ctx + error;
    return false;
  }
  if (field) out->base_seed = static_cast<std::uint64_t>(*field);

  field.reset();
  if (!opt_integral(v, "deployment_seed", 0, kMaxExactInteger, &field,
                    error)) {
    error = ctx + error;
    return false;
  }
  if (field) out->deployment_seed = static_cast<std::uint64_t>(*field);

  const JsonValue* phy_name = v.find("phy");
  if (phy_name != nullptr) {
    if (!phy_name->is_string() ||
        registry.find_by_name(phy_name->text) == nullptr) {
      error = ctx + "unknown phy";
      return false;
    }
    out->phy = registry.find_by_name(phy_name->text)->id;
  }
  return true;
}

void write_sweep(std::ostream& out, const SweepSpec& s) {
  out << "{\"phy\":" << json_quote(phy::protocol_name(s.phy)) << ",\"rssi\":[";
  for (std::size_t i = 0; i < s.rssi_dbm.size(); ++i) {
    if (i > 0) out << ",";
    out << json_number(s.rssi_dbm[i]);
  }
  out << "],\"trials\":" << s.trials
      << ",\"payload_bytes\":" << s.payload_bytes
      << ",\"base_seed\":" << s.base_seed;
  if (s.pad_samples) out << ",\"pad_samples\":" << *s.pad_samples;
  if (s.noise_figure_db)
    out << ",\"noise_figure_db\":" << json_number(*s.noise_figure_db);
  out << "}";
}

void write_fleet(std::ostream& out, const FleetSpec& f) {
  out << "{\"nodes\":" << f.nodes
      << ",\"trials_per_node\":" << f.trials_per_node
      << ",\"payload_bytes\":" << f.payload_bytes
      << ",\"base_seed\":" << f.base_seed
      << ",\"deployment_seed\":" << f.deployment_seed;
  if (f.phy) out << ",\"phy\":" << json_quote(phy::protocol_name(*f.phy));
  out << "}";
}

}  // namespace

void JobSpec::write_json(std::ostream& out) const {
  out << "{\"schema\":" << json_quote(kJobSchema)
      << ",\"name\":" << json_quote(name) << ",\"priority\":" << priority;
  if (deadline_s) out << ",\"deadline_s\":" << json_number(*deadline_s);
  out << ",\"sweeps\":[";
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    if (i > 0) out << ",";
    write_sweep(out, sweeps[i]);
  }
  out << "],\"fleets\":[";
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    if (i > 0) out << ",";
    write_fleet(out, fleets[i]);
  }
  out << "]}";
}

std::string JobSpec::canonical_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

std::optional<JobSpec> parse_job(std::string_view json, std::string& error) {
  auto doc = JsonValue::parse(json);
  if (!doc) {
    error = "job is not valid JSON";
    return std::nullopt;
  }
  return parse_job(*doc, error);
}

std::optional<JobSpec> parse_job(const JsonValue& doc, std::string& error) {
  const phy::Registry& registry = phy::Registry::builtin();
  if (!doc.is_object()) {
    error = "job is not a JSON object";
    return std::nullopt;
  }
  if (doc.string_or("schema", "") != kJobSchema) {
    error = "job schema must be '" + std::string(kJobSchema) + "'";
    return std::nullopt;
  }

  JobSpec job;
  const JsonValue* name = doc.find("name");
  if (name != nullptr) {
    if (!name->is_string() || name->text.empty()) {
      error = "'name' must be a non-empty string";
      return std::nullopt;
    }
    job.name = name->text;
  }

  std::optional<double> field;
  if (!opt_integral(doc, "priority", -1e6, 1e6, &field, error))
    return std::nullopt;
  if (field) job.priority = static_cast<int>(*field);

  const JsonValue* deadline = doc.find("deadline_s");
  if (deadline != nullptr) {
    if (!deadline->is_number() || !(deadline->number > 0.0)) {
      error = "'deadline_s' must be a positive number";
      return std::nullopt;
    }
    job.deadline_s = deadline->number;
  }

  const JsonValue* sweeps = doc.find("sweeps");
  if (sweeps != nullptr) {
    if (!sweeps->is_array()) {
      error = "'sweeps' must be an array";
      return std::nullopt;
    }
    for (std::size_t i = 0; i < sweeps->items.size(); ++i) {
      SweepSpec s;
      if (!parse_sweep(sweeps->items[i], registry, i, &s, error))
        return std::nullopt;
      job.sweeps.push_back(std::move(s));
    }
  }

  const JsonValue* fleets = doc.find("fleets");
  if (fleets != nullptr) {
    if (!fleets->is_array()) {
      error = "'fleets' must be an array";
      return std::nullopt;
    }
    for (std::size_t i = 0; i < fleets->items.size(); ++i) {
      FleetSpec f;
      if (!parse_fleet(fleets->items[i], registry, i, &f, error))
        return std::nullopt;
      job.fleets.push_back(f);
    }
  }

  if (job.sweeps.empty() && job.fleets.empty()) {
    error = "job has no sweeps and no fleets";
    return std::nullopt;
  }
  return job;
}

void JobResult::write_json(std::ostream& out) const {
  out << "{\"schema\":" << json_quote(kResultSchema) << ",\"job\":";
  job.write_json(out);
  out << ",\"sweeps\":[";
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"points\":[";
    for (std::size_t k = 0; k < sweeps[i].points.size(); ++k) {
      const phy::PointResult& p = sweeps[i].points[k];
      if (k > 0) out << ",";
      out << "[" << json_number(p.rssi_dbm) << "," << p.frames << ","
          << p.frame_errors << "," << p.bits << "," << p.bit_errors << ","
          << p.symbols << "," << p.symbol_errors << "]";
    }
    out << "]}";
  }
  out << "],\"fleets\":[";
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"per_node\":[";
    for (std::size_t k = 0; k < fleets[i].per_node.size(); ++k) {
      const testbed::PhyNodeResult& n = fleets[i].per_node[k];
      if (k > 0) out << ",";
      out << "[" << n.node_id << ","
          << json_quote(phy::protocol_name(n.protocol)) << ","
          << json_number(n.rssi_dbm) << "," << n.link.frames << ","
          << n.link.frame_errors << "," << n.link.bits << ","
          << n.link.bit_errors << "," << n.link.symbols << ","
          << n.link.symbol_errors << "]";
    }
    out << "]}";
  }
  out << "]}";
}

std::string JobResult::json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace tinysdr::serve
