#include "serve/cache.hpp"

#include <bit>
#include <cmath>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace tinysdr::serve {

namespace {

void bump(const char* name, double n = 1.0) {
  if (auto* m = obs::metrics()) m->counter(name).add(n);
}

std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

/// One journal line for an entry. The PointResult rides as a compact
/// array in the column order of JobResult sweeps: rssi, frames,
/// frame_errors, bits, bit_errors, symbols, symbol_errors.
std::string journal_line(const std::string& key,
                         const phy::PointResult& r) {
  std::ostringstream out;
  out << "{\"k\":" << obs::json_quote(key)
      << ",\"r\":[" << obs::json_number(r.rssi_dbm) << "," << r.frames << ","
      << r.frame_errors << "," << r.bits << "," << r.bit_errors << ","
      << r.symbols << "," << r.symbol_errors << "]}";
  return out.str();
}

/// Parse one journal line back; false on any structural violation.
bool parse_journal_line(const std::string& line, std::string* key,
                        phy::PointResult* result) {
  auto doc = obs::JsonValue::parse(line);
  if (!doc || !doc->is_object()) return false;
  const obs::JsonValue* k = doc->find("k");
  const obs::JsonValue* r = doc->find("r");
  if (k == nullptr || !k->is_string() || k->text.empty()) return false;
  if (r == nullptr || !r->is_array() || r->items.size() != 7) return false;
  for (const auto& v : r->items)
    if (!v.is_number()) return false;
  const auto& a = r->items;
  // Counts must be exact non-negative integers; a journal written by this
  // process always satisfies this, so anything else is corruption.
  for (std::size_t i = 1; i < 7; ++i)
    if (a[i].number < 0 || a[i].number != std::floor(a[i].number))
      return false;
  *key = k->text;
  result->rssi_dbm = a[0].number;
  result->frames = static_cast<std::uint64_t>(a[1].number);
  result->frame_errors = static_cast<std::uint64_t>(a[2].number);
  result->bits = static_cast<std::uint64_t>(a[3].number);
  result->bit_errors = static_cast<std::uint64_t>(a[4].number);
  result->symbols = static_cast<std::uint64_t>(a[5].number);
  result->symbol_errors = static_cast<std::uint64_t>(a[6].number);
  return true;
}

}  // namespace

std::string point_cache_key(std::string_view phy_name,
                            std::uint64_t point_seed, std::size_t trials,
                            std::size_t payload_bytes,
                            std::size_t pad_samples,
                            double noise_figure_db) {
  std::string key;
  key.reserve(96);
  key += "v";
  key += std::to_string(kCacheVersion);
  key += "|";
  key += phy_name;
  key += "|s=";
  key += hex64(point_seed);
  key += "|t=";
  key += std::to_string(trials);
  key += "|p=";
  key += std::to_string(payload_bytes);
  key += "|pad=";
  key += std::to_string(pad_samples);
  key += "|nf=";
  key += hex64(std::bit_cast<std::uint64_t>(noise_figure_db));
  return key;
}

SweepCache::SweepCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

std::size_t SweepCache::entry_bytes(const std::string& key) {
  // Key bytes + the PointResult payload + container bookkeeping. An
  // estimate, but a stable one: the budget is about bounding memory, not
  // accounting it to the byte.
  return key.size() + sizeof(phy::PointResult) + 64;
}

std::size_t SweepCache::attach_journal(const std::string& path) {
  std::scoped_lock lock{mu_};
  std::size_t applied = 0;
  {
    std::ifstream in{path};
    std::string line;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      std::string key;
      phy::PointResult result;
      if (!parse_journal_line(line, &key, &result)) {
        ++stats_.corrupt;
        bump("serve.cache.corrupt");
        continue;
      }
      insert_locked(key, result, /*journal=*/false);
      ++applied;
    }
  }
  journal_.open(path, std::ios::app);
  return applied;
}

std::optional<phy::PointResult> SweepCache::lookup(const std::string& key) {
  std::scoped_lock lock{mu_};
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    bump("serve.cache.misses");
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  bump("serve.cache.hits");
  return it->second->result;
}

void SweepCache::insert(const std::string& key,
                        const phy::PointResult& result) {
  std::scoped_lock lock{mu_};
  insert_locked(key, result, /*journal=*/true);
}

void SweepCache::insert_locked(const std::string& key,
                               const phy::PointResult& result, bool journal) {
  const std::size_t cost = entry_bytes(key);
  if (cost > max_bytes_) return;  // cache disabled or entry oversized

  auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic recomputation means a re-insert carries the same
    // value; just refresh recency (journal replay hits this on dedup).
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->result = result;
    return;
  }

  if (journal && journal_.is_open()) {
    journal_ << journal_line(key, result) << "\n";
    journal_.flush();  // a killed server loses at most a partial line
  }

  lru_.push_front(Entry{key, result});
  index_[key] = lru_.begin();
  bytes_ += cost;
  ++stats_.inserts;
  bump("serve.cache.inserts");

  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= entry_bytes(victim.key);
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    bump("serve.cache.evictions");
  }
}

CacheStats SweepCache::stats() const {
  std::scoped_lock lock{mu_};
  CacheStats s = stats_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace tinysdr::serve
