// The tinysdr_serve daemon's transport: a single-listener NDJSON server
// over a Unix-domain socket or local (127.0.0.1) TCP, plus the runner
// thread that drains the engine's job queue.
//
// Connections are handled one at a time in the accept loop — clients are
// short-lived CLI invocations, and job execution happens on the runner
// thread (with its own exec-pool parallelism), so the accept path is
// never the bottleneck. Tests run serve_forever() on a std::thread, speak
// the protocol over a socketpair-style client, then stop() — no separate
// process needed.
#pragma once

#include <atomic>
#include <string>
#include <thread>

#include "serve/protocol.hpp"

namespace tinysdr::serve {

class Engine;

struct ServerConfig {
  /// Unix-domain socket path; a stale file at the path is replaced.
  std::string unix_socket;
  /// Loopback TCP port; 0 picks an ephemeral port (read it back with
  /// tcp_port()), -1 disables TCP. Exactly one transport must be chosen.
  int tcp_port = -1;
};

class Server {
 public:
  Server(Engine& engine, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the job-runner thread. False (with a reason)
  /// on any socket failure; the server is then inert.
  [[nodiscard]] bool start(std::string& error);

  /// Accept/serve until a shutdown request arrives or stop() is called.
  void serve_forever();

  /// Thread-safe: unblocks serve_forever() and stops the runner.
  void stop();

  /// Resolved TCP port (after start() with tcp_port == 0).
  [[nodiscard]] int tcp_port() const { return resolved_port_; }

 private:
  void runner_loop();
  void handle_connection(int fd);

  Engine* engine_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int resolved_port_ = -1;
  std::atomic<bool> stop_{false};
  std::thread runner_;
};

}  // namespace tinysdr::serve
