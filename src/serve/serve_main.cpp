// tinysdr_serve — the testbed-as-a-service daemon.
//
// Owns one serve::Engine (job queue + sweep-point cache + journals) and
// serves the NDJSON protocol on a Unix socket or loopback TCP port until
// a {"type":"shutdown"} request or SIGINT/SIGTERM.
//
//   tinysdr_serve --socket /tmp/tinysdr.sock \
//       --cache-journal cache.ndjson --job-journal jobs.ndjson
//   tinysdr_serve --tcp 0            # ephemeral port, printed on stdout
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "phy/registry.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"

namespace {

tinysdr::serve::Server* g_server = nullptr;

void handle_signal(int /*sig*/) {
  if (g_server != nullptr) g_server->stop();
}

void usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " (--socket <path> | --tcp <port>) [--cache-journal <file>]\n"
         "       [--job-journal <file>] [--cache-bytes <n>] [--threads <n>]\n"
         "       [--max-attempts <n>]\n"
         "Campaign server: accepts tinysdr-job-v1 jobs over newline-"
         "delimited JSON,\nshards them across the worker pool, memoizes "
         "sweep points, journals for\nrestart-resume. --tcp 0 picks an "
         "ephemeral port (printed on stdout).\n";
}

}  // namespace

int main(int argc, char** argv) {
  tinysdr::serve::ServerConfig server_config;
  tinysdr::serve::EngineConfig engine_config;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "tinysdr_serve: missing value for " << arg << "\n";
        usage(std::cerr, argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout, argv[0]);
      return 0;
    } else if (arg == "--socket") {
      server_config.unix_socket = value();
    } else if (arg == "--tcp") {
      server_config.tcp_port = std::atoi(value());
    } else if (arg == "--cache-journal") {
      engine_config.cache_journal = value();
    } else if (arg == "--job-journal") {
      engine_config.job_journal = value();
    } else if (arg == "--cache-bytes") {
      engine_config.cache_bytes =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--threads") {
      engine_config.policy.threads =
          static_cast<std::size_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--max-attempts") {
      engine_config.max_attempts =
          static_cast<std::size_t>(std::strtoul(value(), nullptr, 10));
    } else {
      std::cerr << "tinysdr_serve: unknown argument '" << arg << "'\n";
      usage(std::cerr, argv[0]);
      return 2;
    }
  }

  tinysdr::serve::Engine engine{tinysdr::phy::Registry::builtin(),
                                engine_config};
  tinysdr::serve::Server server{engine, server_config};
  std::string error;
  if (!server.start(error)) {
    std::cerr << "tinysdr_serve: " << error << "\n";
    return 1;
  }

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (!server_config.unix_socket.empty())
    std::cout << "tinysdr_serve: listening on " << server_config.unix_socket
              << std::endl;
  else
    std::cout << "tinysdr_serve: listening on 127.0.0.1:" << server.tcp_port()
              << std::endl;

  server.serve_forever();
  std::cout << "tinysdr_serve: shutting down" << std::endl;
  return 0;
}
