// Newline-delimited JSON wire protocol between tinysdr_submit (or any
// client) and the campaign server. One request per line, one-or-more
// response lines per request; the transport (Unix socket, local TCP, a
// test's string) is someone else's problem — handle_line() is pure over
// an Engine, so the whole protocol is testable with no sockets.
//
// Requests (`type` selects):
//   {"type":"submit","job":{...tinysdr-job-v1...}}
//       -> {"ok":true,"id":1,"state":"queued"}
//   {"type":"status","id":1}
//       -> {"ok":true,"id":1,"state":"done","attempts":1,
//           "cache_hits":12,"cache_misses":3,"result_retained":true}
//   {"type":"result","id":1}
//       -> header {"ok":true,"id":1,"state":"done","lines":1} followed by
//          one line holding the raw tinysdr-result-v1 document — verbatim
//          server bytes, so clients can persist it without re-encoding
//          (re-serialising through a parser would reorder members and
//          break the byte-identity contract).
//   {"type":"stats"}    -> {"ok":true,"stats":{"serve.cache.hits":...,...}}
//   {"type":"ping"}     -> {"ok":true,"pong":true}
//   {"type":"shutdown"} -> {"ok":true,"stopping":true} and the daemon exits
//
// Errors: {"ok":false,"error":"..."} (plus "state" when a result is just
// not ready yet). Unknown types and malformed JSON are errors, never
// crashes — this is the daemon's ingest path, so it must shrug off junk.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tinysdr::serve {

class Engine;

struct Response {
  std::vector<std::string> lines;
  bool submitted = false;  ///< a job was enqueued (daemon wakes its runner)
  bool shutdown = false;   ///< client asked the daemon to exit
};

[[nodiscard]] Response handle_line(Engine& engine, std::string_view line);

}  // namespace tinysdr::serve
