// tinysdr_submit — CLI client for the tinysdr_serve campaign daemon.
//
// Speaks the one-line-JSON protocol over a Unix socket or loopback TCP:
//
//   tinysdr_submit --socket /tmp/tinysdr.sock --job campaign.json \
//       --wait --out result.json --summary summary.json
//   tinysdr_submit --tcp 43117 --stats
//   tinysdr_submit --socket /tmp/tinysdr.sock --shutdown
//
// --out writes the server's result document verbatim (byte-identical to
// what the engine produced — no client-side re-encoding). --summary
// writes a small tinysdr-bench-v1 document with the job's cache-hit
// scalars so scripts/check_bench_json.py can gate on hit rate.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/json.hpp"

namespace {

using tinysdr::obs::JsonValue;
using tinysdr::obs::json_number;
using tinysdr::obs::json_quote;

void usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " (--socket <path> | --tcp <port>) <action> [options]\n"
         "actions:\n"
         "  --job <file>      submit a tinysdr-job-v1 document\n"
         "  --stats           print server counters as JSON\n"
         "  --ping            liveness check\n"
         "  --shutdown        ask the daemon to exit\n"
         "options for --job:\n"
         "  --wait            poll until the job finishes, then fetch it\n"
         "  --out <file>      write the result document (verbatim bytes)\n"
         "  --summary <file>  write tinysdr-bench-v1 cache-hit summary\n"
         "  --timeout <sec>   give up waiting after this long (default 300)\n"
         "  --poll-ms <ms>    status poll interval (default 50)\n";
}

/// Minimal blocking line-oriented client over one connected socket.
class Client {
 public:
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connect_unix(const std::string& path, std::string& error) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      error = "socket path too long: " + path;
      return false;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      error = "socket(): " + std::string(std::strerror(errno));
      return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      error = "connect(" + path + "): " + std::string(std::strerror(errno));
      return false;
    }
    return true;
  }

  bool connect_tcp(int port, std::string& error) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      error = "socket(): " + std::string(std::strerror(errno));
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      error = "connect(127.0.0.1:" + std::to_string(port) +
              "): " + std::string(std::strerror(errno));
      return false;
    }
    return true;
  }

  bool send_line(const std::string& line) {
    std::string framed = line;
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool read_line(std::string& line) {
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;  // server hung up mid-line
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

int fail(const std::string& message) {
  std::cerr << "tinysdr_submit: " << message << "\n";
  return 1;
}

/// One round trip; exits the process on transport failure or server error.
JsonValue request(Client& client, const std::string& line) {
  std::string reply;
  if (!client.send_line(line) || !client.read_line(reply)) {
    std::exit(fail("lost connection to server"));
  }
  auto doc = JsonValue::parse(reply);
  if (!doc || !doc->is_object())
    std::exit(fail("unparseable server reply: " + reply));
  if (!doc->bool_or("ok", false) &&
      std::string_view{doc->string_or("error", "")} != "result not available")
    std::exit(fail("server error: " +
                   std::string(doc->string_or("error", "unknown"))));
  return std::move(*doc);
}

bool write_file(const std::string& path, const std::string& content,
                std::string& error) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << content;
  out.close();
  if (!out) {
    error = "failed to write " + path;
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int tcp_port = -1;
  std::string job_file;
  std::string out_file;
  std::string summary_file;
  bool wait = false;
  bool stats = false;
  bool ping = false;
  bool shutdown = false;
  double timeout_s = 300.0;
  int poll_ms = 50;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "tinysdr_submit: missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout, argv[0]);
      return 0;
    } else if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--tcp") {
      tcp_port = std::atoi(value());
    } else if (arg == "--job") {
      job_file = value();
    } else if (arg == "--out") {
      out_file = value();
    } else if (arg == "--summary") {
      summary_file = value();
    } else if (arg == "--wait") {
      wait = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--ping") {
      ping = true;
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else if (arg == "--timeout") {
      timeout_s = std::atof(value());
    } else if (arg == "--poll-ms") {
      poll_ms = std::atoi(value());
    } else {
      std::cerr << "tinysdr_submit: unknown argument '" << arg << "'\n";
      usage(std::cerr, argv[0]);
      return 2;
    }
  }

  const int actions = int(!job_file.empty()) + int(stats) + int(ping) +
                      int(shutdown);
  if (actions != 1) {
    usage(std::cerr, argv[0]);
    return fail("choose exactly one of --job/--stats/--ping/--shutdown");
  }
  if ((socket_path.empty()) == (tcp_port < 0)) {
    usage(std::cerr, argv[0]);
    return fail("choose exactly one of --socket and --tcp");
  }

  Client client;
  std::string error;
  const bool connected = socket_path.empty()
                             ? client.connect_tcp(tcp_port, error)
                             : client.connect_unix(socket_path, error);
  if (!connected) return fail(error);

  if (ping) {
    request(client, R"({"type":"ping"})");
    std::cout << "pong\n";
    return 0;
  }
  if (shutdown) {
    request(client, R"({"type":"shutdown"})");
    std::cout << "server stopping\n";
    return 0;
  }
  if (stats) {
    std::string reply;
    if (!client.send_line(R"({"type":"stats"})") ||
        !client.read_line(reply))
      return fail("lost connection to server");
    std::cout << reply << "\n";
    return 0;
  }

  // --job: read the job document; the wire is one-request-per-line, so
  // fold the (typically pretty-printed) file onto one line. Newlines are
  // insignificant JSON whitespace — raw newlines can't occur inside a
  // valid JSON string — so this never changes the document's meaning.
  std::ifstream in{job_file, std::ios::binary};
  if (!in) return fail("cannot read job file " + job_file);
  std::ostringstream raw;
  raw << in.rdbuf();
  std::string job_text = raw.str();
  for (char& c : job_text)
    if (c == '\n' || c == '\r') c = ' ';

  const JsonValue submitted =
      request(client, R"({"type":"submit","job":)" + job_text + "}");
  const auto id = static_cast<std::uint64_t>(submitted.number_or("id", 0));
  std::cout << "submitted job " << id << "\n";

  if (!wait) return 0;

  const std::string status_request =
      R"({"type":"status","id":)" + std::to_string(id) + "}";
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_s));
  JsonValue status;
  for (;;) {
    status = request(client, status_request);
    const std::string_view state = status.string_or("state", "");
    if (state == "done") break;
    if (state == "failed")
      return fail("job " + std::to_string(id) + " failed: " +
                  std::string(status.string_or("error", "unknown")));
    if (std::chrono::steady_clock::now() >= deadline)
      return fail("timed out waiting for job " + std::to_string(id));
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }

  const std::string result_request =
      R"({"type":"result","id":)" + std::to_string(id) + "}";
  std::string header;
  std::string result;
  if (!client.send_line(result_request) || !client.read_line(header) ||
      !client.read_line(result))
    return fail("lost connection fetching result");
  auto header_doc = JsonValue::parse(header);
  if (!header_doc || !header_doc->bool_or("ok", false))
    return fail("result fetch failed: " + header);

  if (!out_file.empty()) {
    if (!write_file(out_file, result + "\n", error)) return fail(error);
    std::cout << "result -> " << out_file << "\n";
  } else {
    std::cout << result << "\n";
  }

  if (!summary_file.empty()) {
    const double hits = status.number_or("cache_hits", 0.0);
    const double misses = status.number_or("cache_misses", 0.0);
    const double points = hits + misses;
    std::ostringstream summary;
    summary << "{\"schema\":\"tinysdr-bench-v1\","
            << "\"experiment\":\"serve_submit\",\"scalars\":{"
            << "\"attempts\":" << json_number(status.number_or("attempts", 0))
            << ",\"cache_hit_rate\":"
            << json_number(points > 0 ? hits / points : 0.0)
            << ",\"cache_hits\":" << json_number(hits)
            << ",\"cache_misses\":" << json_number(misses)
            << ",\"job_id\":" << json_number(static_cast<double>(id))
            << ",\"points\":" << json_number(points) << "},\"series\":{}}\n";
    if (!write_file(summary_file, summary.str(), error)) return fail(error);
    std::cout << "summary -> " << summary_file << "\n";
  }
  return 0;
}
