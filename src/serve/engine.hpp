// serve::Engine — the campaign server's core, usable with no sockets.
//
// The engine owns the job queue (priority + submission order), the
// content-addressed sweep-point cache, and the execution path: each job's
// sweeps run through phy::LinkSimulator sharded across exec::WorkerPool,
// each fleet through testbed::run_phy_campaign, under the job's wall-clock
// deadline. Because point seeds are grid-independent and cached points are
// byte-identical to fresh ones, a job's tinysdr-result-v1 JSON is the same
// bytes whether it ran serially, sharded, through the daemon, mostly from
// cache, or resumed after a restart.
//
// Persistence is two append-only journals: the cache journal (see
// cache.hpp) and a job journal of submit/done/fail lines. A restarted
// engine replays both — finished jobs are remembered (their result bytes
// are not retained; resubmitting regenerates them from cache, which is
// ~free), unfinished jobs are re-queued, and any sweep points a killed
// run already computed come back as cache hits.
//
// Thread-safety: every public method may be called from any thread. One
// worker (the daemon's runner thread, or a test calling run_next) executes
// at most one job at a time; the job's internal parallelism comes from the
// exec pool.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "exec/policy.hpp"
#include "serve/cache.hpp"
#include "serve/job.hpp"

namespace tinysdr::phy {
class Registry;
}

namespace tinysdr::serve {

struct EngineConfig {
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Journal paths; empty disables persistence.
  std::string cache_journal;
  std::string job_journal;
  /// A deadline-partial job re-queues this many times before failing.
  std::size_t max_attempts = 3;
  /// Execution policy for job parallel regions (threads, grain).
  exec::ExecPolicy policy{};
};

enum class JobState { kQueued, kRunning, kDone, kFailed };

[[nodiscard]] const char* to_string(JobState state);

struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  std::size_t attempts = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// False for a job finished before a restart: completion is remembered
  /// in the journal but the result bytes are not; resubmit to regenerate.
  bool result_retained = false;
  std::string error;  ///< non-empty iff kFailed
};

class Engine {
 public:
  explicit Engine(const phy::Registry& registry, EngineConfig config = {});

  /// Enqueue a validated job; returns its id (1-based, submission order,
  /// including jobs replayed from the journal).
  std::uint64_t submit(JobSpec job);

  /// Parse + validate + enqueue a tinysdr-job-v1 document.
  [[nodiscard]] std::optional<std::uint64_t> submit_json(
      std::string_view json, std::string& error);

  /// Execute the best queued job (highest priority, then lowest id).
  /// Returns its id, or nullopt when the queue is empty.
  std::optional<std::uint64_t> run_next();

  /// Drain the queue; returns the number of jobs executed (re-queued
  /// deadline-partial jobs count once per attempt).
  std::size_t run_all();

  /// Block until a job is queued or `timeout` elapses; true when work is
  /// available. The daemon's runner thread idles here.
  bool wait_for_job(std::chrono::milliseconds timeout);

  [[nodiscard]] std::optional<JobStatus> status(std::uint64_t id) const;
  /// The finished job's result document bytes; nullopt unless kDone with
  /// a retained result.
  [[nodiscard]] std::optional<std::string> result_json(std::uint64_t id) const;

  /// serve.* counters as a deterministic name->value map (cache hit/miss/
  /// evict/corrupt, job and point tallies).
  [[nodiscard]] std::map<std::string, double> stats() const;

  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] const SweepCache& cache() const { return cache_; }

 private:
  struct JobRecord {
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::size_t attempts = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    bool result_retained = false;
    std::string error;
    std::optional<JobResult> result;
  };

  struct RunTally {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t computed = 0;  ///< points actually run (and now cached)
    bool complete = true;
  };

  /// Execute one sweep: cached points filled from the cache, missing ones
  /// run (sharded) and inserted. `budget` is the job's remaining
  /// wall-clock; incomplete runs still cache every finished point.
  SweepResult run_sweep(const SweepSpec& spec,
                        std::optional<Seconds> budget, RunTally* tally);

  void append_job_journal(const std::string& line);
  std::size_t replay_job_journal(const std::string& path);
  std::uint64_t submit_locked(JobSpec job, bool journal);

  const phy::Registry* registry_;
  EngineConfig config_;
  SweepCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, JobRecord> jobs_;
  std::ofstream job_journal_;
  // serve.jobs.* / serve.points.* tallies (cache keeps its own).
  std::uint64_t jobs_submitted_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::uint64_t jobs_requeued_ = 0;
  std::uint64_t journal_corrupt_ = 0;
  std::uint64_t points_computed_ = 0;
  std::uint64_t points_cached_ = 0;
};

}  // namespace tinysdr::serve
