// Campaign job & result schemas for the testbed-as-a-service layer.
//
// A job (`tinysdr-job-v1`) is what an experimenter submits to the campaign
// server: a named, prioritised bundle of LinkSimulator sweeps and/or
// testbed fleet campaigns, each fully specified by (phy, grid, trials,
// seed). A result (`tinysdr-result-v1`) is the deterministic answer: the
// canonicalised job echoed back plus every sweep point / fleet node
// outcome, serialised with the obs layer's shortest-round-trip number
// formatting so the bytes are identical whether the job ran serially,
// sharded across the worker pool, through the daemon, from the memoization
// cache, or resumed after a restart.
//
// All integers in the wire format ride in JSON numbers (doubles), so
// seeds and counts are validated to be exact below 2^53 — plenty for
// campaign use, and what keeps parse(serialize(x)) == x bit-for-bit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "phy/link_sim.hpp"
#include "phy/phy.hpp"
#include "testbed/phy_campaign.hpp"

namespace tinysdr::obs {
struct JsonValue;
}

namespace tinysdr::serve {

inline constexpr std::string_view kJobSchema = "tinysdr-job-v1";
inline constexpr std::string_view kResultSchema = "tinysdr-result-v1";

/// One LinkSimulator RSSI sweep inside a job. Unset pad/noise-figure fall
/// back to the registry entry's calibrated defaults at execution time, and
/// the canonical form always carries the resolved values — two spellings
/// of the same physics produce the same canonical bytes and cache keys.
struct SweepSpec {
  phy::Protocol phy{};
  std::vector<double> rssi_dbm;
  std::size_t trials = 50;
  std::size_t payload_bytes = 16;
  std::uint64_t base_seed = 1;
  std::optional<std::size_t> pad_samples;
  std::optional<double> noise_figure_db;

  [[nodiscard]] bool operator==(const SweepSpec&) const = default;
};

/// One multi-PHY fleet campaign inside a job (testbed::run_phy_campaign
/// over the campus deployment model). `phy` unset means the classic
/// round-robin protocol assignment; set, the whole fleet is reprogrammed
/// to that protocol.
struct FleetSpec {
  std::size_t nodes = 20;
  std::size_t trials_per_node = 20;
  std::size_t payload_bytes = 12;
  std::uint64_t base_seed = 1;
  std::uint64_t deployment_seed = 2024;
  std::optional<phy::Protocol> phy;

  [[nodiscard]] bool operator==(const FleetSpec&) const = default;
};

struct JobSpec {
  std::string name = "job";
  /// Higher runs first; ties break by submission order.
  int priority = 0;
  /// Wall-clock execution budget in seconds; a job that runs out is
  /// checkpointed to the sweep cache and re-queued.
  std::optional<double> deadline_s;
  std::vector<SweepSpec> sweeps;
  std::vector<FleetSpec> fleets;

  [[nodiscard]] bool operator==(const JobSpec&) const = default;

  /// Deterministic `tinysdr-job-v1` bytes: fixed member order, defaults
  /// materialised, numbers in shortest-round-trip form.
  [[nodiscard]] std::string canonical_json() const;
  void write_json(std::ostream& out) const;
};

/// Parse + validate a job document against the built-in registry's
/// protocols. Returns nullopt and a human-readable reason in `error` on
/// any violation (unknown phy, empty grid, zero trials, payload beyond
/// the PHY's max, non-integral seed, ...).
[[nodiscard]] std::optional<JobSpec> parse_job(std::string_view json,
                                               std::string& error);
[[nodiscard]] std::optional<JobSpec> parse_job(const obs::JsonValue& doc,
                                               std::string& error);

struct SweepResult {
  std::vector<phy::PointResult> points;  ///< one per grid RSSI, in order
};

struct FleetResult {
  std::vector<testbed::PhyNodeResult> per_node;  ///< node-id order
};

/// A finished job. Serialisation is pure in the job + outcomes — no
/// timestamps, thread counts or cache statistics — which is what makes
/// "byte-identical across every execution strategy" a testable contract.
struct JobResult {
  JobSpec job;
  std::vector<SweepResult> sweeps;  ///< parallel to job.sweeps
  std::vector<FleetResult> fleets;  ///< parallel to job.fleets

  [[nodiscard]] std::string json() const;
  void write_json(std::ostream& out) const;
};

}  // namespace tinysdr::serve
