#include "serve/engine.hpp"

#include <exception>
#include <utility>

#include "common/rng.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "phy/registry.hpp"
#include "testbed/deployment.hpp"

namespace tinysdr::serve {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

Engine::Engine(const phy::Registry& registry, EngineConfig config)
    : registry_(&registry),
      config_(std::move(config)),
      cache_(config_.cache_bytes) {
  if (!config_.cache_journal.empty())
    cache_.attach_journal(config_.cache_journal);
  if (!config_.job_journal.empty()) {
    replay_job_journal(config_.job_journal);
    job_journal_.open(config_.job_journal, std::ios::app);
  }
}

std::uint64_t Engine::submit(JobSpec job) {
  std::uint64_t id = 0;
  {
    std::scoped_lock lock{mu_};
    id = submit_locked(std::move(job), /*journal=*/true);
  }
  work_cv_.notify_all();
  return id;
}

std::optional<std::uint64_t> Engine::submit_json(std::string_view json,
                                                 std::string& error) {
  auto job = parse_job(json, error);
  if (!job) return std::nullopt;
  return submit(std::move(*job));
}

std::uint64_t Engine::submit_locked(JobSpec job, bool journal) {
  JobRecord record;
  record.id = next_id_++;
  record.spec = std::move(job);
  ++jobs_submitted_;
  if (journal && job_journal_.is_open()) {
    job_journal_ << "{\"op\":\"submit\",\"job\":"
                 << record.spec.canonical_json() << "}\n";
    job_journal_.flush();
  }
  const std::uint64_t id = record.id;
  jobs_.emplace(id, std::move(record));
  return id;
}

bool Engine::wait_for_job(std::chrono::milliseconds timeout) {
  std::unique_lock lock{mu_};
  return work_cv_.wait_for(lock, timeout, [this] {
    for (const auto& [id, r] : jobs_)
      if (r.state == JobState::kQueued) return true;
    return false;
  });
}

SweepResult Engine::run_sweep(const SweepSpec& spec,
                              std::optional<Seconds> budget,
                              RunTally* tally) {
  const phy::RegisteredPhy& entry = registry_->at(spec.phy);
  const std::size_t pad = spec.pad_samples.value_or(entry.pad_samples);
  const double nf =
      spec.noise_figure_db.value_or(entry.system_noise_figure_db);

  SweepResult out;
  out.points.resize(spec.rssi_dbm.size());

  // Cache pass: every point's key is pure in (phy, plan, point seed) —
  // where the point sits in this (or any other) grid is irrelevant.
  std::vector<std::size_t> missed;
  std::vector<phy::SweepPoint> missed_points;
  std::vector<std::string> missed_keys;
  for (std::size_t i = 0; i < spec.rssi_dbm.size(); ++i) {
    const std::uint64_t pseed =
        phy::LinkSimulator::point_seed(spec.base_seed, spec.rssi_dbm[i]);
    std::string key = point_cache_key(entry.name, pseed, spec.trials,
                                      spec.payload_bytes, pad, nf);
    if (auto cached = cache_.lookup(key)) {
      out.points[i] = *cached;
      ++tally->hits;
      continue;
    }
    ++tally->misses;
    missed.push_back(i);
    missed_points.push_back({Dbm{spec.rssi_dbm[i]}, std::nullopt});
    missed_keys.push_back(std::move(key));
  }
  if (missed.empty()) return out;

  if (budget && !(budget->value() > 0.0)) {
    tally->complete = false;  // out of time before the region started
    return out;
  }

  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  phy::TrialPlan plan;
  plan.trials = spec.trials;
  plan.payload_bytes = spec.payload_bytes;
  plan.pad_samples = pad;
  plan.noise_figure_db = nf;
  plan.base_seed = spec.base_seed;
  phy::LinkSimulator sim{*tx, *rx, plan};

  exec::ExecPolicy policy = config_.policy;
  if (budget) policy = policy.with_budget(*budget);

  std::vector<phy::PointResult> fresh;
  exec::RunStatus status = sim.sweep(missed_points, fresh, policy);

  // Every finished point is cached (and journaled) even when the region
  // hit its deadline — that checkpoint is what a resumed run picks up.
  for (std::size_t k = 0; k < missed.size(); ++k) {
    if (fresh[k].frames == 0) continue;  // skipped by the deadline
    out.points[missed[k]] = fresh[k];
    cache_.insert(missed_keys[k], fresh[k]);
    ++tally->computed;
  }
  if (!status.complete()) tally->complete = false;
  return out;
}

std::optional<std::uint64_t> Engine::run_next() {
  JobSpec spec;
  std::uint64_t id = 0;
  {
    std::scoped_lock lock{mu_};
    const JobRecord* best = nullptr;
    for (const auto& [jid, r] : jobs_) {
      if (r.state != JobState::kQueued) continue;
      if (best == nullptr || r.spec.priority > best->spec.priority ||
          (r.spec.priority == best->spec.priority && jid < best->id))
        best = &r;
    }
    if (best == nullptr) return std::nullopt;
    id = best->id;
    JobRecord& record = jobs_.at(id);
    record.state = JobState::kRunning;
    ++record.attempts;
    spec = record.spec;
  }

  const auto start = Clock::now();
  auto remaining = [&]() -> std::optional<Seconds> {
    if (!spec.deadline_s) return std::nullopt;
    return Seconds{*spec.deadline_s - elapsed_s(start)};
  };

  RunTally tally;
  JobResult result;
  result.job = spec;
  std::string error;
  try {
    for (const SweepSpec& sweep : spec.sweeps)
      result.sweeps.push_back(run_sweep(sweep, remaining(), &tally));
    for (const FleetSpec& fleet : spec.fleets) {
      auto budget = remaining();
      FleetResult fr;
      if (budget && !(budget->value() > 0.0)) {
        tally.complete = false;
      } else {
        testbed::PhyCampaignConfig cfg;
        cfg.trials_per_node = fleet.trials_per_node;
        cfg.payload_bytes = fleet.payload_bytes;
        cfg.base_seed = fleet.base_seed;
        cfg.only_protocol = fleet.phy;
        Rng deploy_rng{fleet.deployment_seed};
        auto deployment =
            testbed::Deployment::campus(deploy_rng, Dbm{14.0}, fleet.nodes);
        exec::ExecPolicy policy = config_.policy;
        if (budget) policy = policy.with_budget(*budget);
        auto campaign =
            testbed::run_phy_campaign(deployment, *registry_, cfg, policy);
        if (campaign.exec_status.complete())
          fr.per_node = std::move(campaign.per_node);
        else
          tally.complete = false;  // fleets have no point cache; rerun whole
      }
      result.fleets.push_back(std::move(fr));
    }
  } catch (const std::exception& e) {
    error = e.what();
  }

  std::scoped_lock lock{mu_};
  JobRecord& record = jobs_.at(id);
  record.cache_hits += tally.hits;
  record.cache_misses += tally.misses;
  points_cached_ += tally.hits;
  points_computed_ += tally.computed;

  if (!error.empty()) {
    record.state = JobState::kFailed;
    record.error = error;
    ++jobs_failed_;
    append_job_journal("{\"op\":\"fail\",\"id\":" + std::to_string(id) +
                       ",\"error\":" + obs::json_quote(error) + "}");
  } else if (tally.complete) {
    record.state = JobState::kDone;
    record.result = std::move(result);
    record.result_retained = true;
    ++jobs_completed_;
    append_job_journal("{\"op\":\"done\",\"id\":" + std::to_string(id) + "}");
  } else if (record.attempts >= config_.max_attempts) {
    record.state = JobState::kFailed;
    record.error = "deadline exceeded after " +
                   std::to_string(record.attempts) + " attempts";
    ++jobs_failed_;
    append_job_journal("{\"op\":\"fail\",\"id\":" + std::to_string(id) +
                       ",\"error\":" + obs::json_quote(record.error) + "}");
  } else {
    // Checkpointed to the cache; back in the queue for another slice.
    record.state = JobState::kQueued;
    ++jobs_requeued_;
    work_cv_.notify_all();
  }
  return id;
}

std::size_t Engine::run_all() {
  std::size_t ran = 0;
  while (run_next()) ++ran;
  return ran;
}

std::optional<JobStatus> Engine::status(std::uint64_t id) const {
  std::scoped_lock lock{mu_};
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const JobRecord& r = it->second;
  JobStatus s;
  s.id = r.id;
  s.state = r.state;
  s.attempts = r.attempts;
  s.cache_hits = r.cache_hits;
  s.cache_misses = r.cache_misses;
  s.result_retained = r.result_retained;
  s.error = r.error;
  return s;
}

std::optional<std::string> Engine::result_json(std::uint64_t id) const {
  std::scoped_lock lock{mu_};
  auto it = jobs_.find(id);
  if (it == jobs_.end() || !it->second.result) return std::nullopt;
  return it->second.result->json();
}

std::map<std::string, double> Engine::stats() const {
  const CacheStats c = cache_.stats();
  std::map<std::string, double> out;
  out["serve.cache.hits"] = static_cast<double>(c.hits);
  out["serve.cache.misses"] = static_cast<double>(c.misses);
  out["serve.cache.inserts"] = static_cast<double>(c.inserts);
  out["serve.cache.evictions"] = static_cast<double>(c.evictions);
  out["serve.cache.corrupt"] = static_cast<double>(c.corrupt);
  out["serve.cache.entries"] = static_cast<double>(c.entries);
  out["serve.cache.bytes"] = static_cast<double>(c.bytes);

  std::scoped_lock lock{mu_};
  std::size_t queued = 0;
  for (const auto& [id, r] : jobs_)
    if (r.state == JobState::kQueued) ++queued;
  out["serve.jobs.submitted"] = static_cast<double>(jobs_submitted_);
  out["serve.jobs.completed"] = static_cast<double>(jobs_completed_);
  out["serve.jobs.failed"] = static_cast<double>(jobs_failed_);
  out["serve.jobs.requeued"] = static_cast<double>(jobs_requeued_);
  out["serve.jobs.queued"] = static_cast<double>(queued);
  out["serve.journal.corrupt"] = static_cast<double>(journal_corrupt_);
  out["serve.points.computed"] = static_cast<double>(points_computed_);
  out["serve.points.cached"] = static_cast<double>(points_cached_);
  return out;
}

std::size_t Engine::queued() const {
  std::scoped_lock lock{mu_};
  std::size_t n = 0;
  for (const auto& [id, r] : jobs_)
    if (r.state == JobState::kQueued) ++n;
  return n;
}

void Engine::append_job_journal(const std::string& line) {
  if (!job_journal_.is_open()) return;
  job_journal_ << line << "\n";
  job_journal_.flush();
}

std::size_t Engine::replay_job_journal(const std::string& path) {
  std::ifstream in{path};
  std::string line;
  std::size_t applied = 0;
  std::scoped_lock lock{mu_};
  while (in && std::getline(in, line)) {
    if (line.empty()) continue;
    auto doc = obs::JsonValue::parse(line);
    if (!doc || !doc->is_object()) {
      ++journal_corrupt_;
      continue;
    }
    const std::string_view op = doc->string_or("op", "");
    if (op == "submit") {
      const obs::JsonValue* job = doc->find("job");
      std::string error;
      std::optional<JobSpec> spec;
      if (job != nullptr) spec = parse_job(*job, error);
      if (!spec) {
        ++journal_corrupt_;
        continue;
      }
      submit_locked(std::move(*spec), /*journal=*/false);
      ++applied;
    } else if (op == "done" || op == "fail") {
      const auto id =
          static_cast<std::uint64_t>(doc->number_or("id", 0));
      auto it = jobs_.find(id);
      if (it == jobs_.end()) {
        ++journal_corrupt_;
        continue;
      }
      if (op == "done") {
        it->second.state = JobState::kDone;
        ++jobs_completed_;
      } else {
        it->second.state = JobState::kFailed;
        it->second.error = std::string(doc->string_or("error", "failed"));
        ++jobs_failed_;
      }
      ++applied;
    } else {
      ++journal_corrupt_;
    }
  }
  return applied;
}

}  // namespace tinysdr::serve
