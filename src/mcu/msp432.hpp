// MSP432P401R microcontroller model.
//
// The MCU is the platform's always-on controller (paper §3.1.1): it runs
// the MAC layers, drives SPI to the radios/FPGA/flash, executes the OTA
// decompressor, and toggles the power domains. What the evaluation measures
// about it is resource usage (the TTN MAC + control + decompression take
// 18% of MCU resources, §5.2) and the 30 kB working-buffer constraint that
// shapes the OTA block format (§3.4). This model tracks memory budgets,
// low-power-mode state, and the wakeup timer.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "common/units.hpp"

namespace tinysdr::mcu {

enum class McuMode {
  kActive,  ///< 48 MHz run
  kLpm0,    ///< CPU off, peripherals on
  kLpm3,    ///< RTC + wakeup timer only (the sleep-mode state)
};

struct Msp432Spec {
  std::uint32_t sram_bytes = 64 * 1024;
  std::uint32_t flash_bytes = 256 * 1024;
  Hertz cpu_clock = Hertz::from_megahertz(48.0);
};

/// Tracks named static allocations against the SRAM/flash budgets, so the
/// firmware composition (MAC + drivers + decompressor) can be checked
/// against the part the way the paper reports utilization.
class Msp432 {
 public:
  explicit Msp432(Msp432Spec spec = {}) : spec_(spec) {}

  [[nodiscard]] const Msp432Spec& spec() const { return spec_; }
  [[nodiscard]] McuMode mode() const { return mode_; }
  void set_mode(McuMode mode) { mode_ = mode; }

  /// Reserve SRAM for a named buffer. @throws std::bad_alloc-like logic
  /// error if the budget is exceeded.
  void allocate_sram(const std::string& name, std::uint32_t bytes);
  void free_sram(const std::string& name);
  /// Reserve flash for a named firmware section.
  void allocate_flash(const std::string& name, std::uint32_t bytes);

  [[nodiscard]] std::uint32_t sram_used() const { return sram_used_; }
  [[nodiscard]] std::uint32_t flash_used() const { return flash_used_; }
  [[nodiscard]] std::uint32_t sram_free() const {
    return spec_.sram_bytes - sram_used_;
  }

  /// Combined resource utilization the way the paper quotes it (fraction of
  /// total memory resources in use).
  [[nodiscard]] double utilization() const {
    double total = static_cast<double>(spec_.sram_bytes + spec_.flash_bytes);
    return static_cast<double>(sram_used_ + flash_used_) / total;
  }

  /// Largest single SRAM buffer that can still be allocated — this is what
  /// bounds the OTA decompression block size.
  [[nodiscard]] std::uint32_t max_block_buffer() const { return sram_free(); }

  /// Program the periodic wakeup timer used to poll for OTA updates.
  void set_wakeup_interval(Seconds interval) {
    if (interval.value() <= 0.0)
      throw std::invalid_argument("set_wakeup_interval: non-positive");
    wakeup_interval_ = interval;
  }
  [[nodiscard]] Seconds wakeup_interval() const { return wakeup_interval_; }

  [[nodiscard]] const std::map<std::string, std::uint32_t>& sram_map() const {
    return sram_allocs_;
  }

 private:
  Msp432Spec spec_;
  McuMode mode_ = McuMode::kActive;
  std::map<std::string, std::uint32_t> sram_allocs_;
  std::map<std::string, std::uint32_t> flash_allocs_;
  std::uint32_t sram_used_ = 0;
  std::uint32_t flash_used_ = 0;
  Seconds wakeup_interval_ = Seconds{600.0};
};

/// The firmware inventory the paper describes: TTN MAC, radio/FPGA/PMU
/// drivers, and the miniLZO decompressor, sized so total utilization lands
/// at the measured 18%.
[[nodiscard]] Msp432 baseline_firmware();

}  // namespace tinysdr::mcu
