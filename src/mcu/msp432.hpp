// MSP432P401R microcontroller model.
//
// The MCU is the platform's always-on controller (paper §3.1.1): it runs
// the MAC layers, drives SPI to the radios/FPGA/flash, executes the OTA
// decompressor, and toggles the power domains. What the evaluation measures
// about it is resource usage (the TTN MAC + control + decompression take
// 18% of MCU resources, §5.2) and the 30 kB working-buffer constraint that
// shapes the OTA block format (§3.4). This model tracks memory budgets,
// low-power-mode state, and the wakeup timer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>

#include "common/units.hpp"

namespace tinysdr::mcu {

enum class McuMode {
  kActive,  ///< 48 MHz run
  kLpm0,    ///< CPU off, peripherals on
  kLpm3,    ///< RTC + wakeup timer only (the sleep-mode state)
};

/// Why the MCU last went through reset.
enum class ResetCause : std::uint8_t {
  kPowerOn,
  kBrownout,   ///< supply dipped below the BSL threshold
  kWatchdog,   ///< WDT expired without a kick
};

struct Msp432Spec {
  std::uint32_t sram_bytes = 64 * 1024;
  std::uint32_t flash_bytes = 256 * 1024;
  Hertz cpu_clock = Hertz::from_megahertz(48.0);
};

/// Tracks named static allocations against the SRAM/flash budgets, so the
/// firmware composition (MAC + drivers + decompressor) can be checked
/// against the part the way the paper reports utilization.
class Msp432 {
 public:
  explicit Msp432(Msp432Spec spec = {}) : spec_(spec) {}

  [[nodiscard]] const Msp432Spec& spec() const { return spec_; }
  [[nodiscard]] McuMode mode() const { return mode_; }
  void set_mode(McuMode mode) { mode_ = mode; }

  /// Reserve SRAM for a named buffer. @throws std::bad_alloc-like logic
  /// error if the budget is exceeded.
  void allocate_sram(const std::string& name, std::uint32_t bytes);
  void free_sram(const std::string& name);
  /// Reserve flash for a named firmware section.
  void allocate_flash(const std::string& name, std::uint32_t bytes);

  [[nodiscard]] std::uint32_t sram_used() const { return sram_used_; }
  [[nodiscard]] std::uint32_t flash_used() const { return flash_used_; }
  [[nodiscard]] std::uint32_t sram_free() const {
    return spec_.sram_bytes - sram_used_;
  }

  /// Combined resource utilization the way the paper quotes it (fraction of
  /// total memory resources in use).
  [[nodiscard]] double utilization() const {
    double total = static_cast<double>(spec_.sram_bytes + spec_.flash_bytes);
    return static_cast<double>(sram_used_ + flash_used_) / total;
  }

  /// Largest single SRAM buffer that can still be allocated — this is what
  /// bounds the OTA decompression block size.
  [[nodiscard]] std::uint32_t max_block_buffer() const { return sram_free(); }

  /// Program the periodic wakeup timer used to poll for OTA updates.
  void set_wakeup_interval(Seconds interval) {
    if (interval.value() <= 0.0)
      throw std::invalid_argument("set_wakeup_interval: non-positive");
    wakeup_interval_ = interval;
  }
  [[nodiscard]] Seconds wakeup_interval() const { return wakeup_interval_; }

  [[nodiscard]] const std::map<std::string, std::uint32_t>& sram_map() const {
    return sram_allocs_;
  }

  // ------------------------------------------------ reset / watchdog model

  /// Snapshot the current SRAM allocation set as the firmware's static
  /// boot-time layout; a reset restores exactly this set (transient
  /// buffers are lost, statics are re-established by firmware init).
  void capture_boot_image() { boot_sram_allocs_ = sram_allocs_; }

  /// Go through reset: SRAM contents are lost (allocations revert to the
  /// captured boot image), the CPU comes up active, and the reset hook
  /// (if any) runs — this is how the OTA node re-enters its update
  /// session after a brownout.
  void reset(ResetCause cause);

  /// Arm the watchdog timer; `advance_time` fires it (and resets the MCU)
  /// if no `kick_watchdog` arrives within `timeout`.
  void arm_watchdog(Seconds timeout);
  void disarm_watchdog() { watchdog_armed_ = false; }
  void kick_watchdog() { watchdog_elapsed_ = Seconds{0.0}; }
  [[nodiscard]] bool watchdog_armed() const { return watchdog_armed_; }

  /// Advance simulated time. Returns true if the watchdog fired (a reset
  /// has then already happened).
  bool advance_time(Seconds elapsed);

  [[nodiscard]] std::uint32_t reset_count() const { return reset_count_; }
  [[nodiscard]] ResetCause last_reset_cause() const {
    return last_reset_cause_;
  }
  /// Invoked after every reset, with the cause. Used by the OTA node agent
  /// to restore its transfer session from flash.
  void set_reset_hook(std::function<void(ResetCause)> hook) {
    reset_hook_ = std::move(hook);
  }

 private:
  Msp432Spec spec_;
  McuMode mode_ = McuMode::kActive;
  std::map<std::string, std::uint32_t> sram_allocs_;
  std::map<std::string, std::uint32_t> flash_allocs_;
  std::map<std::string, std::uint32_t> boot_sram_allocs_;
  std::uint32_t sram_used_ = 0;
  std::uint32_t flash_used_ = 0;
  Seconds wakeup_interval_ = Seconds{600.0};

  bool watchdog_armed_ = false;
  Seconds watchdog_timeout_{0.0};
  Seconds watchdog_elapsed_{0.0};
  std::uint32_t reset_count_ = 0;
  ResetCause last_reset_cause_ = ResetCause::kPowerOn;
  std::function<void(ResetCause)> reset_hook_;
};

/// The firmware inventory the paper describes: TTN MAC, radio/FPGA/PMU
/// drivers, and the miniLZO decompressor, sized so total utilization lands
/// at the measured 18%.
[[nodiscard]] Msp432 baseline_firmware();

}  // namespace tinysdr::mcu
