#include "mcu/msp432.hpp"

namespace tinysdr::mcu {

void Msp432::allocate_sram(const std::string& name, std::uint32_t bytes) {
  if (sram_allocs_.contains(name))
    throw std::logic_error("Msp432: duplicate SRAM allocation: " + name);
  if (sram_used_ + bytes > spec_.sram_bytes)
    throw std::logic_error("Msp432: SRAM budget exceeded by " + name);
  sram_allocs_[name] = bytes;
  sram_used_ += bytes;
}

void Msp432::free_sram(const std::string& name) {
  auto it = sram_allocs_.find(name);
  if (it == sram_allocs_.end())
    throw std::logic_error("Msp432: freeing unknown SRAM allocation: " + name);
  sram_used_ -= it->second;
  sram_allocs_.erase(it);
}

void Msp432::allocate_flash(const std::string& name, std::uint32_t bytes) {
  if (flash_allocs_.contains(name))
    throw std::logic_error("Msp432: duplicate flash allocation: " + name);
  if (flash_used_ + bytes > spec_.flash_bytes)
    throw std::logic_error("Msp432: flash budget exceeded by " + name);
  flash_allocs_[name] = bytes;
  flash_used_ += bytes;
}

void Msp432::reset(ResetCause cause) {
  sram_allocs_ = boot_sram_allocs_;
  sram_used_ = 0;
  for (const auto& [name, bytes] : sram_allocs_) sram_used_ += bytes;
  mode_ = McuMode::kActive;
  watchdog_armed_ = false;
  watchdog_elapsed_ = Seconds{0.0};
  ++reset_count_;
  last_reset_cause_ = cause;
  if (reset_hook_) reset_hook_(cause);
}

void Msp432::arm_watchdog(Seconds timeout) {
  if (timeout.value() <= 0.0)
    throw std::invalid_argument("arm_watchdog: non-positive timeout");
  watchdog_armed_ = true;
  watchdog_timeout_ = timeout;
  watchdog_elapsed_ = Seconds{0.0};
}

bool Msp432::advance_time(Seconds elapsed) {
  if (!watchdog_armed_) return false;
  watchdog_elapsed_ += elapsed;
  if (watchdog_elapsed_ < watchdog_timeout_) return false;
  reset(ResetCause::kWatchdog);
  return true;
}

Msp432 baseline_firmware() {
  // Sized so (SRAM + flash used) / (SRAM + flash total) = 18% as measured
  // in §5.2 for TTN MAC + control + OTA decompressor.
  Msp432 m;
  m.allocate_flash("ttn_mac", 22 * 1024);
  m.allocate_flash("radio_driver", 6 * 1024);
  m.allocate_flash("fpga_loader", 4 * 1024);
  m.allocate_flash("pmu_control", 3 * 1024);
  m.allocate_flash("lzo_decompress", 4 * 1024);
  m.allocate_flash("ota_protocol", 7 * 1024);
  m.allocate_sram("mac_state", 4 * 1024);
  m.allocate_sram("driver_state", 2 * 1024);
  m.allocate_sram("stack", 4 * 1024);
  // Note: the 30 kB OTA block buffer is allocated transiently during
  // decompression (see ota::UpdatePlanner), not part of the baseline.
  m.capture_boot_image();
  return m;
}

}  // namespace tinysdr::mcu
