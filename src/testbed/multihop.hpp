// Multi-hop relay study (paper §7: "One can also create multi-hop IoT
// PHY/MAC innovations, which have not been explored well given the lack of
// a flexible platform").
//
// tinySDR nodes are standalone transceivers, so any node can relay. We
// build the minimal substrate: a connectivity graph from the link budget,
// shortest-path routing (fewest hops, then strongest bottleneck link), and
// per-path airtime/energy accounting — enough to quantify when relaying
// beats cranking the spreading factor.
#pragma once

#include <optional>
#include <vector>

#include "lora/rate_adapt.hpp"
#include "testbed/deployment.hpp"

namespace tinysdr::testbed {

/// A node position on the (one-dimensional) campus transect. The paper's
/// map is anonymized; distances from the AP are what the link budget needs.
struct MeshNode {
  std::uint16_t id = 0;
  double position_m = 0.0;  ///< distance from the AP along the transect
};

struct Hop {
  std::uint16_t from = 0;  ///< 0 = AP
  std::uint16_t to = 0;
  Dbm rssi{0.0};
  int sf = 0;             ///< rate chosen per-hop by the ADR policy
  Seconds airtime{0.0};
};

struct Route {
  std::vector<Hop> hops;
  [[nodiscard]] Seconds total_airtime() const {
    Seconds t{0.0};
    for (const auto& h : hops) t += h.airtime;
    return t;
  }
  [[nodiscard]] std::size_t hop_count() const { return hops.size(); }
};

class MeshNetwork {
 public:
  /// @param model        propagation model between any two points
  /// @param tx_power     every node (and the AP) transmits at this level
  /// @param margin_db    ADR margin per hop
  MeshNetwork(channel::PathLossModel model, Dbm tx_power,
              double margin_db = 3.0)
      : model_(model), tx_power_(tx_power), margin_db_(margin_db) {}

  void add_node(MeshNode node) { nodes_.push_back(node); }
  [[nodiscard]] const std::vector<MeshNode>& nodes() const { return nodes_; }

  /// RSSI between two transect positions.
  [[nodiscard]] Dbm link_rssi(double from_m, double to_m) const;

  /// Can the pair close a link at any rung of the ADR ladder?
  [[nodiscard]] bool connected(double from_m, double to_m) const;

  /// Route from the AP (position 0) to `dest_id` for a payload:
  /// breadth-first fewest-hops, each hop rated by the ADR policy.
  /// nullopt when the destination is unreachable even through relays.
  [[nodiscard]] std::optional<Route> route_to(std::uint16_t dest_id,
                                              std::size_t payload_bytes) const;

 private:
  channel::PathLossModel model_;
  Dbm tx_power_;
  double margin_db_;
  std::vector<MeshNode> nodes_;
};

/// Study record comparing direct vs multi-hop delivery to one node.
struct MultihopOutcome {
  bool direct_possible = false;
  Seconds direct_airtime{0.0};  ///< at the slowest workable direct rate
  std::optional<Route> relayed;
};

[[nodiscard]] MultihopOutcome compare_direct_vs_relayed(
    const MeshNetwork& mesh, std::uint16_t dest_id,
    std::size_t payload_bytes);

}  // namespace tinysdr::testbed
