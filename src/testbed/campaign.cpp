#include "testbed/campaign.hpp"

namespace tinysdr::testbed {

std::size_t CampaignResult::successes() const {
  std::size_t n = 0;
  for (const auto& r : per_node)
    if (r.success) ++n;
  return n;
}

Seconds CampaignResult::mean_time() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : per_node) {
    if (!r.success) continue;
    sum += r.total_time.value();
    ++n;
  }
  return n == 0 ? Seconds{0.0} : Seconds{sum / static_cast<double>(n)};
}

Millijoules CampaignResult::mean_energy() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : per_node) {
    if (!r.success) continue;
    sum += r.total_energy.value();
    ++n;
  }
  return n == 0 ? Millijoules{0.0}
                : Millijoules{sum / static_cast<double>(n)};
}

std::vector<CdfPoint> CampaignResult::time_cdf_minutes() const {
  std::vector<double> minutes;
  for (const auto& r : per_node)
    if (r.success) minutes.push_back(r.total_time.value() / 60.0);
  return empirical_cdf(std::move(minutes));
}

namespace {

/// Per-node link seed: campaign draw in the high bits, node id in the low
/// ones, so a node's run replays from its reported `link_seed` alone.
std::uint64_t derive_seed(Rng& rng, std::uint16_t node_id) {
  return (static_cast<std::uint64_t>(rng.next_u32()) << 16) | node_id;
}

}  // namespace

CampaignResult run_campaign(const Deployment& deployment,
                            const fpga::FirmwareImage& image,
                            ota::UpdateTarget target, Rng& rng) {
  CampaignResult result;
  result.image_name = image.name;
  ota::UpdatePlanner planner;
  for (const auto& node : deployment.nodes()) {
    ota::OtaLink link{ota::ota_link_params(), node.rssi,
                      derive_seed(rng, node.id)};
    ota::FlashModel flash;
    mcu::Msp432 mcu = mcu::baseline_firmware();
    result.per_node.push_back(
        planner.run(image, target, node.id, link, flash, mcu));
  }
  return result;
}

namespace {

FaultCampaignEntry summarize(std::string name,
                             std::vector<ota::UpdateReport> reports,
                             const FaultCampaignEntry* baseline) {
  FaultCampaignEntry entry;
  entry.name = std::move(name);
  entry.nodes = reports.size();
  double sum_time = 0.0, sum_air = 0.0, sum_energy = 0.0;
  for (const auto& r : reports) {
    entry.total_reboots += r.transfer.node_reboots;
    entry.total_resumes += r.transfer.session_resumes;
    entry.total_retransmissions += r.transfer.retransmissions;
    if (r.rolled_back) ++entry.total_rollbacks;
    if (!r.success) continue;
    ++entry.successes;
    sum_time += r.total_time.value();
    sum_air += r.transfer.airtime.value();
    sum_energy += r.total_energy.value();
  }
  if (entry.successes > 0) {
    double n = static_cast<double>(entry.successes);
    entry.mean_time = Seconds{sum_time / n};
    entry.mean_airtime = Seconds{sum_air / n};
    entry.mean_energy = Millijoules{sum_energy / n};
  }
  if (baseline != nullptr && entry.successes > 0 &&
      baseline->successes > 0) {
    entry.added_airtime =
        Seconds{entry.mean_airtime.value() - baseline->mean_airtime.value()};
    entry.added_energy = Millijoules{entry.mean_energy.value() -
                                     baseline->mean_energy.value()};
  }
  entry.per_node = std::move(reports);
  return entry;
}

}  // namespace

FaultCampaignResult run_fault_campaign(
    const Deployment& deployment, const fpga::FirmwareImage& image,
    ota::UpdateTarget target, const std::vector<FaultScenario>& scenarios,
    Rng& rng) {
  FaultCampaignResult result;
  ota::UpdatePlanner planner;

  // Fault-free reference pass (same per-node seed derivation, so the
  // RSSI-driven loss component is comparable across scenarios).
  {
    std::vector<ota::UpdateReport> reports;
    Rng pass_rng{rng.next_u32(), 0xBA5E};
    for (const auto& node : deployment.nodes()) {
      ota::OtaLink link{ota::ota_link_params(), node.rssi,
                        derive_seed(pass_rng, node.id)};
      ota::FlashModel flash;
      mcu::Msp432 mcu = mcu::baseline_firmware();
      reports.push_back(planner.run(image, target, node.id, link, flash, mcu));
    }
    result.baseline = summarize("baseline", std::move(reports), nullptr);
  }

  for (const auto& scenario : scenarios) {
    std::vector<ota::UpdateReport> reports;
    Rng pass_rng{rng.next_u32(), 0xFA17};
    for (const auto& node : deployment.nodes()) {
      std::uint64_t seed = derive_seed(pass_rng, node.id);
      ota::OtaLink link{ota::ota_link_params(), node.rssi, seed};
      if (scenario.plan.burst) link.set_burst(*scenario.plan.burst);

      sim::FaultPlan plan = scenario.plan;
      plan.seed = seed ^ plan.seed;  // distinct fault stream per node
      sim::FaultInjector faults{plan};

      ota::FlashModel flash;
      mcu::Msp432 mcu = mcu::baseline_firmware();
      ota::FirmwareStore store{flash};
      // The fleet ships with a factory golden image to fall back on.
      std::vector<std::uint8_t> golden(16 * 1024,
                                       static_cast<std::uint8_t>(node.id));
      store.install_golden(golden);

      ota::UpdateOptions options;
      options.policy = scenario.policy;
      options.faults = &faults;
      options.store = &store;
      reports.push_back(
          planner.run(image, target, node.id, link, flash, mcu, options));
    }
    result.scenarios.push_back(
        summarize(scenario.name, std::move(reports), &result.baseline));
  }
  return result;
}

}  // namespace tinysdr::testbed
