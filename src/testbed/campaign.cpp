#include "testbed/campaign.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tinysdr::testbed {

namespace {

/// Route the coming transfer's events onto the node's own Perfetto track
/// (tid = node id), named for the node.
void enter_node_track(std::uint16_t node_id) {
  if (auto* t = obs::tracer()) {
    t->set_track(node_id);
    t->name_track(node_id, "node-" + std::to_string(node_id));
  }
}

/// Campaign updates run sequentially over the shared backbone: lay this
/// node's timeline end to end after the previous one and drop back to the
/// campaign track.
void exit_node_track(Seconds node_time) {
  if (auto* t = obs::tracer()) {
    t->shift_base(node_time);
    t->set_track(0);
  }
}

}  // namespace

std::size_t CampaignResult::successes() const {
  std::size_t n = 0;
  for (const auto& r : per_node)
    if (r.success) ++n;
  return n;
}

Seconds CampaignResult::mean_time() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : per_node) {
    if (!r.success) continue;
    sum += r.total_time.value();
    ++n;
  }
  return n == 0 ? Seconds{0.0} : Seconds{sum / static_cast<double>(n)};
}

Millijoules CampaignResult::mean_energy() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : per_node) {
    if (!r.success) continue;
    sum += r.total_energy.value();
    ++n;
  }
  return n == 0 ? Millijoules{0.0}
                : Millijoules{sum / static_cast<double>(n)};
}

std::vector<CdfPoint> CampaignResult::time_cdf_minutes() const {
  std::vector<double> minutes;
  for (const auto& r : per_node)
    if (r.success) minutes.push_back(r.total_time.value() / 60.0);
  return empirical_cdf(std::move(minutes));
}

namespace {

/// Per-node link seed: campaign draw in the high bits, node id in the low
/// ones, so a node's run replays from its reported `link_seed` alone.
std::uint64_t derive_seed(Rng& rng, std::uint16_t node_id) {
  return (static_cast<std::uint64_t>(rng.next_u32()) << 16) | node_id;
}

}  // namespace

CampaignResult run_campaign(const Deployment& deployment,
                            const fpga::FirmwareImage& image,
                            ota::UpdateTarget target, Rng& rng) {
  CampaignResult result;
  result.image_name = image.name;
  if (auto* t = obs::tracer()) t->name_track(0, "campaign");
  obs::TraceSpan campaign_span{"testbed", "campaign:" + image.name};
  ota::UpdatePlanner planner;
  for (const auto& node : deployment.nodes()) {
    ota::OtaLink link{ota::ota_link_params(), node.rssi,
                      derive_seed(rng, node.id)};
    ota::FlashModel flash;
    mcu::Msp432 mcu = mcu::baseline_firmware();
    enter_node_track(node.id);
    auto report = planner.run(image, target, node.id, link, flash, mcu);
    exit_node_track(report.total_time);
    if (auto* m = obs::metrics()) {
      m->counter("testbed.nodes_attempted").add();
      if (report.success) {
        m->counter("testbed.nodes_updated").add();
        m->histogram("testbed.node_time_min",
                     obs::HistogramSpec::linear(0.0, 240.0, 48))
            .observe(report.total_time.value() / 60.0);
      }
    }
    result.per_node.push_back(std::move(report));
  }
  return result;
}

namespace {

FaultCampaignEntry summarize(std::string name,
                             std::vector<ota::UpdateReport> reports,
                             const FaultCampaignEntry* baseline) {
  FaultCampaignEntry entry;
  entry.name = std::move(name);
  entry.nodes = reports.size();
  double sum_time = 0.0, sum_air = 0.0, sum_energy = 0.0;
  for (const auto& r : reports) {
    entry.total_reboots += r.transfer.node_reboots;
    entry.total_resumes += r.transfer.session_resumes;
    entry.total_retransmissions += r.transfer.retransmissions;
    if (r.rolled_back) ++entry.total_rollbacks;
    if (!r.success) continue;
    ++entry.successes;
    sum_time += r.total_time.value();
    sum_air += r.transfer.airtime.value();
    sum_energy += r.total_energy.value();
  }
  if (entry.successes > 0) {
    double n = static_cast<double>(entry.successes);
    entry.mean_time = Seconds{sum_time / n};
    entry.mean_airtime = Seconds{sum_air / n};
    entry.mean_energy = Millijoules{sum_energy / n};
  }
  if (baseline != nullptr && entry.successes > 0 &&
      baseline->successes > 0) {
    entry.added_airtime =
        Seconds{entry.mean_airtime.value() - baseline->mean_airtime.value()};
    entry.added_energy = Millijoules{entry.mean_energy.value() -
                                     baseline->mean_energy.value()};
  }
  entry.per_node = std::move(reports);
  if (auto* m = obs::metrics()) {
    m->counter("testbed.nodes_attempted")
        .add(static_cast<double>(entry.nodes));
    m->counter("testbed.nodes_updated")
        .add(static_cast<double>(entry.successes));
    for (const auto& r : entry.per_node) {
      if (!r.success) continue;
      m->histogram("testbed.node_time_min",
                   obs::HistogramSpec::linear(0.0, 240.0, 48))
          .observe(r.total_time.value() / 60.0);
    }
  }
  return entry;
}

}  // namespace

FaultCampaignResult run_fault_campaign(
    const Deployment& deployment, const fpga::FirmwareImage& image,
    ota::UpdateTarget target, const std::vector<FaultScenario>& scenarios,
    Rng& rng) {
  FaultCampaignResult result;
  ota::UpdatePlanner planner;

  if (auto* t = obs::tracer()) t->name_track(0, "campaign");

  // Fault-free reference pass (same per-node seed derivation, so the
  // RSSI-driven loss component is comparable across scenarios).
  {
    obs::TraceSpan scenario_span{"testbed", "scenario:baseline"};
    std::vector<ota::UpdateReport> reports;
    Rng pass_rng{rng.next_u32(), 0xBA5E};
    for (const auto& node : deployment.nodes()) {
      ota::OtaLink link{ota::ota_link_params(), node.rssi,
                        derive_seed(pass_rng, node.id)};
      ota::FlashModel flash;
      mcu::Msp432 mcu = mcu::baseline_firmware();
      enter_node_track(node.id);
      auto report = planner.run(image, target, node.id, link, flash, mcu);
      exit_node_track(report.total_time);
      reports.push_back(std::move(report));
    }
    result.baseline = summarize("baseline", std::move(reports), nullptr);
  }

  for (const auto& scenario : scenarios) {
    obs::TraceSpan scenario_span{"testbed", "scenario:" + scenario.name};
    std::vector<ota::UpdateReport> reports;
    Rng pass_rng{rng.next_u32(), 0xFA17};
    for (const auto& node : deployment.nodes()) {
      std::uint64_t seed = derive_seed(pass_rng, node.id);
      ota::OtaLink link{ota::ota_link_params(), node.rssi, seed};
      if (scenario.plan.burst) link.set_burst(*scenario.plan.burst);

      sim::FaultPlan plan = scenario.plan;
      plan.seed = seed ^ plan.seed;  // distinct fault stream per node
      sim::FaultInjector faults{plan};

      ota::FlashModel flash;
      mcu::Msp432 mcu = mcu::baseline_firmware();
      ota::FirmwareStore store{flash};
      // The fleet ships with a factory golden image to fall back on.
      std::vector<std::uint8_t> golden(16 * 1024,
                                       static_cast<std::uint8_t>(node.id));
      store.install_golden(golden);

      ota::UpdateOptions options;
      options.policy = scenario.policy;
      options.faults = &faults;
      options.store = &store;
      enter_node_track(node.id);
      auto report =
          planner.run(image, target, node.id, link, flash, mcu, options);
      exit_node_track(report.total_time);
      reports.push_back(std::move(report));
    }
    result.scenarios.push_back(
        summarize(scenario.name, std::move(reports), &result.baseline));
  }
  return result;
}

}  // namespace tinysdr::testbed
