#include "testbed/campaign.hpp"

namespace tinysdr::testbed {

std::size_t CampaignResult::successes() const {
  std::size_t n = 0;
  for (const auto& r : per_node)
    if (r.success) ++n;
  return n;
}

Seconds CampaignResult::mean_time() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : per_node) {
    if (!r.success) continue;
    sum += r.total_time.value();
    ++n;
  }
  return n == 0 ? Seconds{0.0} : Seconds{sum / static_cast<double>(n)};
}

Millijoules CampaignResult::mean_energy() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : per_node) {
    if (!r.success) continue;
    sum += r.total_energy.value();
    ++n;
  }
  return n == 0 ? Millijoules{0.0}
                : Millijoules{sum / static_cast<double>(n)};
}

std::vector<CdfPoint> CampaignResult::time_cdf_minutes() const {
  std::vector<double> minutes;
  for (const auto& r : per_node)
    if (r.success) minutes.push_back(r.total_time.value() / 60.0);
  return empirical_cdf(std::move(minutes));
}

CampaignResult run_campaign(const Deployment& deployment,
                            const fpga::FirmwareImage& image,
                            ota::UpdateTarget target, Rng& rng) {
  CampaignResult result;
  result.image_name = image.name;
  ota::UpdatePlanner planner;
  for (const auto& node : deployment.nodes()) {
    ota::OtaLink link{ota::ota_link_params(), node.rssi,
                      Rng{rng.next_u32(), node.id}};
    ota::FlashModel flash;
    mcu::Msp432 mcu = mcu::baseline_firmware();
    result.per_node.push_back(
        planner.run(image, target, node.id, link, flash, mcu));
  }
  return result;
}

}  // namespace tinysdr::testbed
