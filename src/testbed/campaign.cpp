#include "testbed/campaign.hpp"

#include <memory>
#include <optional>
#include <string>

#include "exec/parallel_for.hpp"
#include "exec/seed.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tinysdr::testbed {

std::size_t CampaignResult::successes() const {
  std::size_t n = 0;
  for (const auto& r : per_node)
    if (r.success) ++n;
  return n;
}

Seconds CampaignResult::mean_time() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : per_node) {
    if (!r.success) continue;
    sum += r.total_time.value();
    ++n;
  }
  return n == 0 ? Seconds{0.0} : Seconds{sum / static_cast<double>(n)};
}

Millijoules CampaignResult::mean_energy() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : per_node) {
    if (!r.success) continue;
    sum += r.total_energy.value();
    ++n;
  }
  return n == 0 ? Millijoules{0.0}
                : Millijoules{sum / static_cast<double>(n)};
}

std::vector<CdfPoint> CampaignResult::time_cdf_minutes() const {
  std::vector<double> minutes;
  for (const auto& r : per_node)
    if (r.success) minutes.push_back(r.total_time.value() / 60.0);
  return empirical_cdf(std::move(minutes));
}

std::uint64_t node_link_seed(std::uint64_t pass_base,
                             std::uint16_t node_id) {
  return (exec::stream_seed(pass_base, node_id) << 16) | node_id;
}

namespace {

/// One node's unit of parallel work: its report plus the telemetry it
/// recorded, kept aside until the deterministic in-order merge.
struct NodeShard {
  std::optional<ota::UpdateReport> report;
  std::unique_ptr<obs::Tracer> trace;
  std::unique_ptr<obs::Registry> metrics;
  std::unique_ptr<obs::FlightRecorder> flight;
};

/// Run `run_node(node, index)` for every node of the deployment on the
/// exec worker pool, each with its own telemetry shard, then merge the
/// shards in node-index order: each node's timeline is laid end to end
/// after the previous one (shift_base), and its metric operations are
/// replayed in order — byte-identical output no matter the thread count.
template <typename RunNode>
exec::RunStatus run_fleet(const Deployment& deployment,
                          const exec::ExecPolicy& policy,
                          std::vector<NodeShard>& shards,
                          RunNode&& run_node) {
  const auto& nodes = deployment.nodes();
  shards.clear();
  shards.resize(nodes.size());
  obs::Tracer* campaign_tracer = obs::tracer();
  obs::Registry* campaign_metrics = obs::metrics();
  obs::FlightRecorder* campaign_flight = obs::flight();

  exec::ExecPolicy p = policy;
  if (p.grain == 0) p.grain = 1;  // one OTA update is a heavy item

  auto status = exec::parallel_for(
      nodes.size(), p, [&](std::size_t i, std::size_t) {
        NodeShard& shard = shards[i];
        std::optional<obs::TraceSession> trace_session;
        std::optional<obs::MetricsSession> metrics_session;
        std::optional<obs::FlightSession> flight_session;
        if (campaign_tracer != nullptr) {
          shard.trace =
              std::make_unique<obs::Tracer>(obs::Tracer::unbounded());
          trace_session.emplace(*shard.trace);
          shard.trace->set_track(nodes[i].id);
          shard.trace->name_track(nodes[i].id,
                                  "node-" + std::to_string(nodes[i].id));
        }
        if (campaign_flight != nullptr) {
          shard.flight = std::make_unique<obs::FlightRecorder>(
              obs::FlightRecorder::unbounded());
          flight_session.emplace(*shard.flight);
          shard.flight->set_node(nodes[i].id);
        }
        if (campaign_metrics != nullptr) {
          shard.metrics = std::make_unique<obs::Registry>();
          shard.metrics->enable_journal();
          metrics_session.emplace(*shard.metrics);
        }
        shard.report = run_node(nodes[i], i);
      });

  for (auto& shard : shards) {
    if (!shard.report) continue;  // node never started (cancelled)
    if (campaign_tracer != nullptr && shard.trace != nullptr) {
      campaign_tracer->absorb(*shard.trace);
      campaign_tracer->shift_base(shard.report->total_time);
      campaign_tracer->set_track(0);
    }
    if (campaign_flight != nullptr && shard.flight != nullptr) {
      campaign_flight->absorb(*shard.flight);
      campaign_flight->shift_base(shard.report->total_time);
    }
    if (campaign_metrics != nullptr && shard.metrics != nullptr)
      campaign_metrics->merge_from(*shard.metrics);
    shard.trace.reset();
    shard.metrics.reset();
    shard.flight.reset();
  }
  return status;
}

/// Post-mortem trigger shared by both campaign drivers: when a run ended
/// with node failures, did not complete (deadline/cancellation), or any
/// warning-or-worse record landed in the flight recorder (a fault
/// fired), dump the black box. No-op without an installed recorder or a
/// configured dump path.
void maybe_dump_flight(const std::string& what, std::size_t failed_nodes,
                       const exec::RunStatus& status) {
  auto* f = obs::flight();
  if (f == nullptr) return;
  std::string reason;
  if (failed_nodes > 0) {
    reason = what + ": " + std::to_string(failed_nodes) + " node(s) failed";
  } else if (!status.complete()) {
    reason = what + ": " + exec::to_string(status.outcome);
  } else if (f->count_at_least(obs::FlightLevel::kWarn) > 0) {
    reason = what + ": fault records present";
  }
  if (reason.empty()) return;
  obs::dump_flight(reason);
}

}  // namespace

CampaignResult run_campaign(const Deployment& deployment,
                            const fpga::FirmwareImage& image,
                            ota::UpdateTarget target, Rng& rng,
                            const exec::ExecPolicy& policy) {
  CampaignResult result;
  result.image_name = image.name;
  if (auto* t = obs::tracer()) t->name_track(0, "campaign");
  obs::TraceSpan campaign_span{"testbed", "campaign:" + image.name};
  ota::UpdatePlanner planner;

  // One sequential draw for the whole campaign; every per-node seed is a
  // pure function of (base, node id), precomputed before dispatch.
  const std::uint64_t pass_base = exec::draw_base_seed(rng);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(deployment.nodes().size());
  for (const auto& node : deployment.nodes())
    seeds.push_back(node_link_seed(pass_base, node.id));

  std::vector<NodeShard> shards;
  result.exec_status = run_fleet(
      deployment, policy, shards,
      [&](const Node& node, std::size_t i) {
        ota::OtaLink link{ota::ota_link_params(), node.rssi, seeds[i]};
        ota::FlashModel flash;
        mcu::Msp432 mcu = mcu::baseline_firmware();
        return planner.run(image, target, node.id, link, flash, mcu);
      });

  for (auto& shard : shards) {
    if (!shard.report) continue;
    if (auto* m = obs::metrics()) {
      m->counter("testbed.nodes_attempted").add();
      if (shard.report->success) {
        m->counter("testbed.nodes_updated").add();
        m->histogram("testbed.node_time_min",
                     obs::HistogramSpec::linear(0.0, 240.0, 48))
            .observe(shard.report->total_time.value() / 60.0);
      }
    }
    result.per_node.push_back(std::move(*shard.report));
  }
  maybe_dump_flight("campaign:" + image.name,
                    result.per_node.size() - result.successes(),
                    result.exec_status);
  return result;
}

CampaignResult run_campaign(const Deployment& deployment,
                            const fpga::FirmwareImage& image,
                            ota::UpdateTarget target, Rng& rng) {
  return run_campaign(deployment, image, target, rng, exec::ExecPolicy{});
}

namespace {

FaultCampaignEntry summarize(std::string name,
                             std::vector<ota::UpdateReport> reports,
                             const FaultCampaignEntry* baseline) {
  FaultCampaignEntry entry;
  entry.name = std::move(name);
  entry.nodes = reports.size();
  double sum_time = 0.0, sum_air = 0.0, sum_energy = 0.0;
  for (const auto& r : reports) {
    entry.total_reboots += r.transfer.node_reboots;
    entry.total_resumes += r.transfer.session_resumes;
    entry.total_retransmissions += r.transfer.retransmissions;
    entry.total_jammed_packets += r.transfer.jammed_packets;
    entry.total_forged_acks += r.transfer.forged_acks_discarded;
    entry.total_truncated_dropped += r.transfer.truncated_dropped;
    entry.total_replays_dropped += r.transfer.replays_dropped;
    if (r.failure == ota::UpdateFailure::kRejectedRollback)
      ++entry.rollback_rejections;
    if (r.rolled_back) ++entry.total_rollbacks;
    if (!r.success) continue;
    ++entry.successes;
    sum_time += r.total_time.value();
    sum_air += r.transfer.airtime.value();
    sum_energy += r.total_energy.value();
  }
  if (entry.successes > 0) {
    double n = static_cast<double>(entry.successes);
    entry.mean_time = Seconds{sum_time / n};
    entry.mean_airtime = Seconds{sum_air / n};
    entry.mean_energy = Millijoules{sum_energy / n};
  }
  if (baseline != nullptr && entry.successes > 0 &&
      baseline->successes > 0) {
    entry.added_airtime =
        Seconds{entry.mean_airtime.value() - baseline->mean_airtime.value()};
    entry.added_energy = Millijoules{entry.mean_energy.value() -
                                     baseline->mean_energy.value()};
  }
  entry.per_node = std::move(reports);
  if (auto* m = obs::metrics()) {
    m->counter("testbed.nodes_attempted")
        .add(static_cast<double>(entry.nodes));
    m->counter("testbed.nodes_updated")
        .add(static_cast<double>(entry.successes));
    for (const auto& r : entry.per_node) {
      if (!r.success) continue;
      m->histogram("testbed.node_time_min",
                   obs::HistogramSpec::linear(0.0, 240.0, 48))
          .observe(r.total_time.value() / 60.0);
    }
  }
  return entry;
}

std::vector<ota::UpdateReport> collect_reports(
    std::vector<NodeShard>& shards) {
  std::vector<ota::UpdateReport> reports;
  reports.reserve(shards.size());
  for (auto& s : shards)
    if (s.report) reports.push_back(std::move(*s.report));
  return reports;
}

}  // namespace

FaultCampaignResult run_fault_campaign(
    const Deployment& deployment, const fpga::FirmwareImage& image,
    ota::UpdateTarget target, const std::vector<FaultScenario>& scenarios,
    Rng& rng, const exec::ExecPolicy& policy) {
  FaultCampaignResult result;
  ota::UpdatePlanner planner;

  if (auto* t = obs::tracer()) t->name_track(0, "campaign");

  // One draw roots the whole campaign; pass k's base is stream k of it,
  // and node seeds are derived per (pass base, node id) — comparable
  // RSSI-driven loss across scenarios, independent of iteration order.
  const std::uint64_t campaign_base = exec::draw_base_seed(rng);

  // Fault-free reference pass.
  {
    obs::TraceSpan scenario_span{"testbed", "scenario:baseline"};
    const std::uint64_t pass_base = exec::stream_seed(campaign_base, 0);
    std::vector<NodeShard> shards;
    result.exec_status = run_fleet(
        deployment, policy, shards,
        [&](const Node& node, std::size_t) {
          ota::OtaLink link{ota::ota_link_params(), node.rssi,
                            node_link_seed(pass_base, node.id)};
          ota::FlashModel flash;
          mcu::Msp432 mcu = mcu::baseline_firmware();
          return planner.run(image, target, node.id, link, flash, mcu);
        });
    result.baseline =
        summarize("baseline", collect_reports(shards), nullptr);
  }

  for (std::size_t k = 0; k < scenarios.size(); ++k) {
    if (!result.exec_status.complete()) break;  // cancelled mid-campaign
    const FaultScenario& scenario = scenarios[k];
    obs::TraceSpan scenario_span{"testbed", "scenario:" + scenario.name};
    const std::uint64_t pass_base =
        exec::stream_seed(campaign_base, k + 1);
    std::vector<NodeShard> shards;
    result.exec_status = run_fleet(
        deployment, policy, shards,
        [&](const Node& node, std::size_t) {
          std::uint64_t seed = node_link_seed(pass_base, node.id);
          ota::OtaLink link{ota::ota_link_params(), node.rssi, seed};
          if (scenario.plan.burst) link.set_burst(*scenario.plan.burst);

          sim::FaultPlan plan = scenario.plan;
          plan.seed = seed ^ plan.seed;  // distinct fault stream per node
          sim::FaultInjector faults{plan};

          ota::FlashModel flash;
          mcu::Msp432 mcu = mcu::baseline_firmware();
          ota::FirmwareStore store{flash};
          // The fleet ships with a factory golden image to fall back on;
          // activating it ratchets the anti-rollback floor to the version
          // the fleet currently runs.
          std::vector<std::uint8_t> golden(
              16 * 1024, static_cast<std::uint8_t>(node.id));
          store.install_golden(golden, scenario.fleet_version);
          store.activate(ota::Slot::kGolden);

          std::unique_ptr<ota::LinkAttacker> attacker;
          if (scenario.make_attacker) attacker = scenario.make_attacker(seed);

          ota::UpdateOptions options;
          options.policy = scenario.policy;
          options.faults = &faults;
          options.store = &store;
          options.attacker = attacker.get();
          options.image_version = scenario.image_version;
          return planner.run(image, target, node.id, link, flash, mcu,
                             options);
        });
    result.scenarios.push_back(summarize(
        scenario.name, collect_reports(shards), &result.baseline));
  }
  std::size_t failed = result.baseline.nodes - result.baseline.successes;
  for (const auto& s : result.scenarios) failed += s.nodes - s.successes;
  maybe_dump_flight("fault-campaign:" + image.name, failed,
                    result.exec_status);
  return result;
}

FaultCampaignResult run_fault_campaign(
    const Deployment& deployment, const fpga::FirmwareImage& image,
    ota::UpdateTarget target, const std::vector<FaultScenario>& scenarios,
    Rng& rng) {
  return run_fault_campaign(deployment, image, target, scenarios, rng,
                            exec::ExecPolicy{});
}

}  // namespace tinysdr::testbed
