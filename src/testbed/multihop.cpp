#include "testbed/multihop.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tinysdr::testbed {

Dbm MeshNetwork::link_rssi(double from_m, double to_m) const {
  double distance = std::abs(to_m - from_m);
  return model_.received_power(tx_power_, distance);
}

bool MeshNetwork::connected(double from_m, double to_m) const {
  return lora::select_rate(link_rssi(from_m, to_m), margin_db_).has_value();
}

std::optional<Route> MeshNetwork::route_to(std::uint16_t dest_id,
                                           std::size_t payload_bytes) const {
  // Vertices: 0 = AP at position 0; 1..N = nodes.
  std::vector<double> pos{0.0};
  std::optional<std::size_t> dest_index;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    pos.push_back(nodes_[i].position_m);
    if (nodes_[i].id == dest_id) dest_index = i + 1;
  }
  if (!dest_index) return std::nullopt;

  // Dijkstra minimizing total airtime: each edge's cost is the time on
  // air at the fastest rate the link supports. (Fewest-hops would always
  // prefer one SF12 crawl over two SF7 hops — the opposite of what the
  // airtime/energy question asks.)
  auto edge_cost = [&](std::size_t u, std::size_t v)
      -> std::optional<double> {
    auto params = lora::select_rate(link_rssi(pos[u], pos[v]), margin_db_);
    if (!params) return std::nullopt;
    return lora::time_on_air(*params, payload_bytes).value();
  };

  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(pos.size(), inf);
  std::vector<int> parent(pos.size(), -1);
  std::vector<bool> done(pos.size(), false);
  dist[0] = 0.0;
  for (;;) {
    std::size_t u = pos.size();
    double best = inf;
    for (std::size_t i = 0; i < pos.size(); ++i)
      if (!done[i] && dist[i] < best) {
        best = dist[i];
        u = i;
      }
    if (u == pos.size()) break;
    done[u] = true;
    for (std::size_t v = 0; v < pos.size(); ++v) {
      if (done[v] || v == u) continue;
      auto cost = edge_cost(u, v);
      if (!cost) continue;
      if (dist[u] + *cost < dist[v]) {
        dist[v] = dist[u] + *cost;
        parent[v] = static_cast<int>(u);
      }
    }
  }
  if (dist[*dest_index] == inf) return std::nullopt;

  // Walk back and rate each hop.
  std::vector<std::size_t> chain;
  for (std::size_t v = *dest_index; v != 0;
       v = static_cast<std::size_t>(parent[v]))
    chain.push_back(v);
  std::reverse(chain.begin(), chain.end());

  Route route;
  std::size_t prev = 0;
  for (std::size_t v : chain) {
    Hop hop;
    hop.from = prev == 0 ? std::uint16_t{0} : nodes_[prev - 1].id;
    hop.to = nodes_[v - 1].id;
    hop.rssi = link_rssi(pos[prev], pos[v]);
    auto params = lora::select_rate(hop.rssi, margin_db_);
    if (!params) return std::nullopt;  // raced past connectivity: give up
    hop.sf = params->sf;
    hop.airtime = lora::time_on_air(*params, payload_bytes);
    route.hops.push_back(hop);
    prev = v;
  }
  if (auto* t = obs::tracer()) {
    t->instant("testbed", "route",
               {obs::TraceArg::num("dest", static_cast<double>(dest_id)),
                obs::TraceArg::num("hops",
                                   static_cast<double>(route.hops.size())),
                obs::TraceArg::num("airtime_s", route.total_airtime().value())});
  }
  if (auto* m = obs::metrics()) {
    m->counter("testbed.routes_computed").add();
    m->histogram("testbed.route_hops",
                 obs::HistogramSpec::linear(0.0, 10.0, 10))
        .observe(static_cast<double>(route.hops.size()));
  }
  return route;
}

MultihopOutcome compare_direct_vs_relayed(const MeshNetwork& mesh,
                                          std::uint16_t dest_id,
                                          std::size_t payload_bytes) {
  MultihopOutcome out;
  double dest_pos = 0.0;
  for (const auto& n : mesh.nodes())
    if (n.id == dest_id) dest_pos = n.position_m;

  auto direct = lora::select_rate(mesh.link_rssi(0.0, dest_pos));
  if (direct) {
    out.direct_possible = true;
    out.direct_airtime = lora::time_on_air(*direct, payload_bytes);
  }
  out.relayed = mesh.route_to(dest_id, payload_bytes);
  return out;
}

}  // namespace tinysdr::testbed
