// Multi-PHY link campaign across the testbed.
//
// The paper's testbed argument is that every node is *programmable*: the
// same 20-node campus deployment can run LoRa today and BLE tomorrow.
// This campaign models that — each node is assigned a protocol from a
// phy::Registry (round-robin by node index) and runs a LinkSimulator
// trial batch at its deployed RSSI, reporting per-node and per-protocol
// link health.
//
// Determinism follows the campaign rules: each node's seed derives from
// the campaign seed and its node id (node_link_seed), nodes shard across
// the exec worker pool with per-node metrics shards merged in node-index
// order, so output is byte-identical for any thread count.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "exec/policy.hpp"
#include "phy/link_sim.hpp"
#include "phy/registry.hpp"
#include "testbed/deployment.hpp"

namespace tinysdr::testbed {

struct PhyCampaignConfig {
  std::size_t trials_per_node = 20;
  /// Random payload per trial, clamped to each PHY's max (12 B fits all
  /// five built-in protocols, including Sigfox).
  std::size_t payload_bytes = 12;
  std::uint64_t base_seed = 1;
  /// Pin every node to one protocol instead of round-robin assignment —
  /// the "reprogram the whole fleet to LoRa" experiment a testbed
  /// operator (or a serve job) runs. Must be registered in the registry.
  std::optional<phy::Protocol> only_protocol;
};

struct PhyNodeResult {
  std::uint16_t node_id = 0;
  phy::Protocol protocol{};
  double rssi_dbm = 0.0;
  phy::PointResult link;
};

struct PhyProtocolSummary {
  phy::Protocol protocol{};
  std::size_t nodes = 0;
  std::uint64_t frames = 0;
  std::uint64_t frame_errors = 0;

  [[nodiscard]] double per() const {
    return frames == 0 ? 0.0
                       : static_cast<double>(frame_errors) /
                             static_cast<double>(frames);
  }
};

struct PhyCampaignResult {
  std::vector<PhyNodeResult> per_node;
  exec::RunStatus exec_status{};

  /// Aggregate per protocol, in registry order.
  [[nodiscard]] std::vector<PhyProtocolSummary> by_protocol(
      const phy::Registry& registry) const;
  /// CDF of per-node frame delivery rate (1 - PER).
  [[nodiscard]] std::vector<CdfPoint> delivery_cdf() const;
};

/// Run every node's trial batch, protocols assigned round-robin from the
/// registry, sharded across the exec worker pool under `policy`.
[[nodiscard]] PhyCampaignResult run_phy_campaign(
    const Deployment& deployment, const phy::Registry& registry,
    const PhyCampaignConfig& config, const exec::ExecPolicy& policy = {});

}  // namespace tinysdr::testbed
