// OTA programming campaign across the testbed (paper §5.3 / Fig. 14).
//
// Runs the full update pipeline against every node in a deployment and
// collects per-node programming times, reproducing the Fig. 14 CDFs for
// the LoRa FPGA image (579 kB -> ~99 kB), BLE FPGA image (-> ~40 kB) and
// the MCU programs (78 kB -> ~24 kB).
//
// Campaigns shard across the exec worker pool: every node runs as one
// independent unit with a seed derived up front from the campaign seed +
// node id (exec::stream_seed) and its own telemetry shard, and shards are
// merged in node-index order afterwards. Metrics, trace and report output
// are therefore byte-identical for a fixed seed regardless of thread
// count — pass exec::ExecPolicy::serial() or ::with_threads(8), the
// bytes match.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/policy.hpp"
#include "ota/update.hpp"
#include "testbed/deployment.hpp"

namespace tinysdr::testbed {

struct CampaignResult {
  std::string image_name;
  std::vector<ota::UpdateReport> per_node;
  /// How the parallel region ended. When cancelled (or past deadline),
  /// `per_node` holds only the nodes that actually ran, in node order.
  exec::RunStatus exec_status{};

  [[nodiscard]] std::size_t successes() const;
  [[nodiscard]] Seconds mean_time() const;
  [[nodiscard]] Millijoules mean_energy() const;
  /// CDF of per-node total programming time in minutes (Fig. 14's x-axis).
  [[nodiscard]] std::vector<CdfPoint> time_cdf_minutes() const;
};

/// Update every node in the deployment with the given image, sharded
/// across the exec worker pool under `policy`. The RNG supplies one
/// campaign base seed; every per-node seed is derived from it up front,
/// independent of execution order.
[[nodiscard]] CampaignResult run_campaign(const Deployment& deployment,
                                          const fpga::FirmwareImage& image,
                                          ota::UpdateTarget target, Rng& rng,
                                          const exec::ExecPolicy& policy);

/// Auto policy: thread count from TINYSDR_THREADS / hardware concurrency.
[[nodiscard]] CampaignResult run_campaign(const Deployment& deployment,
                                          const fpga::FirmwareImage& image,
                                          ota::UpdateTarget target, Rng& rng);

// ----------------------------------------------------- fault campaigns

/// One named fault regime to subject the fleet to.
struct FaultScenario {
  std::string name;
  sim::FaultPlan plan;
  ota::TransferPolicy policy{};
  /// Optional protocol-level adversary: called once per node with the
  /// node's derived seed, so attacker draws are deterministic and
  /// independent of fleet iteration order (adversary::attacker_factory
  /// builds one from an OtaAttackPlan).
  std::function<std::unique_ptr<ota::LinkAttacker>(std::uint64_t seed)>
      make_attacker;
  /// Monotonic version of the pushed image vs. the version the fleet is
  /// already running. image_version < fleet_version models a rollback
  /// attack; the nodes' anti-rollback ratchet must refuse it.
  std::uint32_t image_version = 1;
  std::uint32_t fleet_version = 0;
};

/// Fleet-level outcome of one scenario (or the fault-free baseline).
struct FaultCampaignEntry {
  std::string name;
  std::size_t nodes = 0;
  std::size_t successes = 0;
  std::vector<ota::UpdateReport> per_node;

  Seconds mean_time{0.0};         ///< successful nodes only
  Seconds mean_airtime{0.0};
  Millijoules mean_energy{0.0};
  /// Cost of the faults relative to the fault-free baseline (successful
  /// nodes only; zero for the baseline entry itself).
  Seconds added_airtime{0.0};
  Millijoules added_energy{0.0};

  std::size_t total_reboots = 0;
  std::size_t total_resumes = 0;
  std::size_t total_rollbacks = 0;
  std::size_t total_retransmissions = 0;
  // Detected-and-survived attack events, summed over the fleet; lets a
  // report distinguish "survived an attack" from a benign failure.
  std::size_t total_jammed_packets = 0;
  std::size_t total_forged_acks = 0;
  std::size_t total_truncated_dropped = 0;
  std::size_t total_replays_dropped = 0;
  /// Nodes that refused a version-rollback image (failure ==
  /// kRejectedRollback: the update "failed" but the node survived).
  std::size_t rollback_rejections = 0;

  [[nodiscard]] double success_rate() const {
    return nodes == 0 ? 0.0
                      : static_cast<double>(successes) /
                            static_cast<double>(nodes);
  }
};

struct FaultCampaignResult {
  FaultCampaignEntry baseline;             ///< fault-free reference run
  std::vector<FaultCampaignEntry> scenarios;
  /// Status of the last pass that ran. On cancellation the remaining
  /// scenarios are skipped and the partially-run pass reports only the
  /// nodes that completed.
  exec::RunStatus exec_status{};
};

/// Run the update across the fleet once fault-free, then once per fault
/// scenario, with per-node derived seeds so any node's run can be replayed
/// from its reported `transfer.link_seed`. Reports update success rate and
/// the airtime/energy cost of each fault regime vs the baseline. Nodes
/// within a pass shard across the exec worker pool under `policy`.
[[nodiscard]] FaultCampaignResult run_fault_campaign(
    const Deployment& deployment, const fpga::FirmwareImage& image,
    ota::UpdateTarget target, const std::vector<FaultScenario>& scenarios,
    Rng& rng, const exec::ExecPolicy& policy);

/// Auto policy: thread count from TINYSDR_THREADS / hardware concurrency.
[[nodiscard]] FaultCampaignResult run_fault_campaign(
    const Deployment& deployment, const fpga::FirmwareImage& image,
    ota::UpdateTarget target, const std::vector<FaultScenario>& scenarios,
    Rng& rng);

/// Per-node link seed derivation used by both campaign runners: high bits
/// from exec::stream_seed(pass_base, node id), node id packed in the low
/// 16 bits, so a node's run replays from its reported `link_seed` alone
/// and no node's seed depends on fleet iteration order.
[[nodiscard]] std::uint64_t node_link_seed(std::uint64_t pass_base,
                                           std::uint16_t node_id);

}  // namespace tinysdr::testbed
