// OTA programming campaign across the testbed (paper §5.3 / Fig. 14).
//
// Runs the full update pipeline against every node in a deployment and
// collects per-node programming times, reproducing the Fig. 14 CDFs for
// the LoRa FPGA image (579 kB -> ~99 kB), BLE FPGA image (-> ~40 kB) and
// the MCU programs (78 kB -> ~24 kB).
#pragma once

#include <string>
#include <vector>

#include "ota/update.hpp"
#include "testbed/deployment.hpp"

namespace tinysdr::testbed {

struct CampaignResult {
  std::string image_name;
  std::vector<ota::UpdateReport> per_node;

  [[nodiscard]] std::size_t successes() const;
  [[nodiscard]] Seconds mean_time() const;
  [[nodiscard]] Millijoules mean_energy() const;
  /// CDF of per-node total programming time in minutes (Fig. 14's x-axis).
  [[nodiscard]] std::vector<CdfPoint> time_cdf_minutes() const;
};

/// Update every node in the deployment with the given image.
[[nodiscard]] CampaignResult run_campaign(const Deployment& deployment,
                                          const fpga::FirmwareImage& image,
                                          ota::UpdateTarget target, Rng& rng);

}  // namespace tinysdr::testbed
