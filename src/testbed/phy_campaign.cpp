#include "testbed/phy_campaign.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "exec/parallel_for.hpp"
#include "obs/metrics.hpp"
#include "testbed/campaign.hpp"

namespace tinysdr::testbed {

std::vector<PhyProtocolSummary> PhyCampaignResult::by_protocol(
    const phy::Registry& registry) const {
  std::vector<PhyProtocolSummary> out;
  for (const auto& entry : registry.entries()) {
    PhyProtocolSummary s;
    s.protocol = entry.id;
    for (const auto& node : per_node) {
      if (node.protocol != entry.id) continue;
      ++s.nodes;
      s.frames += node.link.frames;
      s.frame_errors += node.link.frame_errors;
    }
    out.push_back(s);
  }
  return out;
}

std::vector<CdfPoint> PhyCampaignResult::delivery_cdf() const {
  std::vector<double> delivery;
  delivery.reserve(per_node.size());
  for (const auto& node : per_node)
    delivery.push_back(1.0 - node.link.per());
  return empirical_cdf(std::move(delivery));
}

PhyCampaignResult run_phy_campaign(const Deployment& deployment,
                                   const phy::Registry& registry,
                                   const PhyCampaignConfig& config,
                                   const exec::ExecPolicy& policy) {
  if (registry.size() == 0)
    throw std::invalid_argument("run_phy_campaign: empty registry");
  const phy::RegisteredPhy* pinned = nullptr;
  if (config.only_protocol) pinned = &registry.at(*config.only_protocol);

  const auto& nodes = deployment.nodes();
  PhyCampaignResult result;
  result.per_node.resize(nodes.size());

  obs::Registry* campaign_metrics = obs::metrics();
  std::vector<std::unique_ptr<obs::Registry>> shards(nodes.size());

  exec::ExecPolicy p = policy;
  if (p.grain == 0) p.grain = 1;  // one node's trial batch is a heavy item

  result.exec_status = exec::parallel_for(
      nodes.size(), p, [&](std::size_t i, std::size_t) {
        std::optional<obs::MetricsSession> session;
        if (campaign_metrics != nullptr) {
          shards[i] = std::make_unique<obs::Registry>();
          shards[i]->enable_journal();
          session.emplace(*shards[i]);
        }

        const Node& node = nodes[i];
        const auto& entry =
            pinned != nullptr ? *pinned
                              : registry.entries()[i % registry.size()];
        auto tx = entry.make_tx();
        auto rx = entry.make_rx();

        phy::TrialPlan plan;
        plan.trials = config.trials_per_node;
        plan.payload_bytes =
            std::min(config.payload_bytes, entry.max_payload);
        plan.pad_samples = entry.pad_samples;
        plan.noise_figure_db = entry.system_noise_figure_db;
        plan.base_seed = node_link_seed(config.base_seed, node.id);

        phy::LinkSimulator sim{*tx, *rx, plan};
        PhyNodeResult& out = result.per_node[i];
        out.node_id = node.id;
        out.protocol = entry.id;
        out.rssi_dbm = node.rssi.value();
        out.link = sim.run_point({node.rssi, std::nullopt});
      });

  if (campaign_metrics != nullptr)
    for (const auto& shard : shards)
      if (shard != nullptr) campaign_metrics->merge_from(*shard);
  return result;
}

}  // namespace tinysdr::testbed
