#include "testbed/deployment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lora/params.hpp"
#include "obs/metrics.hpp"

namespace tinysdr::testbed {

Deployment Deployment::campus(Rng& rng, Dbm ap_tx_power,
                              std::size_t node_count) {
  // 915 MHz backbone; campus path-loss exponent 3.1 (buildings and
  // foliage between the AP and the far nodes).
  channel::PathLossModel model{Hertz::from_megahertz(915.0), 3.1};
  Deployment d{model, ap_tx_power};

  // Distances log-uniform between 40 m (same building) and 2.5 km (far
  // edge of the coverage area), shadowing sigma = 4 dB; the far tail sits
  // near the backbone link's sensitivity, which is what spreads the
  // Fig. 14 CDF.
  for (std::size_t i = 0; i < node_count; ++i) {
    Node node;
    node.id = static_cast<std::uint16_t>(i + 1);
    double u = (static_cast<double>(i) + rng.next_double()) /
               static_cast<double>(node_count);
    node.distance_m = 40.0 * std::pow(2500.0 / 40.0, u);
    node.shadowing_db = rng.next_gaussian() * 4.0;
    channel::Link link;
    link.tx_power = ap_tx_power;
    link.tx_antenna_gain_db = 5.0;  // patch antenna at the AP
    link.distance_meters = node.distance_m;
    link.shadowing_db = node.shadowing_db;
    node.rssi = link.rssi(model);
    // The paper's deployment was engineered so every node is updatable;
    // keep at least 3 dB of margin over the backbone link's sensitivity
    // (a placement/antenna tweak in the real testbed).
    Dbm floor = lora::sx1276_sensitivity(8, Hertz::from_kilohertz(500.0)) +
                3.0;
    node.rssi = std::max(node.rssi, floor);
    d.nodes_.push_back(node);
  }
  return d;
}

Dbm Deployment::weakest_rssi() const {
  if (nodes_.empty()) throw std::logic_error("Deployment: empty");
  Dbm weakest = nodes_.front().rssi;
  for (const auto& n : nodes_) weakest = std::min(weakest, n.rssi);
  return weakest;
}

Dbm Deployment::strongest_rssi() const {
  if (nodes_.empty()) throw std::logic_error("Deployment: empty");
  Dbm strongest = nodes_.front().rssi;
  for (const auto& n : nodes_) strongest = std::max(strongest, n.rssi);
  return strongest;
}

void Deployment::export_metrics(obs::Registry& registry) const {
  registry.gauge("testbed.nodes").set(static_cast<double>(nodes_.size()));
  registry.gauge("testbed.ap_tx_dbm").set(ap_tx_power_.value());
  auto& rssi = registry.histogram(
      "testbed.node_rssi_dbm", obs::HistogramSpec::linear(-140.0, -40.0, 25));
  auto& distance = registry.histogram(
      "testbed.node_distance_m",
      obs::HistogramSpec::log_scale(10.0, 10000.0, 30));
  for_each_node([&](const Node& node) {
    rssi.observe(node.rssi.value());
    distance.observe(node.distance_m);
  });
}

std::vector<CdfPoint> empirical_cdf(std::vector<double>&& values) {
  std::sort(values.begin(), values.end());
  std::vector<CdfPoint> out;
  out.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.push_back(CdfPoint{values[i], static_cast<double>(i + 1) /
                                          static_cast<double>(values.size())});
  }
  return out;
}

std::vector<CdfPoint> empirical_cdf(const std::vector<double>& values) {
  return empirical_cdf(std::vector<double>{values});
}

}  // namespace tinysdr::testbed
