// Campus testbed model (paper Fig. 7: 20 tinySDR nodes across a campus).
//
// The published map is anonymized, so we synthesise a deployment with the
// same character: 20 nodes spread from courtyard distances to the
// kilometer-scale far corners of a campus, with log-normal shadowing. The
// AP transmits at 14 dBm through a patch antenna (§5.3).
#pragma once

#include <vector>

#include "channel/link_budget.hpp"
#include "common/rng.hpp"

namespace tinysdr::obs {
class Registry;
}

namespace tinysdr::testbed {

struct Node {
  std::uint16_t id = 0;
  double distance_m = 0.0;
  double shadowing_db = 0.0;
  Dbm rssi{-100.0};  ///< from the AP, via the deployment's path-loss model
};

class Deployment {
 public:
  /// Build the 20-node campus deployment.
  /// @param ap_tx_power      AP output (paper: 14 dBm + 5 dBi patch antenna)
  /// @param node_count       number of endpoints (paper: 20)
  static Deployment campus(Rng& rng, Dbm ap_tx_power = Dbm{14.0},
                           std::size_t node_count = 20);

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const channel::PathLossModel& path_loss() const {
    return model_;
  }
  [[nodiscard]] Dbm ap_tx_power() const { return ap_tx_power_; }

  /// RSSI statistics across the deployment.
  [[nodiscard]] Dbm weakest_rssi() const;
  [[nodiscard]] Dbm strongest_rssi() const;

  /// Visit every node in id order (telemetry exporters, per-node sweeps)
  /// without exposing the container.
  template <typename Fn>
  void for_each_node(Fn&& fn) const {
    for (const auto& node : nodes_) fn(node);
  }

  /// Record the deployment's shape into a metrics registry: node count,
  /// AP power, distance extremes, and an RSSI histogram.
  void export_metrics(obs::Registry& registry) const;

 private:
  Deployment(channel::PathLossModel model, Dbm tx)
      : model_(model), ap_tx_power_(tx) {}

  channel::PathLossModel model_;
  Dbm ap_tx_power_;
  std::vector<Node> nodes_;
};

/// Empirical CDF helper for per-node results (Fig. 14 is a CDF).
struct CdfPoint {
  double value;
  double probability;
};
/// Sorts in place (callers hand over the vector with std::move).
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::vector<double>&& values);
/// Copying overload for callers that keep their samples.
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(
    const std::vector<double>& values);

}  // namespace tinysdr::testbed
