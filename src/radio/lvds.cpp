#include "radio/lvds.hpp"

#include <stdexcept>

namespace tinysdr::radio {

namespace {
constexpr std::int32_t kMax13 = 4095;
constexpr std::int32_t kMin13 = -4096;
}  // namespace

std::uint16_t encode_sample13(std::int32_t value) {
  if (value < kMin13 || value > kMax13)
    throw std::out_of_range("encode_sample13: value outside 13-bit range");
  return static_cast<std::uint16_t>(value & 0x1FFF);
}

std::int32_t decode_sample13(std::uint16_t raw) {
  std::int32_t v = raw & 0x1FFF;
  if (v & 0x1000) v -= 0x2000;  // sign-extend bit 12
  return v;
}

std::uint32_t pack_word(const IqWord& word) {
  std::uint32_t image = 0;
  image |= std::uint32_t{kISync} << 30;
  image |= std::uint32_t{encode_sample13(word.i)} << 17;
  image |= std::uint32_t{word.i_ctrl ? 1u : 0u} << 16;
  image |= std::uint32_t{kQSync} << 14;
  image |= std::uint32_t{encode_sample13(word.q)} << 1;
  image |= std::uint32_t{word.q_ctrl ? 1u : 0u};
  return image;
}

std::optional<IqWord> unpack_word(std::uint32_t image) {
  if (((image >> 30) & 0x3u) != kISync) return std::nullopt;
  if (((image >> 14) & 0x3u) != kQSync) return std::nullopt;
  IqWord w;
  w.i = decode_sample13(static_cast<std::uint16_t>((image >> 17) & 0x1FFFu));
  w.i_ctrl = ((image >> 16) & 1u) != 0;
  w.q = decode_sample13(static_cast<std::uint16_t>((image >> 1) & 0x1FFFu));
  w.q_ctrl = (image & 1u) != 0;
  return w;
}

void LvdsSerializer::push(const IqWord& word) {
  const std::uint32_t image = pack_word(word);
  for (int b = kWordBits - 1; b >= 0; --b)
    bits_.push_back(((image >> b) & 1u) != 0);
}

void LvdsSerializer::push_samples(
    const std::vector<IqQuantizer::CodePair>& codes) {
  for (const auto& c : codes) push(IqWord{c.i, c.q, false, false});
}

std::optional<IqWord> LvdsDeserializer::parse_at(std::size_t start) const {
  // A truncated window is a parse failure, not a precondition violation:
  // fuzzed/short streams must never read past the buffer.
  if (start > window_.size() ||
      window_.size() - start < static_cast<std::size_t>(kWordBits))
    return std::nullopt;
  std::uint32_t image = 0;
  for (std::size_t b = 0; b < static_cast<std::size_t>(kWordBits); ++b)
    image = (image << 1) | (window_[start + b] ? 1u : 0u);
  return unpack_word(image);
}

void LvdsDeserializer::feed(bool bit) {
  window_.push_back(bit);

  if (in_sync_) {
    if (window_.size() < static_cast<std::size_t>(kWordBits)) return;
    auto word = parse_at(0);
    if (word) {
      words_.push_back(*word);
      window_.clear();
    } else {
      // Bit slip: fall back to hunting over the stale window.
      in_sync_ = false;
    }
    return;
  }

  // Hunting: require two back-to-back parsable words (64 bits) before
  // declaring lock — a single 4-bit sync match false-fires too often on
  // random sample data.
  const auto hunt_bits = static_cast<std::size_t>(2 * kWordBits);
  if (window_.size() < hunt_bits) return;
  while (window_.size() > hunt_bits) {
    window_.erase(window_.begin());
    ++slipped_;
  }
  auto first = parse_at(0);
  auto second = parse_at(static_cast<std::size_t>(kWordBits));
  if (first && second) {
    words_.push_back(*first);
    words_.push_back(*second);
    window_.clear();
    in_sync_ = true;
  } else {
    window_.erase(window_.begin());
    ++slipped_;
  }
}

void LvdsDeserializer::feed(const std::vector<bool>& bits) {
  for (bool b : bits) feed(b);
}

std::vector<IqWord> LvdsDeserializer::take_words() {
  std::vector<IqWord> out;
  out.swap(words_);
  return out;
}

std::vector<IqWord> lvds_roundtrip(
    const std::vector<IqQuantizer::CodePair>& codes) {
  LvdsSerializer ser;
  ser.push_samples(codes);
  LvdsDeserializer des;
  des.feed(ser.bits());
  return des.take_words();
}

}  // namespace tinysdr::radio
