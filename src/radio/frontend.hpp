// RF front-end models: the SE2435L (sub-GHz) and SKY66112 (2.4 GHz)
// PA/LNA chips with their bypass switches, plus the ADG904 SP4T RF switch
// that shares the 900 MHz antenna between the I/Q radio and the OTA
// backbone radio (paper §3.1.1, §3.2.3).
#pragma once

#include <stdexcept>
#include <string>

#include "common/units.hpp"

namespace tinysdr::radio {

enum class FrontendMode {
  kSleep,      ///< both PA and LNA off (1 uA)
  kBypass,     ///< signal routed around PA/LNA (280 uA max)
  kTransmit,   ///< PA active
  kReceive,    ///< LNA active
};

/// Parameters for one front-end chip.
struct FrontendSpec {
  std::string name;
  Dbm max_output{27.0};
  double lna_gain_db = 12.0;
  double pa_gain_db = 16.0;
  /// Drain efficiency of the PA at max output (fraction).
  double pa_efficiency = 0.30;
  double sleep_current_ua = 1.0;
  double bypass_current_ua = 280.0;
  double supply_volts = 3.5;
};

/// SE2435L: 900 MHz front-end, up to +30 dBm.
[[nodiscard]] FrontendSpec se2435l_spec();
/// SKY66112: 2.4 GHz front-end, up to +27 dBm.
[[nodiscard]] FrontendSpec sky66112_spec();

/// One PA/LNA front-end instance with mode control.
class Frontend {
 public:
  explicit Frontend(FrontendSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const FrontendSpec& spec() const { return spec_; }
  [[nodiscard]] FrontendMode mode() const { return mode_; }
  void set_mode(FrontendMode mode) { mode_ = mode; }

  /// Output power for a given radio-chip output, given the current mode.
  /// In bypass the signal passes through unamplified; in transmit the PA
  /// adds its gain up to the saturation limit.
  [[nodiscard]] Dbm output_power(Dbm radio_output) const;

  /// Effective receive gain ahead of the radio (LNA in kReceive, 0 dB in
  /// bypass).
  [[nodiscard]] double receive_gain_db() const;

  /// DC power draw in the current mode at the given RF output power
  /// (transmit mode only; other modes use the static currents).
  [[nodiscard]] Milliwatts dc_power(Dbm rf_output = Dbm{0.0}) const;

 private:
  FrontendSpec spec_;
  FrontendMode mode_ = FrontendMode::kSleep;
};

/// ADG904 SP4T switch: selects between the I/Q radio's 900 MHz port and the
/// backbone radio's separate TX and RX paths.
enum class RfPath { kIqRadio900, kBackboneTx, kBackboneRx, kUnused };

class RfSwitch {
 public:
  [[nodiscard]] RfPath selected() const { return selected_; }
  void select(RfPath path) { selected_ = path; }

  /// Insertion loss of the switch (datasheet ~0.8 dB at 1 GHz).
  [[nodiscard]] static double insertion_loss_db() { return 0.8; }

 private:
  RfPath selected_ = RfPath::kIqRadio900;
};

}  // namespace tinysdr::radio
