#include "radio/at86rf215.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tinysdr::radio {

namespace {

/// Every radio state transition records an instant (with its settle cost)
/// and bumps a per-transition counter.
void note_transition(const char* name, Seconds cost) {
  if (auto* t = obs::tracer()) {
    t->instant("radio", name,
               {obs::TraceArg::num("cost_us", cost.microseconds())});
  }
  if (auto* m = obs::metrics())
    m->counter(std::string("radio.transitions.") + name).add();
}

}  // namespace

std::optional<Band> band_of(Hertz frequency) {
  double mhz = frequency.megahertz();
  if (mhz >= 389.5 && mhz <= 510.0) return Band::kSubGhz400;
  if (mhz >= 779.0 && mhz <= 1020.0) return Band::kSubGhz900;
  if (mhz >= 2400.0 && mhz <= 2483.5) return Band::kIsm2400;
  return std::nullopt;
}

At86rf215::At86rf215(At86rf215Config config)
    : config_(config), quantizer_(config.adc_bits, 1.0f) {
  // 2.4 GHz synthesizer chain draws slightly more; Fig. 9 shows the two
  // curves within a few mW of each other with 2.4 GHz marginally higher at
  // low output.
  tx_curve_2400_.flat_region = Milliwatts{127.0};
  tx_curve_2400_.slope_mw_per_mw = 2.20;
}

Band At86rf215::band() const {
  auto b = band_of(frequency_);
  if (!b) throw std::logic_error("At86rf215: invalid stored frequency");
  return *b;
}

void At86rf215::set_frequency(Hertz frequency) {
  if (!band_of(frequency))
    throw std::invalid_argument(
        "At86rf215: frequency outside 389.5-510 / 779-1020 / 2400-2483.5 MHz");
  frequency_ = frequency;
}

void At86rf215::set_tx_power(Dbm power) {
  if (power < config_.min_tx_power || power > config_.max_tx_power)
    throw std::invalid_argument("At86rf215: TX power out of range");
  tx_power_ = power;
}

Seconds At86rf215::wake() {
  if (state_ != RadioState::kSleep) return Seconds{0.0};
  state_ = RadioState::kTrxOff;
  transition_time_ += timing_.radio_setup;
  note_transition("wake", timing_.radio_setup);
  return timing_.radio_setup;
}

Seconds At86rf215::sleep() {
  state_ = RadioState::kSleep;
  note_transition("sleep", Seconds{0.0});
  return Seconds{0.0};
}

Seconds At86rf215::enter_tx() {
  Seconds cost{0.0};
  switch (state_) {
    case RadioState::kSleep:
      throw std::logic_error("At86rf215: enter_tx from sleep; wake first");
    case RadioState::kRx:
      cost = timing_.rx_to_tx;
      break;
    case RadioState::kTrxOff:
    case RadioState::kTxPrep:
      cost = Seconds::from_microseconds(50.0);  // PLL settle from off
      break;
    case RadioState::kTx:
      return Seconds{0.0};
  }
  state_ = RadioState::kTx;
  transition_time_ += cost;
  note_transition("enter-tx", cost);
  return cost;
}

Seconds At86rf215::enter_rx() {
  Seconds cost{0.0};
  switch (state_) {
    case RadioState::kSleep:
      throw std::logic_error("At86rf215: enter_rx from sleep; wake first");
    case RadioState::kTx:
      cost = timing_.tx_to_rx;
      break;
    case RadioState::kTrxOff:
    case RadioState::kTxPrep:
      cost = Seconds::from_microseconds(90.0);  // PLL settle from off
      break;
    case RadioState::kRx:
      return Seconds{0.0};
  }
  state_ = RadioState::kRx;
  transition_time_ += cost;
  note_transition("enter-rx", cost);
  return cost;
}

Seconds At86rf215::retune(Hertz f) {
  if (state_ == RadioState::kSleep)
    throw std::logic_error("At86rf215: retune from sleep");
  set_frequency(f);
  transition_time_ += timing_.frequency_switch;
  note_transition("retune", timing_.frequency_switch);
  return timing_.frequency_switch;
}

Milliwatts At86rf215::dc_power() const {
  switch (state_) {
    case RadioState::kSleep:
      // Deep sleep: ~30 nA leakage.
      return Milliwatts::from_microwatts(0.1);
    case RadioState::kTrxOff:
    case RadioState::kTxPrep:
      return Milliwatts{10.0};
    case RadioState::kRx:
      // Table 2 lists 50 mW RX; §5.2 measures 59 mW with the LVDS I/Q
      // interface streaming, which is the mode this model represents.
      return Milliwatts{59.0};
    case RadioState::kTx: {
      const TxPowerCurve& curve =
          band() == Band::kIsm2400 ? tx_curve_2400_ : tx_curve_900_;
      return curve.dc_draw(tx_power_);
    }
  }
  throw std::logic_error("At86rf215: invalid state");
}

dsp::Samples At86rf215::transmit(const dsp::Samples& baseband) const {
  if (state_ != RadioState::kTx)
    throw std::logic_error("At86rf215: transmit while not in TX");
  return quantizer_.roundtrip(baseband);
}

dsp::Samples At86rf215::receive(const dsp::Samples& rf) const {
  if (state_ != RadioState::kRx)
    throw std::logic_error("At86rf215: receive while not in RX");

  // Front-end impairments (direct-conversion artifacts) before the AGC.
  dsp::Samples impaired = rf;
  if (impairments_.any()) {
    double rms = std::sqrt(std::max(dsp::mean_power(rf), 1e-30));
    auto dc = static_cast<float>(impairments_.dc_offset * rms);
    auto q_gain = static_cast<float>(
        std::pow(10.0, impairments_.iq_gain_imbalance_db / 20.0));
    double skew = impairments_.iq_phase_skew_deg * 3.14159265358979 / 180.0;
    auto sin_skew = static_cast<float>(std::sin(skew));
    auto cos_skew = static_cast<float>(std::cos(skew));
    double cfo_cps = impairments_.cfo_hz / config_.sample_rate.value();
    double phase = 0.0;
    for (auto& s : impaired) {
      // Quadrature error: Q picks up a fraction of I and a gain error.
      float i = s.real();
      float q = q_gain * (s.imag() * cos_skew + s.real() * sin_skew);
      s = dsp::Complex{i + dc, q + dc};
      if (cfo_cps != 0.0) {
        s *= dsp::Complex{static_cast<float>(std::cos(phase)),
                          static_cast<float>(std::sin(phase))};
        phase += 2.0 * 3.14159265358979 * cfo_cps;
      }
    }
  }

  // AGC: scale the block so its RMS sits at 1/4 full scale (12 dB backoff,
  // leaving headroom for the signal's crest factor), then quantize.
  double power = dsp::mean_power(impaired);
  dsp::Samples scaled = impaired;
  if (power > 0.0) {
    auto gain = static_cast<float>(0.25 / std::sqrt(power));
    for (auto& s : scaled) s *= gain;
  }
  dsp::Samples quantized = quantizer_.roundtrip(scaled);
  // Undo the AGC gain so downstream processing sees calibrated amplitudes.
  if (power > 0.0) {
    auto inv = static_cast<float>(std::sqrt(power) / 0.25);
    for (auto& s : quantized) s *= inv;
  }
  return quantized;
}

}  // namespace tinysdr::radio
