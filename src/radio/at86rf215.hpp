// Behavioural model of the AT86RF215 I/Q radio transceiver.
//
// This is the platform's only RF chip for payload traffic (paper §3.1.1):
// it exposes raw 13-bit I/Q at 4 MHz over LVDS, covers the 389.5-510 /
// 779-1020 / 2400-2483.5 MHz bands, transmits up to +14 dBm, and has a
// 3-5 dB noise figure front end with LNA + AGC on the receive chain.
//
// The model covers: band/frequency validation, the TRX state machine with
// the measured switching delays (Table 4), DC power draw per state
// (calibrated to Fig. 9 and Table 2), and the DAC/AGC/ADC signal path.
#pragma once

#include <optional>
#include <stdexcept>

#include "common/units.hpp"
#include "dsp/types.hpp"
#include "radio/quantizer.hpp"
#include "radio/timing.hpp"

namespace tinysdr::radio {

enum class RadioState { kSleep, kTrxOff, kTxPrep, kTx, kRx };

enum class Band { kSubGhz400, kSubGhz900, kIsm2400 };

/// Which band a carrier frequency falls into, if any.
[[nodiscard]] std::optional<Band> band_of(Hertz frequency);

struct At86rf215Config {
  Hertz sample_rate = Hertz::from_megahertz(4.0);
  int adc_bits = 13;
  double noise_figure_db = 4.0;
  Dbm max_tx_power{14.0};
  Dbm min_tx_power{-14.0};
};

/// Analog front-end impairments of a direct-conversion receiver. Defaults
/// are the AT86RF215's typical (small) figures; the ablation bench sweeps
/// them to show the demodulator's tolerance.
struct RxImpairments {
  double dc_offset = 0.0;           ///< DC leak, fraction of RMS signal
  double iq_gain_imbalance_db = 0.0;///< Q-rail gain error
  double iq_phase_skew_deg = 0.0;   ///< quadrature error
  double cfo_hz = 0.0;              ///< residual LO offset

  [[nodiscard]] bool any() const {
    return dc_offset != 0.0 || iq_gain_imbalance_db != 0.0 ||
           iq_phase_skew_deg != 0.0 || cfo_hz != 0.0;
  }
};

/// TX DC power curve calibrated against the paper's Fig. 9 (whole-platform
/// numbers minus the 108 mW FPGA+MCU+regulator baseline implied by §5.2's
/// LoRa TX decomposition: 287 mW total, 179 mW radio).
struct TxPowerCurve {
  Milliwatts flat_region{123.0};   ///< DC draw at/below the knee
  Dbm knee{0.0};                   ///< output level where DC starts rising
  double slope_mw_per_mw = 2.16;   ///< dDC/dRF above the knee (1/efficiency)

  [[nodiscard]] Milliwatts dc_draw(Dbm rf_output) const {
    if (rf_output <= knee) return flat_region;
    double extra = rf_output.milliwatts() - knee.milliwatts();
    return flat_region + Milliwatts{extra * slope_mw_per_mw};
  }
};

class At86rf215 {
 public:
  explicit At86rf215(At86rf215Config config = {});

  [[nodiscard]] const At86rf215Config& config() const { return config_; }
  [[nodiscard]] RadioState state() const { return state_; }
  [[nodiscard]] Hertz frequency() const { return frequency_; }
  [[nodiscard]] Dbm tx_power() const { return tx_power_; }
  [[nodiscard]] Band band() const;

  /// Accumulated time spent in state transitions since construction.
  [[nodiscard]] Seconds transition_time() const { return transition_time_; }

  /// @throws std::invalid_argument for frequencies outside all three bands.
  void set_frequency(Hertz frequency);

  /// @throws std::invalid_argument outside [min, max] TX power.
  void set_tx_power(Dbm power);

  /// State transitions; each returns the time it took (per Table 4) and
  /// accrues into transition_time().
  Seconds wake();           ///< kSleep  -> kTrxOff
  Seconds sleep();          ///< any     -> kSleep
  Seconds enter_tx();       ///< kTrxOff/kRx -> kTx
  Seconds enter_rx();       ///< kTrxOff/kTx -> kRx
  Seconds retune(Hertz f);  ///< frequency switch (any active state)

  /// DC power draw in the current state (TX uses the calibrated curve).
  [[nodiscard]] Milliwatts dc_power() const;

  /// Transmit path: waveform -> DAC quantization. The input must be a
  /// unit-power-normalised baseband block; the output is the DAC-shaped
  /// waveform the antenna sees (still unit power scale — absolute power is
  /// carried separately by tx_power()).
  /// @throws std::logic_error unless in kTx.
  [[nodiscard]] dsp::Samples transmit(const dsp::Samples& baseband) const;

  /// Receive path: antenna waveform -> front-end impairments -> AGC ->
  /// ADC quantization.
  /// @throws std::logic_error unless in kRx.
  [[nodiscard]] dsp::Samples receive(const dsp::Samples& rf) const;

  void set_rx_impairments(RxImpairments imp) { impairments_ = imp; }
  [[nodiscard]] const RxImpairments& rx_impairments() const {
    return impairments_;
  }

  [[nodiscard]] const TimingModel& timing() const { return timing_; }

 private:
  At86rf215Config config_;
  TimingModel timing_;
  TxPowerCurve tx_curve_900_;
  TxPowerCurve tx_curve_2400_;
  IqQuantizer quantizer_;
  RxImpairments impairments_;
  RadioState state_ = RadioState::kSleep;
  Hertz frequency_ = Hertz::from_megahertz(915.0);
  Dbm tx_power_{0.0};
  Seconds transition_time_{0.0};
};

}  // namespace tinysdr::radio
