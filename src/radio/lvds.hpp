// LVDS serial I/Q interface between the AT86RF215 and the FPGA.
//
// Bit-exact model of the paper's Fig. 4 word structure. The radio emits
// 32-bit serial words at 4 Mwords/s (128 Mbps over a 64 MHz DDR clock):
//
//   [ I_SYNC(2) | I_DATA(13) | CTRL(1) | Q_SYNC(2) | Q_DATA(13) | CTRL(1) ]
//
// The FPGA-side deserializer samples both clock edges, hunts for the
// I_SYNC/Q_SYNC patterns to find word boundaries, and loads I/Q into 13-bit
// registers for parallel processing. We reproduce the serializer, the
// deserializer (including resynchronisation after bit slips), and the
// signed 13-bit sample encoding.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "radio/quantizer.hpp"

namespace tinysdr::radio {

/// Sync patterns (2 bits each). Chosen so that I and Q fields are
/// distinguishable and a stream of idle zeros never aliases a sync.
inline constexpr std::uint8_t kISync = 0b10;
inline constexpr std::uint8_t kQSync = 0b01;

inline constexpr int kSampleBits = 13;
inline constexpr int kWordBits = 32;

/// One decoded I/Q word.
struct IqWord {
  std::int32_t i = 0;      ///< signed 13-bit I sample
  std::int32_t q = 0;      ///< signed 13-bit Q sample
  bool i_ctrl = false;     ///< control bit following I data
  bool q_ctrl = false;     ///< control bit following Q data
};

/// Encode a signed sample (-4096..4095) to 13-bit two's complement.
[[nodiscard]] std::uint16_t encode_sample13(std::int32_t value);
/// Decode 13-bit two's complement to a signed sample.
[[nodiscard]] std::int32_t decode_sample13(std::uint16_t raw);

/// Pack one I/Q word into its 32-bit wire image (MSB = first bit on the
/// wire). @throws std::out_of_range if a sample is outside 13-bit range.
[[nodiscard]] std::uint32_t pack_word(const IqWord& word);

/// Parse a 32-bit wire image. Returns nullopt — never UB, never a
/// half-decoded word — when either sync field is invalid: I_SYNC must be
/// exactly 0b10 and Q_SYNC exactly 0b01, so images with both sync bits
/// set (0b11), swapped fields, or idle zeros are all rejected.
[[nodiscard]] std::optional<IqWord> unpack_word(std::uint32_t image);

/// Serialize I/Q words to a flat bit stream (MSB of the word first, which
/// is the order the DDR interface shifts).
class LvdsSerializer {
 public:
  /// Append one word's 32 bits to the stream.
  void push(const IqWord& word);

  /// Append a block of quantized samples (ctrl bits zero).
  void push_samples(const std::vector<IqQuantizer::CodePair>& codes);

  [[nodiscard]] const std::vector<bool>& bits() const { return bits_; }
  [[nodiscard]] std::size_t word_count() const { return bits_.size() / kWordBits; }

  /// Serialized throughput in bits per second given the word rate.
  [[nodiscard]] static double throughput_bps(double words_per_second) {
    return words_per_second * kWordBits;
  }

 private:
  std::vector<bool> bits_;
};

/// FPGA-side deserializer with sync hunting.
///
/// Feed bits one at a time (as they arrive off the DDR sampler); decoded
/// words become available via `take_words()`. If the stream starts
/// mid-word or slips, the deserializer re-hunts for an I_SYNC at the next
/// position where the full word parses with both sync fields valid.
class LvdsDeserializer {
 public:
  void feed(bool bit);
  void feed(const std::vector<bool>& bits);

  /// Words decoded so far (consumes them).
  [[nodiscard]] std::vector<IqWord> take_words();

  /// Number of bits discarded while hunting for sync.
  [[nodiscard]] std::size_t slipped_bits() const { return slipped_; }

  /// Bits buffered but not yet decoded or discarded — nonzero after a
  /// stream that ends mid-word. A truncated final word is *rejected*
  /// (held here, never emitted as a garbage word); every fed bit is
  /// accounted for as 32 * decoded words + slipped_bits() + pending_bits().
  [[nodiscard]] std::size_t pending_bits() const { return window_.size(); }

  [[nodiscard]] bool in_sync() const { return in_sync_; }

 private:
  /// Try to parse 32 bits of `window_` starting at `start`. nullopt if the
  /// window holds fewer than 32 bits past `start` (truncated word) or the
  /// sync fields don't match — defensive on both counts, so no caller can
  /// turn a short window into out-of-bounds reads.
  [[nodiscard]] std::optional<IqWord> parse_at(std::size_t start) const;

  std::vector<bool> window_;
  std::vector<IqWord> words_;
  std::size_t slipped_ = 0;
  bool in_sync_ = false;
};

/// Convenience: full round trip from quantized samples through the serial
/// stream back to samples.
[[nodiscard]] std::vector<IqWord> lvds_roundtrip(
    const std::vector<IqQuantizer::CodePair>& codes);

/// Paper-facing names for the two halves of the Fig. 4 word codec.
using Framer = LvdsSerializer;
using Deframer = LvdsDeserializer;

}  // namespace tinysdr::radio
