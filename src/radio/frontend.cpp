#include "radio/frontend.hpp"

#include <algorithm>
#include <cmath>

namespace tinysdr::radio {

FrontendSpec se2435l_spec() {
  FrontendSpec spec;
  spec.name = "SE2435L";
  spec.max_output = Dbm{30.0};
  spec.lna_gain_db = 16.0;
  spec.pa_gain_db = 16.0;
  spec.pa_efficiency = 0.35;
  spec.sleep_current_ua = 1.0;
  spec.bypass_current_ua = 280.0;
  spec.supply_volts = 3.5;
  return spec;
}

FrontendSpec sky66112_spec() {
  FrontendSpec spec;
  spec.name = "SKY66112";
  spec.max_output = Dbm{27.0};
  spec.lna_gain_db = 12.0;
  spec.pa_gain_db = 13.0;
  spec.pa_efficiency = 0.30;
  spec.sleep_current_ua = 1.0;
  spec.bypass_current_ua = 280.0;
  spec.supply_volts = 3.0;
  return spec;
}

Dbm Frontend::output_power(Dbm radio_output) const {
  switch (mode_) {
    case FrontendMode::kSleep:
      throw std::logic_error("Frontend: output requested while asleep");
    case FrontendMode::kBypass:
      return radio_output;
    case FrontendMode::kTransmit: {
      Dbm amplified = radio_output + spec_.pa_gain_db;
      return std::min(amplified, spec_.max_output);
    }
    case FrontendMode::kReceive:
      throw std::logic_error("Frontend: output requested in receive mode");
  }
  throw std::logic_error("Frontend: invalid mode");
}

double Frontend::receive_gain_db() const {
  switch (mode_) {
    case FrontendMode::kReceive:
      return spec_.lna_gain_db;
    case FrontendMode::kBypass:
      return 0.0;
    default:
      throw std::logic_error("Frontend: receive gain in non-receive mode");
  }
}

Milliwatts Frontend::dc_power(Dbm rf_output) const {
  switch (mode_) {
    case FrontendMode::kSleep:
      return Milliwatts::from_volts_milliamps(spec_.supply_volts,
                                              spec_.sleep_current_ua * 1e-3);
    case FrontendMode::kBypass:
      return Milliwatts::from_volts_milliamps(spec_.supply_volts,
                                              spec_.bypass_current_ua * 1e-3);
    case FrontendMode::kReceive:
      // LNA active draw, roughly 6 mA on these parts.
      return Milliwatts::from_volts_milliamps(spec_.supply_volts, 6.0);
    case FrontendMode::kTransmit: {
      // PA draw = RF output / efficiency, with a small quiescent floor.
      double rf_mw = rf_output.milliwatts();
      double dc_mw = rf_mw / spec_.pa_efficiency + 15.0;
      return Milliwatts{dc_mw};
    }
  }
  throw std::logic_error("Frontend: invalid mode");
}

}  // namespace tinysdr::radio
