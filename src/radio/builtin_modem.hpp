// AT86RF215 built-in modem path (paper §3.1.1).
//
// The radio chip "has built in support for common modulations such as
// MR-FSK, MR-OFDM, MR-O-QPSK and O-QPSK that can save FPGA resources or
// power by bypassing the FPGA entirely". We model the MR-FSK (802.15.4g)
// path: frame assembly (preamble + SFD + PHR + payload + FCS), 2-FSK
// modulation and a discriminator receiver — all inside the "radio chip",
// so the FPGA can stay powered down for simple telemetry. A power
// comparison against the FPGA I/Q path is exposed for the ablation bench.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dsp/types.hpp"

namespace tinysdr::radio {

struct MrFskConfig {
  double symbol_rate = 50e3;     ///< 802.15.4g base mode: 50 kb/s
  double deviation_hz = 25e3;    ///< h = 1.0
  std::uint32_t samples_per_symbol = 8;
  std::size_t preamble_bytes = 4;  ///< 0x55 repeated

  [[nodiscard]] Hertz sample_rate() const {
    return Hertz{symbol_rate * samples_per_symbol};
  }
};

/// 802.15.4g MR-FSK SFD for uncoded mode.
inline constexpr std::uint16_t kMrFskSfd = 0x7209;

class BuiltinFskModem {
 public:
  explicit BuiltinFskModem(MrFskConfig config = {});

  [[nodiscard]] const MrFskConfig& config() const { return config_; }

  /// Assemble a PHY frame: preamble | SFD | PHR(len) | payload | FCS16.
  /// @throws std::invalid_argument for payloads > 2047 B (11-bit length).
  [[nodiscard]] std::vector<bool> frame_bits(
      std::span<const std::uint8_t> payload) const;

  /// Frame -> baseband I/Q (2-FSK, rectangular pulses — MR-FSK base mode).
  [[nodiscard]] dsp::Samples modulate(
      std::span<const std::uint8_t> payload) const;

  /// Receive: discriminator, preamble correlation for bit timing, SFD
  /// hunt, PHR parse, FCS check. Returns the payload or nullopt.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> demodulate(
      const dsp::Samples& iq) const;

  /// Airtime of a frame.
  [[nodiscard]] Seconds airtime(std::size_t payload_bytes) const;

 private:
  MrFskConfig config_;
};

}  // namespace tinysdr::radio
