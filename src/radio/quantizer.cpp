#include "radio/quantizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tinysdr::radio {

IqQuantizer::IqQuantizer(int bits, float full_scale)
    : bits_(bits), full_scale_(full_scale) {
  if (bits < 2 || bits > 24)
    throw std::invalid_argument("IqQuantizer: bits out of range");
  if (full_scale <= 0.0f)
    throw std::invalid_argument("IqQuantizer: full_scale <= 0");
  max_code_ = (std::int32_t{1} << (bits - 1)) - 1;
  step_ = full_scale_ / static_cast<float>(max_code_);
}

std::int32_t IqQuantizer::quantize(float value) const {
  float scaled = value / step_;
  auto code = static_cast<std::int32_t>(std::lround(scaled));
  return std::clamp(code, -max_code_ - 1, max_code_);
}

float IqQuantizer::dequantize(std::int32_t code) const {
  return static_cast<float>(code) * step_;
}

IqQuantizer::CodePair IqQuantizer::quantize(dsp::Complex sample) const {
  return CodePair{quantize(sample.real()), quantize(sample.imag())};
}

dsp::Complex IqQuantizer::dequantize(CodePair codes) const {
  return dsp::Complex{dequantize(codes.i), dequantize(codes.q)};
}

dsp::Samples IqQuantizer::roundtrip(const dsp::Samples& in) const {
  dsp::Samples out;
  out.reserve(in.size());
  for (const auto& s : in) out.push_back(dequantize(quantize(s)));
  return out;
}

double IqQuantizer::ideal_snr_db() const { return 6.02 * bits_ + 1.76; }

}  // namespace tinysdr::radio
