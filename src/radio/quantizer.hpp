// ADC/DAC quantization model for the AT86RF215 I/Q data path.
//
// The radio samples baseband at 4 MHz with 13-bit resolution per rail
// (paper §3.2.1). Both directions matter: the demodulator sees ADC-quantized
// samples and the modulator's waveform passes through the DAC. We model a
// mid-tread uniform quantizer with saturation.
#pragma once

#include <cstdint>

#include "dsp/types.hpp"

namespace tinysdr::radio {

/// Uniform mid-tread quantizer with configurable bit depth.
class IqQuantizer {
 public:
  /// @param bits        resolution per rail (AT86RF215: 13)
  /// @param full_scale  analog amplitude mapped to code extremes
  explicit IqQuantizer(int bits = 13, float full_scale = 1.0f);

  [[nodiscard]] int bits() const { return bits_; }
  [[nodiscard]] float full_scale() const { return full_scale_; }

  /// Max positive code (2^(bits-1) - 1).
  [[nodiscard]] std::int32_t max_code() const { return max_code_; }

  /// Quantize one rail value to an integer code (saturating).
  [[nodiscard]] std::int32_t quantize(float value) const;

  /// Convert a code back to an analog value.
  [[nodiscard]] float dequantize(std::int32_t code) const;

  /// Quantize a complex sample to a pair of codes.
  struct CodePair {
    std::int32_t i;
    std::int32_t q;
  };
  [[nodiscard]] CodePair quantize(dsp::Complex sample) const;
  [[nodiscard]] dsp::Complex dequantize(CodePair codes) const;

  /// Round-trip an entire block through the quantizer (what the ADC/DAC
  /// does to a waveform).
  [[nodiscard]] dsp::Samples roundtrip(const dsp::Samples& in) const;

  /// Theoretical quantization SNR for a full-scale sine (6.02*bits + 1.76).
  [[nodiscard]] double ideal_snr_db() const;

 private:
  int bits_;
  float full_scale_;
  std::int32_t max_code_;
  float step_;
};

}  // namespace tinysdr::radio
