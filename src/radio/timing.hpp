// Operation timing model (paper Table 4).
//
// These delays gate everything the MAC layer does: ACK turnaround, BLE
// advertising channel hops, and wake-from-sleep latency. Values are the
// measured numbers the paper reports.
#pragma once

#include "common/units.hpp"

namespace tinysdr::radio {

struct TimingModel {
  /// Sleep -> radio operational: dominated by FPGA boot from flash (22 ms,
  /// quad-SPI at 62 MHz); the radio's own 1.2 ms setup overlaps with it.
  Seconds sleep_to_radio = Seconds::from_milliseconds(22.0);
  /// I/Q radio register setup after power-up.
  Seconds radio_setup = Seconds::from_milliseconds(1.2);
  /// TX -> RX mode switch.
  Seconds tx_to_rx = Seconds::from_microseconds(45.0);
  /// RX -> TX mode switch.
  Seconds rx_to_tx = Seconds::from_microseconds(11.0);
  /// Carrier frequency retune (measured hopping 2.402/2.426/2.480 GHz).
  Seconds frequency_switch = Seconds::from_microseconds(220.0);

  /// Wake-up time: FPGA boot and radio setup run in parallel, so the total
  /// is their max (paper: "the total wakeup time for RX and TX is 22 ms").
  [[nodiscard]] Seconds wakeup_total() const {
    return std::max(sleep_to_radio, radio_setup);
  }
};

/// SmartSense commercial sensor wakeup, the paper's comparison point
/// ("only a 4x longer wakeup time").
inline constexpr double kSmartSenseWakeupMs = 5.5;

}  // namespace tinysdr::radio
