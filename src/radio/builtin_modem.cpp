#include "radio/builtin_modem.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bitio.hpp"
#include "common/crc.hpp"
#include "dsp/nco.hpp"

namespace tinysdr::radio {

BuiltinFskModem::BuiltinFskModem(MrFskConfig config) : config_(config) {
  if (config_.samples_per_symbol < 2)
    throw std::invalid_argument("BuiltinFskModem: need >= 2 samples/symbol");
}

std::vector<bool> BuiltinFskModem::frame_bits(
    std::span<const std::uint8_t> payload) const {
  if (payload.size() > 2047)
    throw std::invalid_argument("BuiltinFskModem: payload exceeds PHR field");

  BitWriter bits;
  for (std::size_t i = 0; i < config_.preamble_bytes; ++i)
    bits.push_byte_lsb_first(0x55);
  bits.push_bits_lsb_first(kMrFskSfd, 16);
  // PHR: 11-bit frame length (payload + 2 FCS bytes), 5 reserved bits.
  auto frame_len = static_cast<std::uint16_t>(payload.size() + 2);
  bits.push_bits_lsb_first(frame_len, 11);
  bits.push_bits_lsb_first(0, 5);
  for (std::uint8_t b : payload) bits.push_byte_lsb_first(b);
  std::uint16_t fcs = crc16_ccitt(payload);
  bits.push_bits_lsb_first(fcs, 16);
  return bits.bits();
}

dsp::Samples BuiltinFskModem::modulate(
    std::span<const std::uint8_t> payload) const {
  auto bits = frame_bits(payload);
  const double dev_cps =
      config_.deviation_hz / config_.sample_rate().value();
  dsp::Samples out;
  out.reserve(bits.size() * config_.samples_per_symbol);
  double phase = 0.0;
  const auto& lut = dsp::SinCosLut::instance();
  for (bool bit : bits) {
    double step = bit ? dev_cps : -dev_cps;
    for (std::uint32_t s = 0; s < config_.samples_per_symbol; ++s) {
      phase += step;
      double wrapped = phase - std::floor(phase);
      out.push_back(
          lut.lookup(static_cast<std::uint32_t>(wrapped * 4294967296.0)));
    }
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> BuiltinFskModem::demodulate(
    const dsp::Samples& iq) const {
  const std::uint32_t sps = config_.samples_per_symbol;
  if (iq.size() < sps * 48) return std::nullopt;

  // Discriminator + integrate-and-dump at every offset; pick the offset
  // with the strongest 0x55 preamble correlation.
  std::vector<double> freq(iq.size() - 1);
  for (std::size_t i = 1; i < iq.size(); ++i)
    freq[i - 1] = std::arg(iq[i] * std::conj(iq[i - 1]));
  // The discriminator yields N-1 samples for N inputs; replicate the last
  // so the final bit keeps a full integrate-and-dump window.
  freq.push_back(freq.back());

  auto bits_at = [&](std::size_t offset) {
    std::vector<bool> bits;
    for (std::size_t start = offset; start + sps <= freq.size();
         start += sps) {
      double acc = 0.0;
      for (std::uint32_t s = 0; s < sps; ++s) acc += freq[start + s];
      bits.push_back(acc > 0.0);
    }
    return bits;
  };

  std::size_t best_offset = 0;
  int best_score = -1;
  for (std::size_t offset = 0; offset < sps; ++offset) {
    auto bits = bits_at(offset);
    int score = 0;
    // 0x55 LSB-first = alternating 1,0,...
    std::size_t check = std::min<std::size_t>(bits.size(), 24);
    for (std::size_t i = 1; i < check; ++i)
      if (bits[i] != bits[i - 1]) ++score;
    if (score > best_score) {
      best_score = score;
      best_offset = offset;
    }
  }

  auto bits = bits_at(best_offset);
  // SFD hunt over bit positions.
  for (std::size_t start = 0; start + 16 + 16 <= bits.size(); ++start) {
    std::uint16_t window = 0;
    for (int i = 0; i < 16; ++i)
      window |= static_cast<std::uint16_t>(
          (bits[start + static_cast<std::size_t>(i)] ? 1u : 0u) << i);
    if (window != kMrFskSfd) continue;

    std::size_t pos = start + 16;
    if (pos + 16 > bits.size()) return std::nullopt;
    std::uint16_t phr = 0;
    for (int i = 0; i < 11; ++i)
      phr |= static_cast<std::uint16_t>(
          (bits[pos + static_cast<std::size_t>(i)] ? 1u : 0u) << i);
    pos += 16;
    if (phr < 2 || phr > 2049) continue;
    std::size_t payload_len = phr - 2;
    std::size_t need = (payload_len + 2) * 8;
    if (pos + need > bits.size()) return std::nullopt;

    std::vector<std::uint8_t> body;
    for (std::size_t i = 0; i < payload_len + 2; ++i) {
      std::uint8_t byte = 0;
      for (int b = 0; b < 8; ++b)
        byte |= static_cast<std::uint8_t>(
            (bits[pos + i * 8 + static_cast<std::size_t>(b)] ? 1u : 0u) << b);
      body.push_back(byte);
    }
    std::vector<std::uint8_t> payload(body.begin(),
                                      body.end() - 2);
    std::uint16_t fcs = static_cast<std::uint16_t>(
        body[payload_len] | (body[payload_len + 1] << 8));
    if (crc16_ccitt(payload) == fcs) return payload;
  }
  return std::nullopt;
}

Seconds BuiltinFskModem::airtime(std::size_t payload_bytes) const {
  std::size_t bits =
      (config_.preamble_bytes + 2 + 2 + payload_bytes + 2) * 8;
  return Seconds{static_cast<double>(bits) / config_.symbol_rate};
}

}  // namespace tinysdr::radio
