#include "lora/demodulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/profile.hpp"

namespace tinysdr::lora {

namespace {
/// Minimum dechirped peak-to-mean ratio (dB) to consider a window as
/// holding a chirp. Noise-only windows peak around 7.5 dB for N=256; real
/// preambles at the sensitivity knee sit well above 10 dB.
constexpr double kDetectThresholdDb = 6.0;

/// Circular distance between FFT bins.
std::uint32_t bin_distance(std::uint32_t a, std::uint32_t b, std::uint32_t n) {
  std::uint32_t d = (a >= b) ? a - b : b - a;
  return std::min(d, n - d);
}
}  // namespace

Demodulator::Demodulator(LoraParams params, Hertz sample_rate,
                         std::size_t fir_taps)
    : params_(params),
      sample_rate_(sample_rate),
      oversampling_(0),
      // Cutoff at 0.7*BW keeps the chirp band edge flat through the short
      // filter's wide transition band while still rejecting far noise.
      fir_prototype_(dsp::design_lowpass(
          fir_taps,
          std::min(0.5,
                   0.7 * params.bandwidth.value() / sample_rate.value()))),
      chirps_(params, params.bandwidth),
      fft_(params.chips()) {
  params_.validate();
  double ratio = sample_rate.value() / params_.bandwidth.value();
  auto os = static_cast<std::uint32_t>(std::lround(ratio));
  if (os < 1 || std::abs(ratio - static_cast<double>(os)) > 1e-6)
    throw std::invalid_argument(
        "Demodulator: sample rate must be an integer multiple of BW");
  oversampling_ = os;
  base_up_ = chirps_.base_upchirp();
  base_down_ = chirps_.base_downchirp();
}

dsp::Samples Demodulator::condition(std::span<const dsp::Complex> rf) const {
  // At critical sampling there is no out-of-band region for the FIR to
  // remove, and its even length would inject a half-sample delay the
  // symbol-aligned FFT cannot absorb; the hardware runs the filter at the
  // 4 MHz radio rate where the residual (0.5/oversampling samples) is
  // negligible.
  if (oversampling_ == 1) return dsp::Samples{rf.begin(), rf.end()};

  // Fresh filter state per block (the FPGA pipeline resets between
  // receptions).
  dsp::FirFilter fir = fir_prototype_;
  dsp::Samples out;
  out.reserve(rf.size() / oversampling_ + 1);
  // Group delay compensation: skip (taps-1)/2 samples of transient.
  const std::size_t delay = (fir.tap_count() - 1) / 2;
  std::size_t emitted_index = 0;
  for (std::size_t i = 0; i < rf.size(); ++i) {
    dsp::Complex y = fir.process(rf[i]);
    if (i < delay) continue;
    if (emitted_index % oversampling_ == 0) out.push_back(y);
    ++emitted_index;
  }
  return out;
}

std::pair<std::size_t, double> Demodulator::dechirp_peak(
    std::span<const dsp::Complex> window, const dsp::Samples& base) const {
  obs::ProfileScope prof{"lora_dechirp"};
  const std::size_t n = params_.chips();
  if (window.size() < n)
    throw std::invalid_argument("dechirp_peak: window too small");
  dsp::Samples prod(n);
  for (std::size_t i = 0; i < n; ++i)
    prod[i] = window[i] * std::conj(base[i]);
  fft_.forward(prod);

  std::size_t best = 0;
  double best_mag = -1.0;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double m = std::norm(prod[i]);
    total += m;
    if (m > best_mag) {
      best_mag = m;
      best = i;
    }
  }
  double mean = (total - best_mag) / static_cast<double>(n - 1);
  double ratio_db =
      10.0 * std::log10(std::max(best_mag, 1e-30) / std::max(mean, 1e-30));
  return {best, ratio_db};
}

std::uint32_t Demodulator::demodulate_symbol(
    std::span<const dsp::Complex> window) const {
  return static_cast<std::uint32_t>(dechirp_peak(window, base_up_).first);
}

ChirpDirection Demodulator::detect_direction(
    std::span<const dsp::Complex> window) const {
  auto [up_bin, up_db] = dechirp_peak(window, base_up_);
  auto [down_bin, down_db] = dechirp_peak(window, base_down_);
  (void)up_bin;
  (void)down_bin;
  return up_db >= down_db ? ChirpDirection::kUp : ChirpDirection::kDown;
}

double Demodulator::peak_to_mean(std::span<const dsp::Complex> window) const {
  return dechirp_peak(window, base_up_).second;
}

bool Demodulator::channel_activity(std::span<const dsp::Complex> conditioned,
                                   double threshold_db) const {
  const std::size_t n = params_.chips();
  for (std::size_t k = 0; k < 2; ++k) {
    if ((k + 1) * n > conditioned.size()) break;
    if (dechirp_peak(conditioned.subspan(k * n, n), base_up_).second >
        threshold_db)
      return true;
  }
  return false;
}

std::vector<std::uint32_t> Demodulator::demodulate_aligned(
    std::span<const dsp::Complex> conditioned, std::size_t offset,
    std::size_t count) const {
  const std::size_t n = params_.chips();
  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    std::size_t start = offset + k * n;
    if (start + n > conditioned.size()) break;
    out.push_back(demodulate_symbol(conditioned.subspan(start, n)));
  }
  return out;
}

std::optional<Demodulator::SyncInfo> Demodulator::synchronize(
    std::span<const dsp::Complex> conditioned) const {
  const std::size_t n = params_.chips();
  const auto nu = static_cast<std::uint32_t>(n);
  if (conditioned.size() < n * 8) return std::nullopt;

  // Step 1: coarse scan — consecutive windows with a consistent peak bin
  // mark the preamble; the consensus bin IS the timing offset tau.
  const std::size_t window_count = conditioned.size() / n;
  // We need most of the preamble still ahead after the run is found.
  const int needed_run = std::max(4, params_.preamble_symbols - 4);

  std::vector<std::uint32_t> bins(window_count);
  std::vector<double> ratios(window_count);
  for (std::size_t k = 0; k < window_count; ++k) {
    auto [bin, db] = dechirp_peak(conditioned.subspan(k * n, n), base_up_);
    bins[k] = static_cast<std::uint32_t>(bin);
    ratios[k] = db;
  }

  std::size_t run_start = 0;
  int run_len = 0;
  std::optional<std::size_t> found;
  for (std::size_t k = 0; k < window_count; ++k) {
    bool extend = run_len > 0 &&
                  bin_distance(bins[k], bins[run_start], nu) <= 1 &&
                  ratios[k] > kDetectThresholdDb;
    if (extend) {
      ++run_len;
    } else {
      run_start = k;
      run_len = ratios[k] > kDetectThresholdDb ? 1 : 0;
    }
    if (run_len >= needed_run) {
      found = run_start;
      break;
    }
  }
  if (!found) return std::nullopt;

  std::uint32_t tau = bins[*found];
  std::size_t aligned = *found * n + ((nu - tau) % nu);

  // Step 2: walk aligned symbols — preamble (bin 0), sync word, SFD.
  auto window_at = [&](std::size_t idx) {
    return conditioned.subspan(aligned + idx * n, n);
  };
  auto windows_remaining = [&](std::size_t idx) {
    return aligned + (idx + 1) * n <= conditioned.size();
  };

  std::size_t idx = 0;
  double best_ratio = 0.0;
  // Skip remaining preamble symbols (peak near 0).
  while (windows_remaining(idx)) {
    auto [bin, db] = dechirp_peak(window_at(idx), base_up_);
    if (bin_distance(static_cast<std::uint32_t>(bin), 0, nu) > 2) break;
    best_ratio = std::max(best_ratio, db);
    ++idx;
    if (idx > static_cast<std::size_t>(params_.preamble_symbols) + 4)
      return std::nullopt;  // never saw the sync word
  }

  // Sync word: two symbols at the expected shifts (tolerance +-2 bins).
  const std::uint32_t mask = nu - 1;
  for (std::uint32_t expected : {kSyncSymbol1 & mask, kSyncSymbol2 & mask}) {
    if (!windows_remaining(idx)) return std::nullopt;
    auto [bin, db] = dechirp_peak(window_at(idx), base_up_);
    (void)db;
    if (bin_distance(static_cast<std::uint32_t>(bin), expected, nu) > 2)
      return std::nullopt;
    ++idx;
  }

  // SFD: downchirps. Verify direction and estimate CFO from the downchirp
  // peak (bin_down ~ 2*cfo after timing alignment).
  if (!windows_remaining(idx)) return std::nullopt;
  if (detect_direction(window_at(idx)) != ChirpDirection::kDown)
    return std::nullopt;
  auto [down_bin, down_db] = dechirp_peak(window_at(idx), base_down_);
  (void)down_db;
  auto signed_bin = static_cast<double>(down_bin);
  if (signed_bin > static_cast<double>(n) / 2.0)
    signed_bin -= static_cast<double>(n);

  SyncInfo info;
  info.timing_offset = tau;
  info.cfo_bins = signed_bin / 2.0;
  info.peak_snr_db = best_ratio;
  // Payload starts 2.25 symbols after the SFD begins.
  info.payload_start = aligned + idx * n + (n * 9) / 4;
  return info;
}

std::optional<DemodResult> Demodulator::receive(
    std::span<const dsp::Complex> rf,
    std::optional<std::size_t> implicit_length) const {
  dsp::Samples cond = condition(rf);
  auto sync = synchronize(cond);
  if (!sync) return std::nullopt;

  const std::size_t n = params_.chips();
  std::size_t available =
      cond.size() > sync->payload_start
          ? (cond.size() - sync->payload_start) / n
          : 0;
  if (available == 0) return std::nullopt;

  auto symbols = demodulate_aligned(cond, sync->payload_start, available);
  PacketCodec codec{params_};
  DemodResult result;
  result.packet = codec.decode(symbols, implicit_length);
  result.payload_start = sync->payload_start;
  result.preamble_peak_snr_db = sync->peak_snr_db;
  result.timing_offset = sync->timing_offset;
  return result;
}

}  // namespace tinysdr::lora
