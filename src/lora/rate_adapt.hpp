// Rate adaptation study (paper §7, "Are there benefits of rate
// adaptation?").
//
// An ADR-style policy: given a link's RSSI, pick the fastest LoRa
// configuration whose sensitivity still leaves the requested margin. The
// study helpers quantify what adaptation buys over a fixed conservative
// configuration in airtime and energy per delivered packet.
#pragma once

#include <optional>
#include <vector>

#include "common/units.hpp"
#include "lora/airtime.hpp"
#include "lora/params.hpp"

namespace tinysdr::lora {

/// Candidate ladder from fastest to slowest (all at 125 kHz, like
/// LoRaWAN's DR5..DR0 in the US/EU plans, SF7..SF12).
[[nodiscard]] std::vector<LoraParams> adr_ladder(
    Hertz bandwidth = Hertz::from_kilohertz(125.0));

/// Pick the fastest configuration with `margin_db` of headroom at `rssi`;
/// nullopt if even the slowest rung cannot close the link.
[[nodiscard]] std::optional<LoraParams> select_rate(
    Dbm rssi, double margin_db = 3.0,
    Hertz bandwidth = Hertz::from_kilohertz(125.0));

/// Study record: per-link comparison of adaptive vs fixed-SF12 operation.
struct RateAdaptOutcome {
  Dbm rssi{0.0};
  int adaptive_sf = 0;
  Seconds adaptive_airtime{0.0};
  Seconds fixed_airtime{0.0};

  [[nodiscard]] double airtime_saving() const {
    return fixed_airtime.value() <= 0.0
               ? 0.0
               : 1.0 - adaptive_airtime.value() / fixed_airtime.value();
  }
};

/// Evaluate the policy for one link and payload size.
[[nodiscard]] std::optional<RateAdaptOutcome> evaluate_rate_adaptation(
    Dbm rssi, std::size_t payload_bytes, double margin_db = 3.0);

}  // namespace tinysdr::lora
