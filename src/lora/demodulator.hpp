// LoRa demodulator (paper Fig. 6b): I/Q deserializer -> 14-tap FIR ->
// buffer -> dechirp (complex multiply with the base chirp) -> FFT ->
// symbol detector, plus preamble/SFD synchronisation.
//
// Synchronisation exploits the CSS time/frequency duality: a window that
// starts tau samples into a preamble upchirp dechirps to a tone in FFT bin
// tau, so a run of consistent preamble peaks yields the timing correction
// directly. Chirp direction (the paper's up/down detector) is decided by
// comparing the dechirped FFT peak against the base upchirp and downchirp.
// CFO is estimated from the preamble-vs-SFD bin split and corrected.
#pragma once

#include <optional>
#include <span>

#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "lora/chirp.hpp"
#include "lora/packet.hpp"

namespace tinysdr::lora {

struct DemodResult {
  DecodedPacket packet;
  std::size_t payload_start = 0;       ///< critical-rate sample index
  double preamble_peak_snr_db = 0.0;   ///< peak/mean ratio at sync time
  std::uint32_t timing_offset = 0;     ///< estimated tau (samples)
};

class Demodulator {
 public:
  /// @param params       LoRa configuration to listen for
  /// @param sample_rate  input rate, integer multiple of BW
  /// @param fir_taps     front-end FIR length (paper: 14)
  Demodulator(LoraParams params, Hertz sample_rate, std::size_t fir_taps = 14);

  [[nodiscard]] const LoraParams& params() const { return params_; }

  /// Demodulate one raw chirp symbol from a critical-rate, symbol-aligned
  /// window of 2^SF samples.
  [[nodiscard]] std::uint32_t demodulate_symbol(
      std::span<const dsp::Complex> window) const;

  /// Chirp direction of an aligned window (paper's up/down detector).
  [[nodiscard]] ChirpDirection detect_direction(
      std::span<const dsp::Complex> window) const;

  /// Peak-to-mean magnitude ratio of the dechirped FFT (detection metric).
  [[nodiscard]] double peak_to_mean(std::span<const dsp::Complex> window) const;

  /// Channel activity detection (the LoRa "CAD" primitive): dechirp two
  /// consecutive symbol windows and report whether either shows a chirp.
  /// Costs two symbol times instead of a full preamble — the cheap carrier
  /// sense the DeepSense work the paper cites [41] builds on.
  /// The default threshold keeps the per-window false-alarm rate in the
  /// 1e-3 class (noise-only peak-to-mean over 2^SF bins concentrates near
  /// 10*log10(ln 2^SF) ~ 7.4 dB with a heavy upper tail).
  [[nodiscard]] bool channel_activity(
      std::span<const dsp::Complex> conditioned,
      double threshold_db = 11.0) const;

  /// Front-end: FIR low-pass then decimate to critical sampling.
  [[nodiscard]] dsp::Samples condition(std::span<const dsp::Complex> rf) const;

  /// Symbol-level demodulation of `count` symbols from conditioned samples
  /// starting at `offset` (known-alignment path used for SER evaluation).
  [[nodiscard]] std::vector<std::uint32_t> demodulate_aligned(
      std::span<const dsp::Complex> conditioned, std::size_t offset,
      std::size_t count) const;

  /// Full receive chain: condition, synchronise on the preamble, locate the
  /// SFD, demodulate and decode the payload. Returns nullopt when no packet
  /// is found.
  [[nodiscard]] std::optional<DemodResult> receive(
      std::span<const dsp::Complex> rf,
      std::optional<std::size_t> implicit_length = std::nullopt) const;

  /// Synchronisation outcome (exposed for tests and the concurrent
  /// receiver).
  struct SyncInfo {
    std::size_t payload_start;   ///< index into conditioned samples
    std::uint32_t timing_offset;
    double cfo_bins;             ///< estimated CFO in FFT-bin units
    double peak_snr_db;
  };
  [[nodiscard]] std::optional<SyncInfo> synchronize(
      std::span<const dsp::Complex> conditioned) const;

 private:
  [[nodiscard]] std::pair<std::size_t, double> dechirp_peak(
      std::span<const dsp::Complex> window, const dsp::Samples& base) const;

  LoraParams params_;
  Hertz sample_rate_;
  std::uint32_t oversampling_;
  dsp::FirFilter fir_prototype_;
  ChirpGenerator chirps_;       ///< critical-rate chirp generator
  dsp::Samples base_up_;
  dsp::Samples base_down_;
  dsp::FftPlan fft_;
};

}  // namespace tinysdr::lora
