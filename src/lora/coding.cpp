#include "lora/coding.hpp"

#include <stdexcept>

namespace tinysdr::lora {

std::vector<std::uint8_t> whiten(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  out.reserve(data.size());
  std::uint16_t lfsr = 0x1FF;
  for (std::uint8_t byte : data) {
    std::uint8_t mask = 0;
    for (int bit = 0; bit < 8; ++bit) {
      mask |= static_cast<std::uint8_t>((lfsr & 1u) << bit);
      // x^9 + x^5 + 1: feedback from taps 0 and 4 (0-indexed), shift right.
      std::uint16_t fb = ((lfsr >> 0) ^ (lfsr >> 4)) & 1u;
      lfsr = static_cast<std::uint16_t>((lfsr >> 1) | (fb << 8));
    }
    out.push_back(byte ^ mask);
  }
  return out;
}

namespace {

/// Hamming(7,4) parity bits for data bits d0..d3 (d0 = LSB).
/// p0 = d0^d1^d3, p1 = d0^d2^d3, p2 = d1^d2^d3.
struct HammingParity {
  std::uint8_t p0, p1, p2;
};

HammingParity parity_of(std::uint8_t nibble) {
  std::uint8_t d0 = nibble & 1u, d1 = (nibble >> 1) & 1u,
               d2 = (nibble >> 2) & 1u, d3 = (nibble >> 3) & 1u;
  return HammingParity{static_cast<std::uint8_t>(d0 ^ d1 ^ d3),
                       static_cast<std::uint8_t>(d0 ^ d2 ^ d3),
                       static_cast<std::uint8_t>(d1 ^ d2 ^ d3)};
}

std::uint8_t popcount4(std::uint8_t v) {
  return static_cast<std::uint8_t>(__builtin_popcount(v & 0xFu));
}

}  // namespace

std::uint8_t hamming_encode(std::uint8_t nibble, CodingRate cr) {
  if (nibble > 0xF) throw std::invalid_argument("hamming_encode: not a nibble");
  auto [p0, p1, p2] = parity_of(nibble);
  switch (cr) {
    case CodingRate::kCr45: {
      // nibble + overall parity.
      std::uint8_t p = popcount4(nibble) & 1u;
      return static_cast<std::uint8_t>(nibble | (p << 4));
    }
    case CodingRate::kCr46: {
      // nibble + two checksum bits (detection only).
      return static_cast<std::uint8_t>(nibble | (p0 << 4) | (p1 << 5));
    }
    case CodingRate::kCr47: {
      // Hamming(7,4): single error correction.
      return static_cast<std::uint8_t>(nibble | (p0 << 4) | (p1 << 5) |
                                       (p2 << 6));
    }
    case CodingRate::kCr48: {
      // Hamming(7,4) + overall parity: SEC-DED.
      std::uint8_t cw = static_cast<std::uint8_t>(nibble | (p0 << 4) |
                                                  (p1 << 5) | (p2 << 6));
      std::uint8_t p =
          static_cast<std::uint8_t>(__builtin_popcount(cw) & 1);
      return static_cast<std::uint8_t>(cw | (p << 7));
    }
  }
  throw std::invalid_argument("hamming_encode: bad coding rate");
}

std::uint8_t hamming_decode(std::uint8_t codeword, CodingRate cr,
                            bool* error_detected) {
  bool detected = false;
  std::uint8_t nibble = codeword & 0xFu;

  auto correct_h74 = [&](std::uint8_t cw) -> std::uint8_t {
    std::uint8_t data = cw & 0xFu;
    auto [p0, p1, p2] = parity_of(data);
    std::uint8_t s0 = static_cast<std::uint8_t>(((cw >> 4) & 1u) ^ p0);
    std::uint8_t s1 = static_cast<std::uint8_t>(((cw >> 5) & 1u) ^ p1);
    std::uint8_t s2 = static_cast<std::uint8_t>(((cw >> 6) & 1u) ^ p2);
    std::uint8_t syndrome =
        static_cast<std::uint8_t>(s0 | (s1 << 1) | (s2 << 2));
    if (syndrome == 0) return data;
    detected = true;
    // Syndrome -> flipped bit position. Data bits participate as:
    // d0 in p0,p1 (syn 3); d1 in p0,p2 (syn 5); d2 in p1,p2 (syn 6);
    // d3 in all (syn 7). Single parity-bit errors: syn 1, 2, 4.
    switch (syndrome) {
      case 3:
        return static_cast<std::uint8_t>(data ^ 0x1);
      case 5:
        return static_cast<std::uint8_t>(data ^ 0x2);
      case 6:
        return static_cast<std::uint8_t>(data ^ 0x4);
      case 7:
        return static_cast<std::uint8_t>(data ^ 0x8);
      default:
        return data;  // parity bit itself was hit; data intact
    }
  };

  switch (cr) {
    case CodingRate::kCr45: {
      std::uint8_t expect = popcount4(nibble) & 1u;
      if (((codeword >> 4) & 1u) != expect) detected = true;
      break;
    }
    case CodingRate::kCr46: {
      auto [p0, p1, p2] = parity_of(nibble);
      (void)p2;
      if ((((codeword >> 4) & 1u) != p0) || (((codeword >> 5) & 1u) != p1))
        detected = true;
      break;
    }
    case CodingRate::kCr47:
      nibble = correct_h74(codeword);
      break;
    case CodingRate::kCr48: {
      std::uint8_t body = codeword & 0x7Fu;
      std::uint8_t p = static_cast<std::uint8_t>((codeword >> 7) & 1u);
      std::uint8_t actual =
          static_cast<std::uint8_t>(__builtin_popcount(body) & 1);
      nibble = correct_h74(body);
      if (p != actual && !detected) detected = true;
      break;
    }
  }
  if (error_detected) *error_detected = detected;
  return nibble;
}

std::vector<std::uint32_t> interleave(std::span<const std::uint8_t> codewords,
                                      int rows, CodingRate cr) {
  const int cols = 4 + static_cast<int>(cr);
  if (rows <= 0) throw std::invalid_argument("interleave: rows <= 0");
  if (codewords.size() != static_cast<std::size_t>(rows))
    throw std::invalid_argument("interleave: need exactly `rows` codewords");

  // Symbol j collects bit j of every codeword, with the LoRa diagonal
  // rotation: bit from codeword (i + j) mod rows lands in bit i.
  std::vector<std::uint32_t> symbols(static_cast<std::size_t>(cols), 0);
  for (int j = 0; j < cols; ++j) {
    std::uint32_t sym = 0;
    for (int i = 0; i < rows; ++i) {
      int src = (i + j) % rows;
      std::uint32_t bit =
          (codewords[static_cast<std::size_t>(src)] >> j) & 1u;
      sym |= bit << i;
    }
    symbols[static_cast<std::size_t>(j)] = sym;
  }
  return symbols;
}

std::vector<std::uint8_t> deinterleave(std::span<const std::uint32_t> symbols,
                                       int rows, CodingRate cr) {
  const int cols = 4 + static_cast<int>(cr);
  if (symbols.size() != static_cast<std::size_t>(cols))
    throw std::invalid_argument("deinterleave: need exactly 4+CR symbols");

  std::vector<std::uint8_t> codewords(static_cast<std::size_t>(rows), 0);
  for (int j = 0; j < cols; ++j) {
    std::uint32_t sym = symbols[static_cast<std::size_t>(j)];
    for (int i = 0; i < rows; ++i) {
      int dst = (i + j) % rows;
      std::uint8_t bit = static_cast<std::uint8_t>((sym >> i) & 1u);
      codewords[static_cast<std::size_t>(dst)] |=
          static_cast<std::uint8_t>(bit << j);
    }
  }
  return codewords;
}

std::vector<std::uint8_t> bytes_to_nibbles(
    std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(b & 0xFu);
    out.push_back((b >> 4) & 0xFu);
  }
  return out;
}

std::vector<std::uint8_t> nibbles_to_bytes(
    std::span<const std::uint8_t> nibbles) {
  std::vector<std::uint8_t> out;
  out.reserve((nibbles.size() + 1) / 2);
  for (std::size_t i = 0; i < nibbles.size(); i += 2) {
    std::uint8_t lo = nibbles[i] & 0xFu;
    std::uint8_t hi = (i + 1 < nibbles.size())
                          ? static_cast<std::uint8_t>(nibbles[i + 1] & 0xFu)
                          : std::uint8_t{0};
    out.push_back(static_cast<std::uint8_t>(lo | (hi << 4)));
  }
  return out;
}

}  // namespace tinysdr::lora
