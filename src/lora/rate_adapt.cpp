#include "lora/rate_adapt.hpp"

namespace tinysdr::lora {

std::vector<LoraParams> adr_ladder(Hertz bandwidth) {
  std::vector<LoraParams> ladder;
  for (int sf = 7; sf <= 12; ++sf)
    ladder.emplace_back(sf, bandwidth);
  return ladder;
}

std::optional<LoraParams> select_rate(Dbm rssi, double margin_db,
                                      Hertz bandwidth) {
  for (const auto& params : adr_ladder(bandwidth)) {
    Dbm needed = sx1276_sensitivity(params.sf, params.bandwidth) + margin_db;
    if (rssi >= needed) return params;
  }
  return std::nullopt;
}

std::optional<RateAdaptOutcome> evaluate_rate_adaptation(
    Dbm rssi, std::size_t payload_bytes, double margin_db) {
  auto chosen = select_rate(rssi, margin_db);
  if (!chosen) return std::nullopt;
  LoraParams fixed{12, chosen->bandwidth};
  RateAdaptOutcome out;
  out.rssi = rssi;
  out.adaptive_sf = chosen->sf;
  out.adaptive_airtime = time_on_air(*chosen, payload_bytes);
  out.fixed_airtime = time_on_air(fixed, payload_bytes);
  return out;
}

}  // namespace tinysdr::lora
