#include "lora/mac.hpp"

#include <stdexcept>

#include "common/aes.hpp"

namespace tinysdr::lora {

namespace {

void push_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  v.push_back(static_cast<std::uint8_t>(x & 0xFF));
  v.push_back(static_cast<std::uint8_t>((x >> 8) & 0xFF));
  v.push_back(static_cast<std::uint8_t>((x >> 16) & 0xFF));
  v.push_back(static_cast<std::uint8_t>((x >> 24) & 0xFF));
}

std::uint32_t read_u32(std::span<const std::uint8_t> v, std::size_t at) {
  return static_cast<std::uint32_t>(v[at]) |
         (static_cast<std::uint32_t>(v[at + 1]) << 8) |
         (static_cast<std::uint32_t>(v[at + 2]) << 16) |
         (static_cast<std::uint32_t>(v[at + 3]) << 24);
}

}  // namespace

std::uint32_t compute_mic(std::span<const std::uint8_t> frame,
                          const AppKey& key) {
  // Real AES-CMAC, as LoRaWAN specifies (truncated to 32 bits).
  AesCmac cmac{key};
  return cmac.mic(frame);
}

std::vector<std::uint8_t> MacFrame::serialize() const {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(type));
  push_u32(out, dev_addr);
  out.push_back(fctrl);
  out.push_back(static_cast<std::uint8_t>(fcnt & 0xFF));
  out.push_back(static_cast<std::uint8_t>(fcnt >> 8));
  out.push_back(fport);
  out.insert(out.end(), payload.begin(), payload.end());
  push_u32(out, mic);
  return out;
}

std::optional<MacFrame> MacFrame::parse(std::span<const std::uint8_t> bytes) {
  // MHDR(1) + DevAddr(4) + FCtrl(1) + FCnt(2) + FPort(1) + MIC(4) = 13 min.
  if (bytes.size() < 13) return std::nullopt;
  MacFrame f;
  f.type = static_cast<MacMessageType>(bytes[0] & 0xE0);
  f.dev_addr = read_u32(bytes, 1);
  f.fctrl = bytes[5];
  f.fcnt = static_cast<std::uint16_t>(bytes[6] | (bytes[7] << 8));
  f.fport = bytes[8];
  f.payload.assign(bytes.begin() + 9, bytes.end() - 4);
  f.mic = read_u32(bytes, bytes.size() - 4);
  return f;
}

MacDevice MacDevice::abp(DevAddr addr, AppKey session_key) {
  MacDevice d;
  d.activation_ = Activation::kAbp;
  d.joined_ = true;  // ABP skips the join procedure (paper §4.1)
  d.dev_addr_ = addr;
  d.key_ = session_key;
  return d;
}

MacDevice MacDevice::otaa(std::uint64_t dev_eui, AppKey app_key) {
  MacDevice d;
  d.activation_ = Activation::kOtaa;
  d.joined_ = false;
  d.dev_eui_ = dev_eui;
  d.key_ = app_key;
  return d;
}

std::vector<std::uint8_t> MacDevice::join_request() {
  if (activation_ != Activation::kOtaa)
    throw std::logic_error("MacDevice: join_request in ABP mode");
  ++dev_nonce_;
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(MacMessageType::kJoinRequest));
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((dev_eui_ >> (8 * i)) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(dev_nonce_ & 0xFF));
  out.push_back(static_cast<std::uint8_t>(dev_nonce_ >> 8));
  std::uint32_t mic = compute_mic(out, key_);
  push_u32(out, mic);
  return out;
}

bool MacDevice::handle_join_accept(std::span<const std::uint8_t> frame) {
  if (activation_ != Activation::kOtaa) return false;
  // MHDR(1) + DevAddr(4) + MIC(4).
  if (frame.size() != 9) return false;
  if (static_cast<MacMessageType>(frame[0] & 0xE0) !=
      MacMessageType::kJoinAccept)
    return false;
  std::uint32_t mic = read_u32(frame, 5);
  std::vector<std::uint8_t> body(frame.begin(), frame.begin() + 5);
  if (compute_mic(body, key_) != mic) return false;
  dev_addr_ = read_u32(frame, 1);
  joined_ = true;
  fcnt_up_ = 0;
  fcnt_down_ = 0;
  return true;
}

std::vector<std::uint8_t> MacDevice::uplink(
    std::span<const std::uint8_t> payload, std::uint8_t fport,
    bool confirmed) {
  if (!joined_) throw std::logic_error("MacDevice: uplink before join");
  MacFrame f;
  f.type = confirmed ? MacMessageType::kConfirmedUp
                     : MacMessageType::kUnconfirmedUp;
  f.dev_addr = dev_addr_;
  f.fcnt = fcnt_up_++;
  f.fport = fport;
  f.payload.assign(payload.begin(), payload.end());
  auto body = f.serialize();
  // MIC covers everything before the MIC itself.
  std::vector<std::uint8_t> covered(body.begin(), body.end() - 4);
  f.mic = compute_mic(covered, key_);
  return f.serialize();
}

std::optional<MacFrame> MacDevice::handle_downlink(
    std::span<const std::uint8_t> frame) {
  auto f = MacFrame::parse(frame);
  if (!f) return std::nullopt;
  if (f->dev_addr != dev_addr_) return std::nullopt;
  if (f->type != MacMessageType::kUnconfirmedDown &&
      f->type != MacMessageType::kConfirmedDown)
    return std::nullopt;
  std::vector<std::uint8_t> covered(frame.begin(), frame.end() - 4);
  if (compute_mic(covered, key_) != f->mic) return std::nullopt;
  if (joined_ && f->fcnt < fcnt_down_) return std::nullopt;  // replay
  fcnt_down_ = static_cast<std::uint16_t>(f->fcnt + 1);
  return f;
}

std::optional<std::vector<std::uint8_t>> MacNetwork::handle_join(
    std::span<const std::uint8_t> frame) {
  // MHDR(1) + DevEUI(8) + DevNonce(2) + MIC(4).
  if (frame.size() != 15) return std::nullopt;
  if (static_cast<MacMessageType>(frame[0] & 0xE0) !=
      MacMessageType::kJoinRequest)
    return std::nullopt;
  std::vector<std::uint8_t> body(frame.begin(), frame.end() - 4);
  if (compute_mic(body, app_key_) != read_u32(frame, frame.size() - 4))
    return std::nullopt;

  DevAddr assigned = next_addr_++;
  last_counter_.emplace_back(assigned, 0);

  std::vector<std::uint8_t> accept;
  accept.push_back(static_cast<std::uint8_t>(MacMessageType::kJoinAccept));
  push_u32(accept, assigned);
  std::uint32_t mic = compute_mic(accept, app_key_);
  push_u32(accept, mic);
  return accept;
}

std::optional<MacFrame> MacNetwork::handle_uplink(
    std::span<const std::uint8_t> frame) {
  auto f = MacFrame::parse(frame);
  if (!f) return std::nullopt;
  if (f->type != MacMessageType::kUnconfirmedUp &&
      f->type != MacMessageType::kConfirmedUp)
    return std::nullopt;
  std::vector<std::uint8_t> covered(frame.begin(), frame.end() - 4);
  if (compute_mic(covered, app_key_) != f->mic) return std::nullopt;
  for (auto& [addr, counter] : last_counter_) {
    if (addr == f->dev_addr) {
      if (f->fcnt < counter) return std::nullopt;  // replay
      counter = static_cast<std::uint16_t>(f->fcnt + 1);
      return f;
    }
  }
  // ABP device not seen before: accept and start tracking.
  last_counter_.emplace_back(f->dev_addr,
                             static_cast<std::uint16_t>(f->fcnt + 1));
  return f;
}

}  // namespace tinysdr::lora
