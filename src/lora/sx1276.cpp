#include "lora/sx1276.hpp"

namespace tinysdr::lora {

Sx1276Model::Sx1276Model(LoraParams params)
    : params_(params),
      modulator_(params, params.bandwidth),
      demodulator_(params, params.bandwidth) {}

dsp::Samples Sx1276Model::transmit(
    std::span<const std::uint8_t> payload) const {
  return modulator_.modulate(payload);
}

std::optional<std::vector<std::uint8_t>> Sx1276Model::receive(
    const dsp::Samples& waveform, Dbm rssi, Rng& rng) const {
  channel::AwgnChannel chan{params_.bandwidth, kNoiseFigureDb, rng};
  dsp::Samples noisy = chan.apply(waveform, rssi);
  auto result = demodulator_.receive(noisy);
  if (!result) return std::nullopt;
  if (!result->packet.header_valid || !result->packet.crc_valid)
    return std::nullopt;
  return result->packet.payload;
}

}  // namespace tinysdr::lora
