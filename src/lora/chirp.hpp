// Chirp generation — the heart of the LoRa PHY (paper Fig. 6a).
//
// The FPGA implementation builds each symbol with "a squared phase
// accumulator and two lookup tables for Sin and Cos"; we mirror that: the
// per-sample phase is accumulated in 32-bit fixed point (a first
// accumulator integrates the frequency ramp, a second integrates phase),
// and the shared SinCosLut converts phase to I/Q. The cyclic shift encoding
// the symbol value appears as the initial frequency offset, which wraps
// naturally in modular fixed-point arithmetic exactly as in hardware.
#pragma once

#include <cstdint>

#include "dsp/nco.hpp"
#include "dsp/types.hpp"
#include "lora/params.hpp"

namespace tinysdr::lora {

enum class ChirpDirection { kUp, kDown };

/// Generates chirp symbols for one LoRa configuration at a configurable
/// sample rate (an integer multiple of the bandwidth).
class ChirpGenerator {
 public:
  /// @param params       SF/BW configuration
  /// @param sample_rate  output rate; must be an integer multiple of BW
  ChirpGenerator(LoraParams params, Hertz sample_rate);

  [[nodiscard]] const LoraParams& params() const { return params_; }
  [[nodiscard]] Hertz sample_rate() const { return sample_rate_; }
  [[nodiscard]] std::uint32_t oversampling() const { return oversampling_; }
  /// Samples per full symbol at the configured rate.
  [[nodiscard]] std::uint32_t samples_per_symbol() const {
    return params_.chips() * oversampling_;
  }

  /// Generate one chirp symbol.
  /// @param value      cyclic shift in [0, 2^SF)
  /// @param direction  up (data/preamble) or down (SFD)
  [[nodiscard]] dsp::Samples symbol(std::uint32_t value,
                                    ChirpDirection direction) const;

  /// Generate a fraction of a symbol (the SFD is 2.25 downchirps).
  [[nodiscard]] dsp::Samples partial_symbol(double fraction,
                                            ChirpDirection direction) const;

  /// The base (value 0) upchirp/downchirp used by the demodulator's
  /// dechirp stage; conjugate-of-upchirp == downchirp.
  [[nodiscard]] dsp::Samples base_upchirp() const {
    return symbol(0, ChirpDirection::kUp);
  }
  [[nodiscard]] dsp::Samples base_downchirp() const {
    return symbol(0, ChirpDirection::kDown);
  }

 private:
  [[nodiscard]] dsp::Samples generate(std::uint32_t value,
                                      ChirpDirection direction,
                                      std::uint32_t sample_count) const;

  LoraParams params_;
  Hertz sample_rate_;
  std::uint32_t oversampling_;
};

}  // namespace tinysdr::lora
