#include "lora/chirp.hpp"

#include <cmath>
#include <stdexcept>

namespace tinysdr::lora {

ChirpGenerator::ChirpGenerator(LoraParams params, Hertz sample_rate)
    : params_(params), sample_rate_(sample_rate) {
  params_.validate();
  double ratio = sample_rate.value() / params_.bandwidth.value();
  auto os = static_cast<std::uint32_t>(std::lround(ratio));
  if (os < 1 || std::abs(ratio - static_cast<double>(os)) > 1e-6)
    throw std::invalid_argument(
        "ChirpGenerator: sample rate must be an integer multiple of BW");
  oversampling_ = os;
}

dsp::Samples ChirpGenerator::generate(std::uint32_t value,
                                      ChirpDirection direction,
                                      std::uint32_t sample_count) const {
  const auto n_chips = static_cast<double>(params_.chips());
  if (value >= params_.chips())
    throw std::invalid_argument("ChirpGenerator: symbol value out of range");
  const double os = static_cast<double>(oversampling_);

  // Frequency accumulator (cycles/sample) and its per-sample increment:
  // the "squared phase accumulator" — frequency integrates linearly, phase
  // integrates frequency. The cyclic wrap keeps the instantaneous frequency
  // inside the +-BW/2 band.
  const double f_span = 1.0 / os;               // BW in cycles/sample
  const double df = f_span / (n_chips * os);    // slope per sample
  double freq =
      (static_cast<double>(value) / n_chips - 0.5) * f_span;
  double phase = 0.0;

  dsp::Samples out;
  out.reserve(sample_count);
  const auto& lut = dsp::SinCosLut::instance();
  for (std::uint32_t i = 0; i < sample_count; ++i) {
    // Quantize phase to the 32-bit circle and look up I/Q, exactly like the
    // hardware phase-to-amplitude path.
    double wrapped = phase - std::floor(phase);
    auto phase_word = static_cast<std::uint32_t>(wrapped * 4294967296.0);
    dsp::Complex s = lut.lookup(phase_word);
    out.push_back(direction == ChirpDirection::kUp ? s : std::conj(s));

    phase += freq;
    freq += df;
    if (freq >= f_span / 2.0) freq -= f_span;  // band-edge wrap
  }
  return out;
}

dsp::Samples ChirpGenerator::symbol(std::uint32_t value,
                                    ChirpDirection direction) const {
  return generate(value, direction, samples_per_symbol());
}

dsp::Samples ChirpGenerator::partial_symbol(double fraction,
                                            ChirpDirection direction) const {
  if (fraction <= 0.0 || fraction > 1.0)
    throw std::invalid_argument("partial_symbol: fraction out of (0, 1]");
  auto count = static_cast<std::uint32_t>(
      std::lround(fraction * static_cast<double>(samples_per_symbol())));
  return generate(0, direction, count);
}

}  // namespace tinysdr::lora
