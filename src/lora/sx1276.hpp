// SX1276 LoRa transceiver model — the paper's comparison baseline and the
// OTA backbone radio.
//
// The SX1276 implements the same CSS PHY; what distinguishes it in the
// evaluation is its datasheet sensitivity (the reference curves in
// Figs. 10/11) and that it exposes only packet-level results (PER) — "the
// Semtech LoRa transceiver does not give access to symbol error rate"
// (§5.2). The model wraps the shared CSS mod/demod math with the chip's
// noise figure and a packet-level API.
#pragma once

#include <optional>

#include "channel/noise.hpp"
#include "lora/demodulator.hpp"
#include "lora/modulator.hpp"

namespace tinysdr::lora {

class Sx1276Model {
 public:
  /// SX1276 receiver noise figure calibrated to its datasheet
  /// sensitivities (see sx1276_sensitivity()).
  static constexpr double kNoiseFigureDb = 7.0;

  explicit Sx1276Model(LoraParams params);

  [[nodiscard]] const LoraParams& params() const { return params_; }

  /// Generate a packet waveform (critical-rate baseband, unit power).
  [[nodiscard]] dsp::Samples transmit(
      std::span<const std::uint8_t> payload) const;

  /// Packet-level receive through an AWGN front end at the given RSSI.
  /// Returns the payload if the packet synchronised and passed CRC.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> receive(
      const dsp::Samples& waveform, Dbm rssi, Rng& rng) const;

  /// Datasheet sensitivity for the configured params.
  [[nodiscard]] Dbm sensitivity() const {
    return sx1276_sensitivity(params_.sf, params_.bandwidth);
  }

  /// DC supply draws (datasheet, 3.3 V rail).
  [[nodiscard]] static Milliwatts rx_power() { return Milliwatts{39.0}; }
  [[nodiscard]] static Milliwatts tx_power(Dbm out) {
    return Milliwatts{35.0 + out.milliwatts() * 2.4};
  }

 private:
  LoraParams params_;
  Modulator modulator_;
  Demodulator demodulator_;
};

}  // namespace tinysdr::lora
