#include "lora/params.hpp"

#include <cmath>

namespace tinysdr::lora {

double snr_limit_db(int sf) {
  // SX1276 datasheet, Table 13 "Spreading Factor" SNR limits.
  switch (sf) {
    case 6:
      return -5.0;
    case 7:
      return -7.5;
    case 8:
      return -10.0;
    case 9:
      return -12.5;
    case 10:
      return -15.0;
    case 11:
      return -17.5;
    case 12:
      return -20.0;
    default:
      throw std::invalid_argument("snr_limit_db: sf out of range");
  }
}

Dbm sx1276_sensitivity(int sf, Hertz bandwidth) {
  // S = -174 + 10 log10(BW) + NF + SNR_limit with NF = 7 dB, which
  // reproduces the datasheet sensitivities the paper quotes
  // (SF8/BW125: -126 dBm, SF12/BW125: -136 dBm, SF7/BW125: -123 dBm).
  double floor_dbm = -174.0 + 10.0 * std::log10(bandwidth.value()) + 7.0;
  return Dbm{floor_dbm + snr_limit_db(sf)};
}

}  // namespace tinysdr::lora
