// LoRa modulation parameters (paper §4.1 primer).
//
// Chirp Spread Spectrum: data rides on cyclic shifts of a linear upchirp.
// A symbol carries SF bits (SF in 6..12); the chirp sweeps BW hertz in
// 2^SF / BW seconds. PHY rate = SF * BW / 2^SF; chirp slope = BW^2 / 2^SF.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

#include "common/units.hpp"

namespace tinysdr::lora {

/// Legal LoRa bandwidths (Hz). The paper cites the 7.8125 kHz .. 500 kHz
/// range; the evaluation uses 125/250/500 kHz.
inline constexpr std::array<double, 10> kBandwidthsHz = {
    7812.5,   10417.0,  15625.0,  20833.0,  31250.0,
    41667.0,  62500.0,  125000.0, 250000.0, 500000.0};

/// Coding rate 4/(4+cr) with cr in 1..4.
enum class CodingRate : int { kCr45 = 1, kCr46 = 2, kCr47 = 3, kCr48 = 4 };

struct LoraParams {
  int sf = 8;                                ///< spreading factor, 6..12
  Hertz bandwidth = Hertz::from_kilohertz(125.0);
  CodingRate cr = CodingRate::kCr45;
  int preamble_symbols = 10;                 ///< paper's packet uses 10
  bool explicit_header = true;
  bool payload_crc = true;

  LoraParams() = default;
  LoraParams(int sf_, Hertz bw, CodingRate cr_ = CodingRate::kCr45)
      : sf(sf_), bandwidth(bw), cr(cr_) {
    validate();
  }

  void validate() const {
    if (sf < 6 || sf > 12)
      throw std::invalid_argument("LoraParams: SF must be in [6, 12]");
    bool ok = false;
    for (double b : kBandwidthsHz)
      if (std::abs(b - bandwidth.value()) < 1.0) ok = true;
    if (!ok) throw std::invalid_argument("LoraParams: illegal bandwidth");
    if (preamble_symbols < 6)
      throw std::invalid_argument("LoraParams: preamble too short");
  }

  /// Samples per symbol at critical sampling (fs = BW).
  [[nodiscard]] std::uint32_t chips() const { return std::uint32_t{1} << sf; }

  /// Symbol duration 2^SF / BW.
  [[nodiscard]] Seconds symbol_time() const {
    return Seconds{static_cast<double>(chips()) / bandwidth.value()};
  }

  /// Raw PHY bit rate BW / 2^SF * SF (before FEC).
  [[nodiscard]] double phy_rate_bps() const {
    return bandwidth.value() / static_cast<double>(chips()) *
           static_cast<double>(sf);
  }

  /// Effective bit rate including the coding rate.
  [[nodiscard]] double coded_rate_bps() const {
    return phy_rate_bps() * 4.0 / (4.0 + static_cast<double>(cr));
  }

  /// Chirp slope BW^2 / 2^SF (Hz/s) — orthogonality criterion (§6):
  /// two configurations are quasi-orthogonal iff their slopes differ.
  [[nodiscard]] double chirp_slope() const {
    return bandwidth.value() * bandwidth.value() /
           static_cast<double>(chips());
  }

  /// Low-data-rate optimisation applies for symbol times >= 16 ms.
  [[nodiscard]] bool low_data_rate_optimize() const {
    return symbol_time().milliseconds() >= 16.0;
  }
};

/// Whether two configurations can be decoded concurrently (different chirp
/// slopes => quasi-orthogonal, paper §6).
[[nodiscard]] inline bool orthogonal(const LoraParams& a, const LoraParams& b) {
  return std::abs(a.chirp_slope() - b.chirp_slope()) > 1e-6;
}

/// SX1276 datasheet sensitivity (dBm) for a SF/BW pair — the reference
/// lines drawn in the paper's Figs. 10/11/15.
[[nodiscard]] Dbm sx1276_sensitivity(int sf, Hertz bandwidth);

/// Demodulation SNR threshold (dB) for a spreading factor (Semtech
/// datasheet table; the basis of the sensitivity figures).
[[nodiscard]] double snr_limit_db(int sf);

}  // namespace tinysdr::lora
