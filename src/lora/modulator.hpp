// LoRa modulator (paper Fig. 6a): Packet Generator -> Chirp Generator ->
// I/Q stream. Produces the complete packet waveform: preamble upchirps,
// sync word, 2.25-downchirp SFD, then payload chirps from the PacketCodec.
#pragma once

#include <span>

#include "dsp/types.hpp"
#include "lora/chirp.hpp"
#include "lora/packet.hpp"

namespace tinysdr::lora {

class Modulator {
 public:
  Modulator(LoraParams params, Hertz sample_rate);

  [[nodiscard]] const LoraParams& params() const { return codec_.params(); }
  [[nodiscard]] const ChirpGenerator& chirps() const { return chirps_; }

  /// Full packet waveform for a payload.
  [[nodiscard]] dsp::Samples modulate(std::span<const std::uint8_t> payload) const;

  /// Waveform for raw symbol values (no header/FEC) with the standard
  /// preamble/sync/SFD — used by the symbol-error-rate evaluations.
  [[nodiscard]] dsp::Samples modulate_symbols(
      std::span<const std::uint32_t> symbols) const;

  /// Just the preamble + sync + SFD section.
  [[nodiscard]] dsp::Samples preamble_waveform() const;

  /// Samples in a full packet for a payload size.
  [[nodiscard]] std::size_t packet_samples(std::size_t payload_bytes) const;

 private:
  PacketCodec codec_;
  ChirpGenerator chirps_;
};

}  // namespace tinysdr::lora
