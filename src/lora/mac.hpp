// TTN-compatible LoRa MAC layer (paper §4.1 "LoRa MAC Layer").
//
// The paper ports The Things Network's Arduino MAC to the MCU and supports
// both activation methods: OTAA (join procedure assigns a device address)
// and ABP (address hard-coded). This module implements the LoRaWAN-style
// uplink frame format (MHDR | DevAddr | FCtrl | FCnt | FPort | payload |
// MIC), frame counters, both activation flows, and the RX1/RX2 receive-
// window schedule whose feasibility Table 4's switching delays establish.
//
// Frame integrity uses real AES-CMAC (common/aes.hpp, validated against
// the FIPS-197 / RFC 4493 vectors), truncated to the 32-bit LoRaWAN MIC.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "radio/timing.hpp"

namespace tinysdr::lora {

using DevAddr = std::uint32_t;
using AppKey = std::array<std::uint8_t, 16>;

enum class MacMessageType : std::uint8_t {
  kJoinRequest = 0x00,
  kJoinAccept = 0x20,
  kUnconfirmedUp = 0x40,
  kUnconfirmedDown = 0x60,
  kConfirmedUp = 0x80,
  kConfirmedDown = 0xA0,
};

struct MacFrame {
  MacMessageType type = MacMessageType::kUnconfirmedUp;
  DevAddr dev_addr = 0;
  std::uint8_t fctrl = 0;
  std::uint16_t fcnt = 0;
  std::uint8_t fport = 1;
  std::vector<std::uint8_t> payload;
  std::uint32_t mic = 0;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static std::optional<MacFrame> parse(
      std::span<const std::uint8_t> bytes);
};

/// AES-CMAC MIC over the frame contents (LoRaWAN-style 32-bit truncation).
[[nodiscard]] std::uint32_t compute_mic(std::span<const std::uint8_t> frame,
                                        const AppKey& key);

enum class Activation { kAbp, kOtaa };

/// Device-side MAC state machine.
class MacDevice {
 public:
  /// ABP: address and session key are pre-provisioned.
  static MacDevice abp(DevAddr addr, AppKey session_key);
  /// OTAA: starts unjoined; join() derives the session.
  static MacDevice otaa(std::uint64_t dev_eui, AppKey app_key);

  [[nodiscard]] bool joined() const { return joined_; }
  [[nodiscard]] DevAddr dev_addr() const { return dev_addr_; }
  [[nodiscard]] std::uint16_t uplink_counter() const { return fcnt_up_; }

  /// Build a join-request frame (OTAA only).
  [[nodiscard]] std::vector<std::uint8_t> join_request();
  /// Process a join-accept; assigns the dynamic address.
  /// @returns false if the MIC fails or not in OTAA mode.
  bool handle_join_accept(std::span<const std::uint8_t> frame);

  /// Build an uplink data frame; bumps the frame counter.
  /// @throws std::logic_error if not joined.
  [[nodiscard]] std::vector<std::uint8_t> uplink(
      std::span<const std::uint8_t> payload, std::uint8_t fport = 1,
      bool confirmed = false);

  /// Validate and strip a downlink for this device.
  [[nodiscard]] std::optional<MacFrame> handle_downlink(
      std::span<const std::uint8_t> frame);

 private:
  MacDevice() = default;
  Activation activation_ = Activation::kAbp;
  bool joined_ = false;
  DevAddr dev_addr_ = 0;
  std::uint64_t dev_eui_ = 0;
  AppKey key_{};
  std::uint16_t fcnt_up_ = 0;
  std::uint16_t fcnt_down_ = 0;
  std::uint16_t dev_nonce_ = 0;
};

/// Network-server-side counterpart (the TTN side): answers joins and
/// validates uplinks.
class MacNetwork {
 public:
  explicit MacNetwork(AppKey app_key) : app_key_(app_key) {}

  /// Process a join request; returns the join-accept frame.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> handle_join(
      std::span<const std::uint8_t> frame);

  /// Validate an uplink (MIC + monotonic counter).
  [[nodiscard]] std::optional<MacFrame> handle_uplink(
      std::span<const std::uint8_t> frame);

  [[nodiscard]] std::size_t joined_devices() const { return next_addr_ - 1; }

 private:
  AppKey app_key_;
  DevAddr next_addr_ = 1;
  std::vector<std::pair<DevAddr, std::uint16_t>> last_counter_;
};

/// LoRaWAN class-A receive windows: RX1 opens 1 s after uplink end, RX2 at
/// 2 s. Checks against the radio switching delays (Table 4): the turnaround
/// must fit inside the window-opening delay.
struct ReceiveWindows {
  Seconds rx1_delay{1.0};
  Seconds rx2_delay{2.0};

  [[nodiscard]] bool feasible(const radio::TimingModel& timing) const {
    // The device must switch TX->RX (and possibly retune) before RX1 opens.
    Seconds turnaround = timing.tx_to_rx + timing.frequency_switch;
    return turnaround < rx1_delay;
  }
};

}  // namespace tinysdr::lora
