// LoRa packet codec: payload bytes <-> chirp symbol values.
//
// Packet structure (paper Fig. 5): preamble of zero-shift upchirps, a
// two-upchirp sync word, 2.25 downchirp SFD, then the payload symbols
// carrying header + payload + CRC through the coding chain (coding.hpp).
//
// Like real LoRa, the first interleaving block is sent at reduced rate
// (SF-2 bits per symbol, coding rate 4/8) and carries the explicit header;
// later blocks use the configured coding rate, with SF-2 rows again when
// low-data-rate optimisation is active. SF6 supports implicit header only.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lora/coding.hpp"
#include "lora/params.hpp"

namespace tinysdr::lora {

/// Result of symbol-level encoding: the cyclic shifts to modulate.
struct EncodedPacket {
  std::vector<std::uint32_t> symbols;  ///< payload-section chirp shifts
  LoraParams params;
};

/// Outcome of decoding a symbol stream.
struct DecodedPacket {
  std::vector<std::uint8_t> payload;
  bool header_valid = false;
  bool crc_valid = false;
  bool crc_present = false;
  CodingRate cr = CodingRate::kCr45;
};

/// Maximum payload the codec accepts (LoRa caps PHY payloads at 255 B).
inline constexpr std::size_t kMaxPayload = 255;

class PacketCodec {
 public:
  explicit PacketCodec(LoraParams params);

  [[nodiscard]] const LoraParams& params() const { return params_; }

  /// Encode payload bytes into chirp symbol values (payload section only;
  /// preamble/sync/SFD are waveform-level, added by the modulator).
  /// @throws std::invalid_argument for oversize payloads or SF6+explicit.
  [[nodiscard]] EncodedPacket encode(std::span<const std::uint8_t> payload) const;

  /// Decode chirp symbol values back to a payload.
  /// For implicit-header mode the expected payload length and CR must be
  /// pre-set in params (LoRa semantics).
  [[nodiscard]] DecodedPacket decode(std::span<const std::uint32_t> symbols,
                                     std::optional<std::size_t> implicit_length =
                                         std::nullopt) const;

  /// Number of payload-section symbols for a given payload size.
  [[nodiscard]] std::size_t symbol_count(std::size_t payload_bytes) const;

 private:
  struct BlockPlan {
    int header_rows;     ///< rows in block 0 (SF-2)
    int payload_rows;    ///< rows in later blocks (SF or SF-2 under LDRO)
  };
  [[nodiscard]] BlockPlan plan() const;

  /// Map an interleaved symbol (rows bits) to an on-air chirp shift.
  [[nodiscard]] std::uint32_t to_shift(std::uint32_t interleaved,
                                       int rows) const;
  /// Inverse mapping.
  [[nodiscard]] std::uint32_t from_shift(std::uint32_t shift, int rows) const;

  LoraParams params_;
};

/// Sync word symbol values used in the preamble (public network default).
inline constexpr std::uint32_t kSyncSymbol1 = 0x8;
inline constexpr std::uint32_t kSyncSymbol2 = 0x10;

}  // namespace tinysdr::lora
