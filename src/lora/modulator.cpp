#include "lora/modulator.hpp"

namespace tinysdr::lora {

Modulator::Modulator(LoraParams params, Hertz sample_rate)
    : codec_(params), chirps_(params, sample_rate) {}

dsp::Samples Modulator::preamble_waveform() const {
  dsp::Samples out;
  const auto& p = codec_.params();
  out.reserve(static_cast<std::size_t>(
      (p.preamble_symbols + 2) * chirps_.samples_per_symbol() +
      chirps_.samples_per_symbol() * 9 / 4));

  for (int i = 0; i < p.preamble_symbols; ++i) {
    auto sym = chirps_.symbol(0, ChirpDirection::kUp);
    out.insert(out.end(), sym.begin(), sym.end());
  }
  for (std::uint32_t sync : {kSyncSymbol1, kSyncSymbol2}) {
    auto sym = chirps_.symbol(sync & (p.chips() - 1), ChirpDirection::kUp);
    out.insert(out.end(), sym.begin(), sym.end());
  }
  // SFD: 2.25 downchirps.
  for (int i = 0; i < 2; ++i) {
    auto sym = chirps_.symbol(0, ChirpDirection::kDown);
    out.insert(out.end(), sym.begin(), sym.end());
  }
  auto quarter = chirps_.partial_symbol(0.25, ChirpDirection::kDown);
  out.insert(out.end(), quarter.begin(), quarter.end());
  return out;
}

dsp::Samples Modulator::modulate_symbols(
    std::span<const std::uint32_t> symbols) const {
  dsp::Samples out = preamble_waveform();
  out.reserve(out.size() + symbols.size() * chirps_.samples_per_symbol());
  for (std::uint32_t s : symbols) {
    auto sym = chirps_.symbol(s, ChirpDirection::kUp);
    out.insert(out.end(), sym.begin(), sym.end());
  }
  return out;
}

dsp::Samples Modulator::modulate(std::span<const std::uint8_t> payload) const {
  EncodedPacket encoded = codec_.encode(payload);
  return modulate_symbols(encoded.symbols);
}

std::size_t Modulator::packet_samples(std::size_t payload_bytes) const {
  const auto& p = codec_.params();
  std::size_t preamble_syms = static_cast<std::size_t>(p.preamble_symbols) + 2;
  std::size_t sps = chirps_.samples_per_symbol();
  std::size_t sfd = sps * 9 / 4;
  return preamble_syms * sps + sfd + codec_.symbol_count(payload_bytes) * sps;
}

}  // namespace tinysdr::lora
