// LoRa time-on-air calculator (Semtech AN1200.13 formula), used by the MAC
// duty-cycle logic and the OTA programming-time model (§5.3).
#pragma once

#include <algorithm>
#include <cmath>

#include "lora/params.hpp"

namespace tinysdr::lora {

/// Number of payload symbols (excluding preamble) for a PHY payload of
/// `payload_bytes`, per the Semtech formula.
[[nodiscard]] inline std::size_t payload_symbols(const LoraParams& p,
                                                 std::size_t payload_bytes) {
  const int sf = p.sf;
  const int de = p.low_data_rate_optimize() ? 1 : 0;
  const int ih = p.explicit_header ? 0 : 1;
  const int crc = p.payload_crc ? 1 : 0;
  const int cr = static_cast<int>(p.cr);
  double num = 8.0 * static_cast<double>(payload_bytes) - 4.0 * sf + 28.0 +
               16.0 * crc - 20.0 * ih;
  double den = 4.0 * (sf - 2 * de);
  double blocks = std::max(std::ceil(num / den), 0.0);
  return static_cast<std::size_t>(8.0 + blocks * (cr + 4));
}

/// Full packet time on air: preamble (n + 4.25 symbols) + payload symbols.
[[nodiscard]] inline Seconds time_on_air(const LoraParams& p,
                                         std::size_t payload_bytes) {
  double t_sym = p.symbol_time().value();
  double preamble =
      (static_cast<double>(p.preamble_symbols) + 4.25) * t_sym;
  double payload =
      static_cast<double>(payload_symbols(p, payload_bytes)) * t_sym;
  return Seconds{preamble + payload};
}

/// Effective goodput (payload bits / time on air).
[[nodiscard]] inline double goodput_bps(const LoraParams& p,
                                        std::size_t payload_bytes) {
  return 8.0 * static_cast<double>(payload_bytes) /
         time_on_air(p, payload_bytes).value();
}

}  // namespace tinysdr::lora
