#include "lora/packet.hpp"

#include <stdexcept>

#include "common/crc.hpp"

namespace tinysdr::lora {

namespace {

constexpr std::size_t kHeaderNibbles = 5;

/// Header layout: [len_hi, len_lo, flags(cr-1 in bits 1..2, crc in bit 0),
/// check_hi, check_lo] where check is an 8-bit XOR/rotate checksum over the
/// first three nibbles.
std::uint8_t header_checksum(std::uint8_t n0, std::uint8_t n1,
                             std::uint8_t n2) {
  std::uint8_t c = static_cast<std::uint8_t>((n0 << 4) | n1);
  c = static_cast<std::uint8_t>(c ^ (n2 * 0x13));
  c = static_cast<std::uint8_t>((c << 1) | (c >> 7));
  return c;
}

}  // namespace

PacketCodec::PacketCodec(LoraParams params) : params_(params) {
  params_.validate();
  if (params_.sf == 6 && params_.explicit_header)
    throw std::invalid_argument(
        "PacketCodec: SF6 supports implicit header only");
}

PacketCodec::BlockPlan PacketCodec::plan() const {
  BlockPlan p;
  p.header_rows = params_.sf - 2;
  p.payload_rows =
      params_.low_data_rate_optimize() ? params_.sf - 2 : params_.sf;
  return p;
}

std::uint32_t PacketCodec::to_shift(std::uint32_t interleaved,
                                    int rows) const {
  std::uint32_t value = gray_decode(interleaved);
  int shift_up = params_.sf - rows;
  return (value << shift_up) & (params_.chips() - 1);
}

std::uint32_t PacketCodec::from_shift(std::uint32_t shift, int rows) const {
  int shift_up = params_.sf - rows;
  // Round to the nearest reduced-rate grid point: +-1 bin errors at full
  // rate fall back onto the same reduced symbol, which is the robustness
  // LoRa's header/LDRO mode buys.
  std::uint32_t grid = std::uint32_t{1} << shift_up;
  std::uint32_t value =
      ((shift + grid / 2) & (params_.chips() - 1)) >> shift_up;
  value &= (std::uint32_t{1} << rows) - 1;
  return gray_encode(value);
}

std::size_t PacketCodec::symbol_count(std::size_t payload_bytes) const {
  std::size_t total_bytes = payload_bytes + (params_.payload_crc ? 2 : 0);
  std::size_t nibbles = total_bytes * 2;
  BlockPlan p = plan();

  std::size_t header_capacity =
      static_cast<std::size_t>(p.header_rows) -
      (params_.explicit_header ? kHeaderNibbles : 0);
  std::size_t symbols = 8;  // block 0 is always CR4/8 -> 8 symbols
  std::size_t remaining =
      nibbles > header_capacity ? nibbles - header_capacity : 0;
  std::size_t per_block = static_cast<std::size_t>(p.payload_rows);
  std::size_t blocks = (remaining + per_block - 1) / per_block;
  symbols += blocks * (4 + static_cast<std::size_t>(params_.cr));
  return symbols;
}

EncodedPacket PacketCodec::encode(
    std::span<const std::uint8_t> payload) const {
  if (payload.size() > kMaxPayload)
    throw std::invalid_argument("PacketCodec: payload exceeds 255 bytes");

  BlockPlan p = plan();

  // Whitened payload, then CRC16 over the *original* payload appended.
  std::vector<std::uint8_t> body = whiten(payload);
  if (params_.payload_crc) {
    std::uint16_t crc = crc16_ccitt(payload);
    body.push_back(static_cast<std::uint8_t>(crc & 0xFF));
    body.push_back(static_cast<std::uint8_t>(crc >> 8));
  }
  std::vector<std::uint8_t> nibbles = bytes_to_nibbles(body);

  // Nibble stream with header prefix.
  std::vector<std::uint8_t> stream;
  if (params_.explicit_header) {
    auto len = static_cast<std::uint8_t>(payload.size());
    std::uint8_t n0 = static_cast<std::uint8_t>(len >> 4);
    std::uint8_t n1 = static_cast<std::uint8_t>(len & 0xF);
    std::uint8_t flags = static_cast<std::uint8_t>(
        ((static_cast<int>(params_.cr) - 1) << 1) |
        (params_.payload_crc ? 1 : 0));
    std::uint8_t check = header_checksum(n0, n1, flags);
    stream.insert(stream.end(), {n0, n1, flags,
                                 static_cast<std::uint8_t>(check >> 4),
                                 static_cast<std::uint8_t>(check & 0xF)});
  }
  stream.insert(stream.end(), nibbles.begin(), nibbles.end());

  EncodedPacket out;
  out.params = params_;

  // Block 0: header_rows nibbles at CR4/8.
  std::size_t pos = 0;
  {
    std::vector<std::uint8_t> cws;
    for (int i = 0; i < p.header_rows; ++i) {
      std::uint8_t nib = pos < stream.size() ? stream[pos++] : 0;
      cws.push_back(hamming_encode(nib, CodingRate::kCr48));
    }
    auto syms = interleave(cws, p.header_rows, CodingRate::kCr48);
    for (std::uint32_t s : syms)
      out.symbols.push_back(to_shift(s, p.header_rows));
  }

  // Payload blocks.
  while (pos < stream.size()) {
    std::vector<std::uint8_t> cws;
    for (int i = 0; i < p.payload_rows; ++i) {
      std::uint8_t nib = pos < stream.size() ? stream[pos++] : 0;
      cws.push_back(hamming_encode(nib, params_.cr));
    }
    auto syms = interleave(cws, p.payload_rows, params_.cr);
    for (std::uint32_t s : syms)
      out.symbols.push_back(to_shift(s, p.payload_rows));
  }
  return out;
}

DecodedPacket PacketCodec::decode(
    std::span<const std::uint32_t> symbols,
    std::optional<std::size_t> implicit_length) const {
  DecodedPacket out;
  BlockPlan p = plan();
  const std::size_t block0_syms = 8;
  if (symbols.size() < block0_syms) return out;

  // Block 0.
  std::vector<std::uint32_t> b0;
  for (std::size_t i = 0; i < block0_syms; ++i)
    b0.push_back(from_shift(symbols[i], p.header_rows));
  auto cws0 = deinterleave(b0, p.header_rows, CodingRate::kCr48);
  std::vector<std::uint8_t> stream;
  for (std::uint8_t cw : cws0)
    stream.push_back(hamming_decode(cw, CodingRate::kCr48));

  std::size_t payload_len;
  CodingRate cr = params_.cr;
  bool has_crc = params_.payload_crc;
  std::size_t header_nibbles = 0;
  if (params_.explicit_header) {
    if (stream.size() < kHeaderNibbles) return out;
    std::uint8_t n0 = stream[0], n1 = stream[1], flags = stream[2];
    std::uint8_t check =
        static_cast<std::uint8_t>((stream[3] << 4) | stream[4]);
    if (header_checksum(n0, n1, flags) != check) return out;
    payload_len = static_cast<std::size_t>((n0 << 4) | n1);
    int cr_raw = ((flags >> 1) & 0x3) + 1;
    cr = static_cast<CodingRate>(cr_raw);
    has_crc = flags & 1u;
    header_nibbles = kHeaderNibbles;
    out.header_valid = true;
  } else {
    if (!implicit_length)
      throw std::invalid_argument(
          "PacketCodec::decode: implicit header needs a length");
    payload_len = *implicit_length;
    out.header_valid = true;
  }
  out.cr = cr;
  out.crc_present = has_crc;

  std::size_t total_bytes = payload_len + (has_crc ? 2 : 0);
  std::size_t need_nibbles = total_bytes * 2 + header_nibbles;

  // Payload blocks.
  std::size_t pos = block0_syms;
  const std::size_t cols = 4 + static_cast<std::size_t>(cr);
  while (stream.size() < need_nibbles && pos + cols <= symbols.size()) {
    std::vector<std::uint32_t> blk;
    for (std::size_t j = 0; j < cols; ++j)
      blk.push_back(from_shift(symbols[pos + j], p.payload_rows));
    pos += cols;
    auto cws = deinterleave(blk, p.payload_rows, cr);
    for (std::uint8_t cw : cws) stream.push_back(hamming_decode(cw, cr));
  }
  if (stream.size() < need_nibbles) return out;  // truncated

  std::vector<std::uint8_t> body_nibbles(
      stream.begin() + static_cast<std::ptrdiff_t>(header_nibbles),
      stream.begin() + static_cast<std::ptrdiff_t>(need_nibbles));
  std::vector<std::uint8_t> body = nibbles_to_bytes(body_nibbles);

  std::vector<std::uint8_t> whitened(
      body.begin(), body.begin() + static_cast<std::ptrdiff_t>(payload_len));
  out.payload = whiten(whitened);  // self-inverse

  if (has_crc) {
    std::uint16_t rx_crc = static_cast<std::uint16_t>(
        body[payload_len] | (body[payload_len + 1] << 8));
    out.crc_valid = (crc16_ccitt(out.payload) == rx_crc);
  } else {
    out.crc_valid = true;
  }
  return out;
}

}  // namespace tinysdr::lora
