// LoRa bit-level encoding chain: whitening, Hamming FEC, diagonal
// interleaving and Gray mapping.
//
// LoRa is proprietary; this chain follows the structure established by the
// reverse-engineering literature the paper builds on [43, 46, 67]:
//   payload bytes -> whitening -> nibbles -> Hamming 4/(4+CR) codewords
//   -> diagonal interleaver (SF codewords -> 4+CR symbols) -> Gray mapping
//   -> chirp cyclic shifts.
// Gray mapping ensures that the dominant demodulation error (+-1 FFT bin)
// corrupts a single code bit, which the Hamming layer can then correct.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lora/params.hpp"

namespace tinysdr::lora {

// ---------------------------------------------------------------- whitening

/// PN9 whitening sequence (x^9 + x^5 + 1, seed 0x1FF). XOR-based and thus
/// self-inverse: apply twice to get the original back.
[[nodiscard]] std::vector<std::uint8_t> whiten(
    std::span<const std::uint8_t> data);

// ------------------------------------------------------------------ hamming

/// Encode a nibble (4 bits) into a (4+cr)-bit codeword.
[[nodiscard]] std::uint8_t hamming_encode(std::uint8_t nibble, CodingRate cr);

/// Decode a codeword back to a nibble.
/// CR 4/7 and 4/8 correct single-bit errors; 4/5 and 4/6 only detect.
/// @param[out] error_detected  set when an uncorrectable anomaly is seen
[[nodiscard]] std::uint8_t hamming_decode(std::uint8_t codeword, CodingRate cr,
                                          bool* error_detected = nullptr);

// --------------------------------------------------------------- interleave

/// Diagonal interleaver: `rows` codewords of `4+cr` bits each become
/// (4+cr) symbols of `rows` bits each, with the LoRa diagonal shift.
/// `rows` is SF, or SF-2 in reduced-rate (header / LDRO) blocks.
[[nodiscard]] std::vector<std::uint32_t> interleave(
    std::span<const std::uint8_t> codewords, int rows, CodingRate cr);

/// Inverse of interleave().
[[nodiscard]] std::vector<std::uint8_t> deinterleave(
    std::span<const std::uint32_t> symbols, int rows, CodingRate cr);

// --------------------------------------------------------------------- gray

[[nodiscard]] constexpr std::uint32_t gray_encode(std::uint32_t v) {
  return v ^ (v >> 1);
}
[[nodiscard]] constexpr std::uint32_t gray_decode(std::uint32_t g) {
  std::uint32_t v = g;
  for (std::uint32_t shift = 1; shift < 32; shift <<= 1) v ^= v >> shift;
  return v;
}

// ------------------------------------------------------------------ nibbles

[[nodiscard]] std::vector<std::uint8_t> bytes_to_nibbles(
    std::span<const std::uint8_t> bytes);
/// Pads with a zero nibble if the count is odd.
[[nodiscard]] std::vector<std::uint8_t> nibbles_to_bytes(
    std::span<const std::uint8_t> nibbles);

}  // namespace tinysdr::lora
