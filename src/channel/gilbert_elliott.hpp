// Gilbert–Elliott two-state burst-loss channel.
//
// The OTA evaluation in the paper runs over a campus LoRa backbone; real
// links there fade in bursts (people, doors, weather) rather than dropping
// packets i.i.d. The classic Gilbert–Elliott model captures this with a
// two-state Markov chain — a Good state with low loss and a Bad (deep-fade)
// state with high loss — advanced once per packet. It is the burst-loss
// primitive behind the fault-injection framework (`sim::FaultPlan`).
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace tinysdr::channel {

/// Per-packet transition/loss probabilities of the two-state chain.
struct GilbertElliottParams {
  double p_enter_bad = 0.05;  ///< P(Good -> Bad) per packet
  double p_exit_bad = 0.30;   ///< P(Bad -> Good) per packet
  double loss_good = 0.0;     ///< packet loss probability in Good
  double loss_bad = 0.9;      ///< packet loss probability in Bad

  /// Stationary probability of being in the Bad state.
  [[nodiscard]] double steady_bad() const {
    double denom = p_enter_bad + p_exit_bad;
    return denom <= 0.0 ? 0.0 : p_enter_bad / denom;
  }

  /// Long-run average packet loss rate (for equal-PER comparisons against
  /// an i.i.d. Bernoulli channel).
  [[nodiscard]] double mean_loss() const {
    double pb = steady_bad();
    return loss_good * (1.0 - pb) + loss_bad * pb;
  }

  /// Mean burst length (packets spent in Bad per visit).
  [[nodiscard]] double mean_burst_length() const {
    return p_exit_bad <= 0.0 ? 1e18 : 1.0 / p_exit_bad;
  }

  /// Degenerate parameters reproducing an i.i.d. Bernoulli loss of `per`
  /// (both states identical) — the control arm of burst-vs-iid ablations.
  [[nodiscard]] static GilbertElliottParams bernoulli(double per) {
    return GilbertElliottParams{0.5, 0.5, per, per};
  }
};

/// The chain itself: advanced one step per delivery attempt.
class GilbertElliottChannel {
 public:
  GilbertElliottChannel(GilbertElliottParams params, Rng rng)
      : params_(params), rng_(rng) {}

  /// Advance the chain one packet and draw the loss for that packet.
  /// Returns true if the packet is lost.
  bool lose_packet() {
    if (in_bad_) {
      if (rng_.next_bool(params_.p_exit_bad)) in_bad_ = false;
    } else {
      if (rng_.next_bool(params_.p_enter_bad)) {
        in_bad_ = true;
        ++bad_entries_;
      }
    }
    bool lost = rng_.next_bool(in_bad_ ? params_.loss_bad : params_.loss_good);
    if (lost) ++packets_lost_;
    ++packets_seen_;
    return lost;
  }

  [[nodiscard]] bool in_bad() const { return in_bad_; }
  [[nodiscard]] const GilbertElliottParams& params() const { return params_; }

  /// Observed statistics (for tests validating the chain's behaviour).
  [[nodiscard]] std::size_t packets_seen() const { return packets_seen_; }
  [[nodiscard]] std::size_t packets_lost() const { return packets_lost_; }
  [[nodiscard]] std::size_t bad_entries() const { return bad_entries_; }
  [[nodiscard]] double observed_loss() const {
    return packets_seen_ == 0 ? 0.0
                              : static_cast<double>(packets_lost_) /
                                    static_cast<double>(packets_seen_);
  }

 private:
  GilbertElliottParams params_;
  Rng rng_;
  bool in_bad_ = false;
  std::size_t packets_seen_ = 0;
  std::size_t packets_lost_ = 0;
  std::size_t bad_entries_ = 0;
};

}  // namespace tinysdr::channel
