#include "channel/noise.hpp"

#include <cmath>
#include <numbers>

namespace tinysdr::channel {

dsp::Samples AwgnChannel::apply(const dsp::Samples& signal, Dbm rssi) {
  return apply_snr(signal, snr_db(rssi));
}

dsp::Samples AwgnChannel::apply_snr(const dsp::Samples& signal,
                                    double snr_db) {
  dsp::Samples out = signal;
  add_noise(out, snr_db);
  return out;
}

void AwgnChannel::add_noise(std::span<dsp::Complex> signal, double snr_db) {
  // Unit signal power assumed; complex noise power = 10^(-snr/10), split
  // evenly between I and Q.
  double noise_power = std::pow(10.0, -snr_db / 10.0);
  auto sigma = static_cast<float>(std::sqrt(noise_power / 2.0));
  for (auto& s : signal) {
    s += dsp::Complex{sigma * static_cast<float>(rng_.next_gaussian()),
                      sigma * static_cast<float>(rng_.next_gaussian())};
  }
}

dsp::Samples AwgnChannel::noise_only(std::size_t count, Dbm reference_rssi) {
  double snr = snr_db(reference_rssi);
  double noise_power = std::pow(10.0, -snr / 10.0);
  auto sigma = static_cast<float>(std::sqrt(noise_power / 2.0));
  dsp::Samples out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(dsp::Complex{
        sigma * static_cast<float>(rng_.next_gaussian()),
        sigma * static_cast<float>(rng_.next_gaussian())});
  }
  return out;
}

dsp::Samples superpose(const dsp::Samples& a, const dsp::Samples& b,
                       double relative_db, std::size_t offset) {
  auto scale = static_cast<float>(std::pow(10.0, relative_db / 20.0));
  dsp::Samples out = a;
  for (std::size_t i = 0; i < b.size(); ++i) {
    std::size_t idx = offset + i;
    if (idx >= out.size()) break;
    out[idx] += b[i] * scale;
  }
  return out;
}

dsp::Samples apply_cfo(const dsp::Samples& in, double cycles_per_sample) {
  dsp::Samples out;
  out.reserve(in.size());
  double phase = 0.0;
  for (const auto& s : in) {
    out.push_back(s * dsp::Complex{static_cast<float>(std::cos(phase)),
                                   static_cast<float>(std::sin(phase))});
    phase += 2.0 * std::numbers::pi * cycles_per_sample;
    if (phase > std::numbers::pi * 2.0) phase -= std::numbers::pi * 4.0;
  }
  return out;
}

}  // namespace tinysdr::channel
