#include "channel/link_budget.hpp"

#include <cmath>
#include <stdexcept>

namespace tinysdr::channel {

namespace {
constexpr double kSpeedOfLight = 299792458.0;
}

double PathLossModel::reference_loss_db() const {
  // FSPL(d, f) = 20 log10(4*pi*d*f/c), at d = 1 m.
  double ratio = 4.0 * 3.14159265358979323846 * carrier_.value() /
                 kSpeedOfLight;
  return 20.0 * std::log10(ratio);
}

double PathLossModel::loss_db(double meters) const {
  double d = std::max(meters, 1.0);
  return reference_loss_db() + 10.0 * exponent_ * std::log10(d);
}

Dbm PathLossModel::received_power(Dbm tx_power, double meters) const {
  return tx_power - loss_db(meters);
}

double PathLossModel::range_meters(Dbm tx_power, Dbm rx_power) const {
  double budget_db = tx_power - rx_power;
  double excess = budget_db - reference_loss_db();
  if (excess <= 0.0) return 1.0;
  return std::pow(10.0, excess / (10.0 * exponent_));
}

}  // namespace tinysdr::channel
