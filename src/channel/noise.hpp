// Thermal noise and AWGN channel calibrated in absolute RSSI terms.
//
// The paper's evaluation plots PER/SER/BER against RSSI in dBm. We map RSSI
// to sample-domain SNR via the standard receiver noise floor
//     N = -174 dBm/Hz + 10*log10(fs) + NF,
// where fs is the (complex) sampling bandwidth and NF the receiver noise
// figure. The AT86RF215 front-end NF is 3-5 dB per the paper (§3.1.1); we
// default to 4 dB plus a 2 dB implementation margin, which places the
// SF8/BW125 LoRa knee at about -126 dBm as the paper reports.
#pragma once

#include <span>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dsp/types.hpp"

namespace tinysdr::channel {

/// Thermal noise density at 290 K.
inline constexpr double kThermalNoiseDbmPerHz = -174.0;

/// Default receiver noise figure used across the simulation (front-end NF
/// plus implementation margin).
inline constexpr double kDefaultNoiseFigureDb = 6.0;

/// Receiver noise floor over a given bandwidth.
[[nodiscard]] inline Dbm noise_floor(Hertz bandwidth,
                                     double noise_figure_db = kDefaultNoiseFigureDb) {
  return Dbm{kThermalNoiseDbmPerHz + 10.0 * std::log10(bandwidth.value()) +
             noise_figure_db};
}

/// AWGN channel operating on unit-power-normalised baseband blocks.
class AwgnChannel {
 public:
  /// @param sample_rate      complex sample rate (noise bandwidth)
  /// @param noise_figure_db  receiver NF in dB
  AwgnChannel(Hertz sample_rate, double noise_figure_db, Rng rng)
      : sample_rate_(sample_rate),
        noise_figure_db_(noise_figure_db),
        rng_(rng) {}

  [[nodiscard]] Dbm floor() const {
    return noise_floor(sample_rate_, noise_figure_db_);
  }

  /// SNR (dB) a signal at `rssi` sees over this channel's bandwidth.
  [[nodiscard]] double snr_db(Dbm rssi) const { return rssi - floor(); }

  /// Add noise to `signal` so that a unit-mean-power signal corresponds to
  /// the given RSSI. Returns the noisy block; the input represents the
  /// transmitted waveform normalised to unit power.
  [[nodiscard]] dsp::Samples apply(const dsp::Samples& signal, Dbm rssi);

  /// Add noise at an explicit SNR (dB) relative to unit signal power.
  [[nodiscard]] dsp::Samples apply_snr(const dsp::Samples& signal,
                                       double snr_db);

  /// In-place variant of apply_snr for zero-copy pipelines: perturbs
  /// `signal` where it lives (a ring's WriteView, a capture buffer) and
  /// draws from the same RNG in the same per-sample I-then-Q order, so a
  /// block processed through successive add_noise calls is bit-identical
  /// to one apply_snr call over the concatenation.
  void add_noise(std::span<dsp::Complex> signal, double snr_db);

  /// Generate a pure-noise block with the channel's floor power relative to
  /// a unit-power signal at `reference_rssi`.
  [[nodiscard]] dsp::Samples noise_only(std::size_t count, Dbm reference_rssi);

 private:
  Hertz sample_rate_;
  double noise_figure_db_;
  Rng rng_;
};

/// Superpose `b` onto `a` with `b` scaled by `relative_db` (power dB
/// relative to a's power). Blocks may have different lengths; `b` starts at
/// `offset` samples into `a`. Result has a's length.
[[nodiscard]] dsp::Samples superpose(const dsp::Samples& a,
                                     const dsp::Samples& b, double relative_db,
                                     std::size_t offset = 0);

/// Apply a carrier frequency offset of `cycles_per_sample` to a block.
[[nodiscard]] dsp::Samples apply_cfo(const dsp::Samples& in,
                                     double cycles_per_sample);

}  // namespace tinysdr::channel
