// Link budget and large-scale propagation models for the campus testbed.
//
// The paper's Fig. 7 deployment spans an anonymized campus; we stand in a
// log-distance path-loss model (free-space reference at 1 m plus a
// path-loss exponent typical for suburban campus deployments) that produces
// the RSSI spread the OTA experiments (Fig. 14) exercise.
#pragma once

#include "common/units.hpp"

namespace tinysdr::channel {

/// Log-distance path loss model: PL(d) = FSPL(d0=1m, f) + 10 n log10(d).
class PathLossModel {
 public:
  /// @param carrier   RF carrier frequency
  /// @param exponent  path loss exponent (2.0 free space; ~2.9 campus)
  PathLossModel(Hertz carrier, double exponent)
      : carrier_(carrier), exponent_(exponent) {}

  /// Free-space path loss at 1 m for the carrier.
  [[nodiscard]] double reference_loss_db() const;

  /// Total path loss in dB at distance `meters` (>= 1 m enforced).
  [[nodiscard]] double loss_db(double meters) const;

  /// Received power for a given transmit power and distance.
  [[nodiscard]] Dbm received_power(Dbm tx_power, double meters) const;

  /// Distance (m) at which received power drops to `rx_power`.
  [[nodiscard]] double range_meters(Dbm tx_power, Dbm rx_power) const;

  [[nodiscard]] Hertz carrier() const { return carrier_; }
  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  Hertz carrier_;
  double exponent_;
};

/// Complete point-to-point link description.
struct Link {
  Dbm tx_power{14.0};
  double tx_antenna_gain_db = 0.0;
  double rx_antenna_gain_db = 0.0;
  double distance_meters = 100.0;
  double shadowing_db = 0.0;  ///< log-normal shadowing realisation

  [[nodiscard]] Dbm rssi(const PathLossModel& model) const {
    return model.received_power(tx_power, distance_meters) +
           tx_antenna_gain_db + rx_antenna_gain_db - shadowing_db;
  }
};

}  // namespace tinysdr::channel
