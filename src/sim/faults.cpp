#include "sim/faults.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tinysdr::sim {

namespace {

/// Shared tail of every fired hook: an instant on the "faults" track plus
/// a fired-count metric. Pointer-guarded, so the untraced path pays only
/// the call when a fault actually fires.
void note_fired(const char* kind) {
  if (auto* t = obs::tracer()) t->instant("faults", kind);
  if (auto* m = obs::metrics())
    m->counter(std::string("faults.") + kind).add();
}

}  // namespace

bool FaultInjector::corrupt_packet() {
  if (plan_.corrupt_rate <= 0.0) return false;
  bool fired = rng_.next_bool(plan_.corrupt_rate);
  if (fired) {
    ++counters_.corrupted;
    note_fired("corrupt");
  }
  return fired;
}

bool FaultInjector::duplicate_packet() {
  if (plan_.duplicate_rate <= 0.0) return false;
  bool fired = rng_.next_bool(plan_.duplicate_rate);
  if (fired) {
    ++counters_.duplicated;
    note_fired("duplicate");
  }
  return fired;
}

bool FaultInjector::reorder_packet() {
  if (plan_.reorder_rate <= 0.0) return false;
  bool fired = rng_.next_bool(plan_.reorder_rate);
  if (fired) {
    ++counters_.reordered;
    note_fired("reorder");
  }
  return fired;
}

bool FaultInjector::brownout_due(std::size_t bytes_received) {
  if (brownout_fired_ || !plan_.brownout_at_byte) return false;
  if (bytes_received < *plan_.brownout_at_byte) return false;
  brownout_fired_ = true;
  ++counters_.brownouts;
  note_fired("brownout");
  return true;
}

std::optional<PageFault> FaultInjector::page_program_fault(
    std::size_t address, std::size_t length) {
  if (plan_.page_program_failure_rate <= 0.0 || !in_fault_region(address))
    return std::nullopt;
  if (!rng_.next_bool(plan_.page_program_failure_rate)) return std::nullopt;
  ++counters_.page_program_failures;
  note_fired("page-program");
  PageFault fault;
  // Power dies partway through the page: a prefix commits, the byte at the
  // boundary is half-programmed (some bits that should clear stay 1).
  fault.committed = length == 0 ? 0 : rng_.next_below(
                                          static_cast<std::uint32_t>(length));
  fault.torn_keep_mask = rng_.next_byte();
  if (fault.torn_keep_mask == 0) fault.torn_keep_mask = 0x55;
  return fault;
}

bool FaultInjector::sector_erase_fault(std::size_t address) {
  if (plan_.sector_erase_failure_rate <= 0.0 || !in_fault_region(address))
    return false;
  bool fired = rng_.next_bool(plan_.sector_erase_failure_rate);
  if (fired) {
    ++counters_.sector_erase_failures;
    note_fired("sector-erase");
  }
  return fired;
}

Seconds FaultInjector::jitter(Seconds nominal) {
  if (plan_.timeout_jitter <= 0.0) return nominal;
  double u = 2.0 * rng_.next_double() - 1.0;  // [-1, 1)
  double factor = std::max(0.0, 1.0 + plan_.timeout_jitter * u);
  return nominal * factor;
}

}  // namespace tinysdr::sim
