// Fault-injection framework for the tinySDR simulation.
//
// Real over-the-air reprogramming of remote nodes fails in ways the happy
// path never exercises: burst fading on the backbone link, bit corruption,
// duplicated and reordered packets, node brownouts mid-transfer, and flash
// page-program / sector-erase failures. A `FaultPlan` describes a seeded,
// reproducible schedule of such faults; a `FaultInjector` is the runtime
// object the OTA stack and the flash model query at each hookable point.
// Every draw comes from one PCG32 stream per injector, so a failing
// campaign run is reproducible from (plan, seed) alone.
#pragma once

#include <cstdint>
#include <optional>

#include "channel/gilbert_elliott.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace tinysdr::sim {

/// Address window a flash fault applies to (e.g. only the A/B image slots,
/// leaving the staging region healthy).
struct FlashRegion {
  std::size_t offset = 0;
  std::size_t length = 0;

  [[nodiscard]] bool contains(std::size_t address) const {
    return address >= offset && address < offset + length;
  }
};

/// Declarative, seeded schedule of faults for one simulated node/link.
struct FaultPlan {
  std::uint64_t seed = 0x7A17;

  /// Burst packet loss: Gilbert–Elliott chain layered on top of the link's
  /// RSSI-driven loss. nullopt = no burst fading.
  std::optional<channel::GilbertElliottParams> burst;

  /// Per-delivered-packet probability the payload arrives bit-corrupted
  /// (caught by the packet CRC; the receiver drops it).
  double corrupt_rate = 0.0;
  /// Per-delivered-packet probability the radio sees a duplicate copy.
  double duplicate_rate = 0.0;
  /// Per-delivered-packet probability of late/out-of-order arrival.
  double reorder_rate = 0.0;

  /// Node brownout/reboot fired once, when cumulative received payload
  /// bytes cross this offset. RAM transfer state is lost; flash survives.
  std::optional<std::size_t> brownout_at_byte;

  /// Flash failure rates, drawn per page-program / per sector-erase op.
  double page_program_failure_rate = 0.0;
  double sector_erase_failure_rate = 0.0;
  /// Restrict flash faults to an address window. nullopt = whole array.
  std::optional<FlashRegion> flash_fault_region;

  /// AP-side timeout jitter: timeouts/backoffs are scaled by a uniform
  /// factor in [1 - jitter, 1 + jitter].
  double timeout_jitter = 0.0;

  [[nodiscard]] static FaultPlan none() { return {}; }

  /// True if any fault dimension is active.
  [[nodiscard]] bool any() const {
    return burst.has_value() || corrupt_rate > 0.0 || duplicate_rate > 0.0 ||
           reorder_rate > 0.0 || brownout_at_byte.has_value() ||
           page_program_failure_rate > 0.0 ||
           sector_erase_failure_rate > 0.0 || timeout_jitter > 0.0;
  }
};

/// Tally of faults actually fired during a run.
struct FaultCounters {
  std::size_t corrupted = 0;
  std::size_t duplicated = 0;
  std::size_t reordered = 0;
  std::size_t brownouts = 0;
  std::size_t page_program_failures = 0;
  std::size_t sector_erase_failures = 0;
};

/// How a faulted page program tears: `committed` leading bytes land, the
/// next byte keeps the bits set in `torn_keep_mask` uncleared (a partial
/// NOR program), everything after is untouched.
struct PageFault {
  std::size_t committed = 0;
  std::uint8_t torn_keep_mask = 0;
};

/// Runtime fault source. One per simulated node; all draws are funneled
/// through a single seeded RNG stream so runs replay exactly.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan)
      : plan_(plan), rng_(plan.seed, 0x5EEDF001ULL) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultCounters& counters() const { return counters_; }

  // ----------------------------------------------------- packet-level hooks

  /// Payload of a delivered packet arrives corrupted (CRC will reject it).
  [[nodiscard]] bool corrupt_packet();
  /// Receiver sees a duplicate copy of a delivered packet.
  [[nodiscard]] bool duplicate_packet();
  /// Delivered packet arrives late / out of order.
  [[nodiscard]] bool reorder_packet();

  // ------------------------------------------------------- node-level hooks

  /// Fires exactly once when the cumulative byte count crosses the plan's
  /// brownout offset.
  [[nodiscard]] bool brownout_due(std::size_t bytes_received);

  // ------------------------------------------------------ flash-level hooks

  /// Queried by FlashModel per page-program op. nullopt = success.
  [[nodiscard]] std::optional<PageFault> page_program_fault(
      std::size_t address, std::size_t length);
  /// Queried by FlashModel per sector erase. True = erase fails partway.
  [[nodiscard]] bool sector_erase_fault(std::size_t address);

  // --------------------------------------------------------- AP-side hooks

  /// Apply timeout jitter to a nominal wait.
  [[nodiscard]] Seconds jitter(Seconds nominal);

 private:
  [[nodiscard]] bool in_fault_region(std::size_t address) const {
    return !plan_.flash_fault_region ||
           plan_.flash_fault_region->contains(address);
  }

  FaultPlan plan_;
  Rng rng_;
  FaultCounters counters_;
  bool brownout_fired_ = false;
};

}  // namespace tinysdr::sim
