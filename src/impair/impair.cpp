#include "impair/impair.hpp"

#include <cmath>
#include <numbers>

namespace tinysdr::impair {

std::string_view stage_name(Stage stage) {
  return stage == Stage::kTx ? "tx" : "rx";
}

// ---------------------------------------------------------- IqImbalance

IqImbalance::IqImbalance(double gain_db, double phase_deg)
    : gain_db_(gain_db),
      phase_deg_(phase_deg),
      enabled_(gain_db != 0.0 || phase_deg != 0.0) {
  const double g = std::pow(10.0, gain_db / 20.0);
  const double phi = phase_deg * std::numbers::pi / 180.0;
  sin_term_ = static_cast<float>(g * std::sin(phi));
  cos_term_ = static_cast<float>(g * std::cos(phi));
}

void IqImbalance::apply(std::span<dsp::Complex> x, ImpairState& state) const {
  if (enabled_) {
    for (auto& s : x)
      s = dsp::Complex{s.real(),
                       sin_term_ * s.real() + cos_term_ * s.imag()};
  }
  state.pos += x.size();
}

// ------------------------------------------------------------- DcOffset

DcOffset::DcOffset(dsp::Complex offset)
    : offset_(offset), enabled_(offset != dsp::Complex{0.0f, 0.0f}) {}

void DcOffset::apply(std::span<dsp::Complex> x, ImpairState& state) const {
  if (enabled_)
    for (auto& s : x) s += offset_;
  state.pos += x.size();
}

// ------------------------------------------------------------- CfoDrift

CfoDrift::CfoDrift(double cfo_cycles_per_sample,
                   double drift_cycles_per_sample2)
    : cfo_(cfo_cycles_per_sample),
      drift_(drift_cycles_per_sample2),
      enabled_(cfo_cycles_per_sample != 0.0 ||
               drift_cycles_per_sample2 != 0.0) {}

void CfoDrift::apply(std::span<dsp::Complex> x, ImpairState& state) const {
  if (enabled_) {
    for (auto& s : x) {
      // Phase computed fresh from the absolute region position each
      // sample (not accumulated), so any chunking reproduces it exactly.
      const auto n = static_cast<double>(state.pos);
      const double phi =
          2.0 * std::numbers::pi * (cfo_ * n + 0.5 * drift_ * n * n);
      s *= dsp::Complex{static_cast<float>(std::cos(phi)),
                        static_cast<float>(std::sin(phi))};
      ++state.pos;
    }
  } else {
    state.pos += x.size();
  }
}

// ----------------------------------------------------------- PhaseNoise

PhaseNoise::PhaseNoise(double sigma_rad_per_sample)
    : sigma_(sigma_rad_per_sample), enabled_(sigma_rad_per_sample != 0.0) {}

void PhaseNoise::apply(std::span<dsp::Complex> x, ImpairState& state) const {
  if (enabled_) {
    for (auto& s : x) {
      state.phase += sigma_ * state.rng.next_gaussian();
      s *= dsp::Complex{static_cast<float>(std::cos(state.phase)),
                        static_cast<float>(std::sin(state.phase))};
      ++state.pos;
    }
  } else {
    state.pos += x.size();
  }
}

// --------------------------------------------------------------- PaClip

PaClip::PaClip(double clip_level, double smoothness)
    : clip_level_(clip_level),
      smoothness_(smoothness > 0.0 ? smoothness : 2.0),
      enabled_(clip_level > 0.0) {}

void PaClip::apply(std::span<dsp::Complex> x, ImpairState& state) const {
  if (enabled_) {
    const double inv_a = 1.0 / clip_level_;
    const double two_p = 2.0 * smoothness_;
    for (auto& s : x) {
      const double mag = std::sqrt(static_cast<double>(std::norm(s)));
      if (mag <= 0.0) continue;
      const double shrink =
          std::pow(1.0 + std::pow(mag * inv_a, two_p), -1.0 / two_p);
      s *= static_cast<float>(shrink);
    }
  }
  state.pos += x.size();
}

// ---------------------------------------------------------------- Chain

void apply_stage(const Chain& chain, Stage stage, std::span<dsp::Complex> x,
                 std::uint64_t trial_seed, std::uint64_t stream_base) {
  for (std::size_t k = 0; k < chain.size(); ++k) {
    if (chain[k].stage != stage) continue;
    ImpairState state{Rng{trial_seed, stream_base + k}};
    chain[k].impairment->apply(x, state);
  }
}

}  // namespace tinysdr::impair
