// Hardware-impairment pipeline: the analog front-end defects the AWGN-only
// channel model leaves out (ROADMAP item 4).
//
// The AT86RF215 + LMS7002M chain the paper builds on — like every direct-
// conversion front end — suffers IQ gain/phase imbalance, LO leakage (DC
// offset), crystal-driven CFO with temperature drift, LO phase noise, and
// PA compression. Each defect is modelled as a composable, seeded block
// over a span of baseband samples, usable in two places with byte-identical
// results:
//
//   - batch: phy::LinkSimulator's ordered impairment chain, applied per
//     trial between the interferer mix and the AWGN channel (TX stage) or
//     after it (RX stage);
//   - streaming: flow::ImpairStreamBlock / flow::ImpairChainBlock, applying
//     the same chain chunk-by-chunk in ring memory.
//
// Determinism contract: apply() must be *chunk-independent* — processing
// [0, N) in one call is byte-identical to processing any consecutive
// sub-ranges with the same ImpairState carried across calls. All
// randomness comes from the state's Rng (seeded per (trial, chain slot) by
// the engines via exec::stream_seed), all positional terms from the
// state's running sample counter. A block at zero magnitude is a
// byte-identical passthrough that consumes no randomness, so an "off"
// impairment can never perturb a calibrated curve.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "dsp/types.hpp"

namespace tinysdr::impair {

/// Where in the signal path a chain slot sits: TX defects distort the
/// transmitted waveform before the channel adds noise; RX defects (LO
/// phase noise, receive-side CFO) land on the noisy capture.
enum class Stage : std::uint8_t { kTx = 0, kRx };

[[nodiscard]] std::string_view stage_name(Stage stage);

/// Per-(trial, slot) processing state carried across chunks: the slot's
/// seeded RNG stream, the running sample position relative to the start of
/// the region, and an accumulated phase for random-walk models.
struct ImpairState {
  Rng rng{0, 0};
  std::uint64_t pos = 0;
  double phase = 0.0;
};

/// One impairment block: a pure in-place span transform under the
/// chunk-independence contract above. Implementations must be safe for
/// concurrent const use (all per-call state lives in ImpairState).
class Impairment {
 public:
  virtual ~Impairment() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  virtual void apply(std::span<dsp::Complex> x, ImpairState& state) const = 0;
};

/// IQ gain/phase imbalance (direct-conversion mixer mismatch, the defect
/// litex_m2sdr's iq_correction gateware trims): the Q rail is scaled by
/// g = 10^(gain_db/20) and skewed by phase_deg relative to I:
///   I' = I,   Q' = g*(sin(phi)*I + cos(phi)*Q).
/// Memoryless; zero gain and phase is a passthrough.
class IqImbalance final : public Impairment {
 public:
  IqImbalance(double gain_db, double phase_deg);

  [[nodiscard]] std::string_view name() const override {
    return "iq_imbalance";
  }
  void apply(std::span<dsp::Complex> x, ImpairState& state) const override;

  [[nodiscard]] double gain_db() const { return gain_db_; }
  [[nodiscard]] double phase_deg() const { return phase_deg_; }

 private:
  double gain_db_;
  double phase_deg_;
  float sin_term_;   ///< g*sin(phi)
  float cos_term_;   ///< g*cos(phi)
  bool enabled_;
};

/// LO leakage / ADC bias: a constant complex offset added to every sample
/// (the defect litex_m2sdr's dc_filter gateware notches out). Memoryless;
/// a zero offset is a passthrough.
class DcOffset final : public Impairment {
 public:
  explicit DcOffset(dsp::Complex offset);

  [[nodiscard]] std::string_view name() const override { return "dc_offset"; }
  void apply(std::span<dsp::Complex> x, ImpairState& state) const override;

  [[nodiscard]] dsp::Complex offset() const { return offset_; }

 private:
  dsp::Complex offset_;
  bool enabled_;
};

/// Carrier frequency offset with linear drift (crystal tolerance plus
/// temperature ramp — the make-or-break defect for MCU-class LoRa
/// receivers per Xhonneux et al.): sample n is rotated by
///   phi(n) = 2*pi*(cfo*n + drift*n^2/2),
/// cfo in cycles/sample, drift in cycles/sample^2, n relative to the
/// region start. Pure in the state's position; zero cfo and drift is a
/// passthrough.
class CfoDrift final : public Impairment {
 public:
  explicit CfoDrift(double cfo_cycles_per_sample,
                    double drift_cycles_per_sample2 = 0.0);

  [[nodiscard]] std::string_view name() const override { return "cfo_drift"; }
  void apply(std::span<dsp::Complex> x, ImpairState& state) const override;

  [[nodiscard]] double cfo() const { return cfo_; }
  [[nodiscard]] double drift() const { return drift_; }

 private:
  double cfo_;
  double drift_;
  bool enabled_;
};

/// LO phase noise as a Wiener (random-walk) process: each sample's phase
/// accumulates a fresh N(0, sigma^2) step drawn from the slot's RNG
/// stream. The walk is carried in ImpairState::phase, so chunked and
/// whole-region application are byte-identical. Zero sigma is a
/// passthrough that draws nothing.
class PhaseNoise final : public Impairment {
 public:
  explicit PhaseNoise(double sigma_rad_per_sample);

  [[nodiscard]] std::string_view name() const override {
    return "phase_noise";
  }
  void apply(std::span<dsp::Complex> x, ImpairState& state) const override;

  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double sigma_;
  bool enabled_;
};

/// PA compression as a Rapp soft limiter: magnitudes are squeezed through
///   |y| = |x| / (1 + (|x|/A)^(2p))^(1/(2p)),
/// phase preserved — the knee litex_m2sdr's crest-factor-reduction (cfr)
/// gateware exists to stay under. A is the saturation level relative to
/// the waveform's unit RMS, p the knee smoothness. clip_level <= 0 means
/// "no compression" and is a passthrough.
class PaClip final : public Impairment {
 public:
  explicit PaClip(double clip_level, double smoothness = 2.0);

  [[nodiscard]] std::string_view name() const override { return "pa_clip"; }
  void apply(std::span<dsp::Complex> x, ImpairState& state) const override;

  [[nodiscard]] double clip_level() const { return clip_level_; }
  [[nodiscard]] double smoothness() const { return smoothness_; }

 private:
  double clip_level_;
  double smoothness_;
  bool enabled_;
};

/// One slot of an ordered impairment chain (borrowed block + stage).
struct ChainSlot {
  const Impairment* impairment = nullptr;
  Stage stage = Stage::kTx;
};

/// An ordered chain. Slot k of a trial draws from RNG stream
/// (trial_seed, stream_base + k) — k is the slot's index in the *full*
/// chain regardless of stage, so batch and streaming engines agree.
using Chain = std::vector<ChainSlot>;

/// Apply every `stage` slot of `chain` in order to `x`, each with a fresh
/// state seeded Rng{trial_seed, stream_base + slot_index}. The batch
/// engine's inner loop; streaming blocks carry states across chunks
/// instead and reproduce this byte-for-byte.
void apply_stage(const Chain& chain, Stage stage, std::span<dsp::Complex> x,
                 std::uint64_t trial_seed, std::uint64_t stream_base);

}  // namespace tinysdr::impair
