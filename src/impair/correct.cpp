#include "impair/correct.hpp"

#include <cmath>
#include <numbers>

namespace tinysdr::impair {

dsp::Complex remove_dc(std::span<dsp::Complex> x) {
  if (x.empty()) return {0.0f, 0.0f};
  double re = 0.0;
  double im = 0.0;
  for (const auto& s : x) {
    re += static_cast<double>(s.real());
    im += static_cast<double>(s.imag());
  }
  const auto n = static_cast<double>(x.size());
  const dsp::Complex dc{static_cast<float>(re / n),
                        static_cast<float>(im / n)};
  for (auto& s : x) s -= dc;
  return dc;
}

double IqEstimate::gain_db() const {
  const double g = std::sqrt(c1 * c1 + c2 * c2);
  return g > 0.0 ? 20.0 * std::log10(g) : 0.0;
}

double IqEstimate::phase_deg() const {
  return std::atan2(c1, c2) * 180.0 / std::numbers::pi;
}

IqEstimate estimate_iq_imbalance(std::span<const dsp::Complex> x) {
  if (x.empty()) return {};
  double theta1 = 0.0;  // E[sgn(I)*Q]
  double theta2 = 0.0;  // E[|I|]
  double theta3 = 0.0;  // E[|Q|]
  for (const auto& s : x) {
    const double i = s.real();
    const double q = s.imag();
    theta1 += (i > 0.0 ? q : i < 0.0 ? -q : 0.0);
    theta2 += std::abs(i);
    theta3 += std::abs(q);
  }
  const auto n = static_cast<double>(x.size());
  theta1 /= n;
  theta2 /= n;
  theta3 /= n;
  if (theta2 <= 1e-12) return {};  // I rail dead: nothing to reference
  IqEstimate est;
  est.c1 = theta1 / theta2;
  const double c2sq = theta3 * theta3 - theta1 * theta1;
  est.c2 = c2sq > 0.0 ? std::sqrt(c2sq) / theta2 : 1.0;
  return est;
}

void correct_iq_imbalance(std::span<dsp::Complex> x, const IqEstimate& est) {
  if (!(est.c2 > 1e-6) || !std::isfinite(est.c1) || !std::isfinite(est.c2))
    return;
  const auto c1 = static_cast<float>(est.c1);
  const auto inv_c2 = static_cast<float>(1.0 / est.c2);
  for (auto& s : x)
    s = dsp::Complex{s.real(), (s.imag() - c1 * s.real()) * inv_c2};
}

IqEstimate correct_iq_imbalance(std::span<dsp::Complex> x) {
  IqEstimate est = estimate_iq_imbalance(x);
  correct_iq_imbalance(x, est);
  return est;
}

}  // namespace tinysdr::impair
