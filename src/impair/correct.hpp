// Calibration / correction blocks matching the impairment pipeline — the
// software twins of litex_m2sdr's dc_filter and iq_correction gateware.
//
// Two flavours:
//   - capture-based estimators (remove_dc, estimate/correct_iq_imbalance):
//     blind statistics over a whole demod capture, used by
//     phy::CalibratedRx on the batch RX path;
//   - the streaming DcNotch single-pole IIR, a flow::Block-shaped state
//     machine for continuous operation.
//
// CFO estimation/correction lives in dsp/cfo.hpp (it is a generic DSP
// primitive the demodulators may also want); phy::CalibratedRx wires all
// three together behind the opt-in RxCalibration config.
#pragma once

#include <span>

#include "dsp/types.hpp"

namespace tinysdr::impair {

/// Subtract the capture's mean from every sample (block DC estimator —
/// the batch equivalent of the notch). Returns the removed offset.
dsp::Complex remove_dc(std::span<dsp::Complex> x);

/// Blind IQ-imbalance estimate in the Moseley–Slump circularity form:
/// for a proper (circular) transmit signal distorted to
///   I' = I,  Q' = g*(sin(phi)*I + cos(phi)*Q),
/// the statistics E[sgn(I')Q'], E[|I'|], E[|Q'|] recover
///   c1 = g*sin(phi)  (I->Q crosstalk)  and  c2 = g*cos(phi) (Q gain),
/// so the correction Q = (Q' - c1*I')/c2 restores the clean signal.
struct IqEstimate {
  double c1 = 0.0;
  double c2 = 1.0;

  /// The imbalance parameters this estimate implies.
  [[nodiscard]] double gain_db() const;
  [[nodiscard]] double phase_deg() const;
};

[[nodiscard]] IqEstimate estimate_iq_imbalance(
    std::span<const dsp::Complex> x);

/// Apply the inverse transform Q = (Q' - c1*I')/c2 in place. Degenerate
/// estimates (c2 ~ 0, from an empty or rail-dead capture) are a no-op.
void correct_iq_imbalance(std::span<dsp::Complex> x, const IqEstimate& est);

/// Convenience: estimate then correct; returns the estimate used.
IqEstimate correct_iq_imbalance(std::span<dsp::Complex> x);

/// Streaming DC notch: the classic single-pole IIR high-pass
/// (litex_m2sdr dc_filter):  dc += alpha*(x - dc);  y = x - dc.
/// State carries across process() calls, so chunked and whole-stream
/// operation are byte-identical.
class DcNotch {
 public:
  explicit DcNotch(float alpha = 1.0f / 1024.0f) : alpha_(alpha) {}

  void process(std::span<dsp::Complex> x) {
    for (auto& s : x) {
      dc_ += alpha_ * (s - dc_);
      s -= dc_;
    }
  }

  [[nodiscard]] dsp::Complex dc() const { return dc_; }
  [[nodiscard]] float alpha() const { return alpha_; }

 private:
  float alpha_;
  dsp::Complex dc_{0.0f, 0.0f};
};

}  // namespace tinysdr::impair
