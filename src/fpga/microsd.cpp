#include "fpga/microsd.hpp"

#include <stdexcept>

namespace tinysdr::fpga {

std::vector<std::uint8_t> pack_iq26(std::span<const radio::IqWord> words) {
  std::vector<std::uint8_t> out;
  out.reserve((words.size() * kBitsPerSample + 7) / 8);
  std::uint32_t bitbuf = 0;
  int bits = 0;
  auto push_field = [&](std::uint32_t value, int width) {
    for (int b = width - 1; b >= 0; --b) {
      bitbuf = (bitbuf << 1) | ((value >> b) & 1u);
      if (++bits == 8) {
        out.push_back(static_cast<std::uint8_t>(bitbuf & 0xFF));
        bitbuf = 0;
        bits = 0;
      }
    }
  };
  for (const auto& w : words) {
    push_field(radio::encode_sample13(w.i), 13);
    push_field(radio::encode_sample13(w.q), 13);
  }
  if (bits > 0) {
    bitbuf <<= (8 - bits);
    out.push_back(static_cast<std::uint8_t>(bitbuf & 0xFF));
  }
  return out;
}

std::vector<radio::IqWord> unpack_iq26(std::span<const std::uint8_t> bytes,
                                       std::size_t count) {
  if (bytes.size() * 8 < count * kBitsPerSample)
    throw std::invalid_argument("unpack_iq26: buffer too small");
  std::vector<radio::IqWord> out;
  out.reserve(count);
  std::size_t bitpos = 0;
  auto read_field = [&](int width) {
    std::uint32_t v = 0;
    for (int b = 0; b < width; ++b) {
      std::size_t byte = bitpos / 8;
      std::size_t bit = 7 - (bitpos % 8);
      v = (v << 1) | ((bytes[byte] >> bit) & 1u);
      ++bitpos;
    }
    return v;
  };
  for (std::size_t i = 0; i < count; ++i) {
    radio::IqWord w;
    w.i = radio::decode_sample13(static_cast<std::uint16_t>(read_field(13)));
    w.q = radio::decode_sample13(static_cast<std::uint16_t>(read_field(13)));
    out.push_back(w);
  }
  return out;
}

void MicroSdCard::write_block(std::span<const std::uint8_t> block) {
  if (block.size() > spec_.block_bytes)
    throw std::invalid_argument("MicroSdCard: block too large");
  if (data_.size() + spec_.block_bytes > spec_.capacity_bytes)
    throw std::length_error("MicroSdCard: card full");
  data_.insert(data_.end(), block.begin(), block.end());
  data_.resize(((data_.size() + spec_.block_bytes - 1) / spec_.block_bytes) *
               spec_.block_bytes,
               0x00);
}

std::vector<std::uint8_t> MicroSdCard::read(std::size_t offset,
                                            std::size_t length) const {
  if (offset + length > data_.size())
    throw std::out_of_range("MicroSdCard::read past end of written data");
  return {data_.begin() + static_cast<std::ptrdiff_t>(offset),
          data_.begin() + static_cast<std::ptrdiff_t>(offset + length)};
}

SampleRecorder::SampleRecorder(MicroSdCard& card, Hertz sample_rate,
                               std::size_t fifo_bytes)
    : card_(&card), sample_rate_(sample_rate), fifo_(fifo_bytes) {}

bool SampleRecorder::realtime_feasible() const {
  return card_->spec().write_bps >=
         recording_rate_bps(sample_rate_.value());
}

double SampleRecorder::stall_margin() const {
  double stall_samples =
      card_->spec().max_block_latency.value() * sample_rate_.value();
  return static_cast<double>(fifo_.capacity()) / stall_samples;
}

std::size_t SampleRecorder::record(std::span<const radio::IqWord> words) {
  std::size_t dropped = 0;
  for (const auto& w : words) {
    if (fifo_.full()) {
      ++dropped;
      fifo_.push(w);  // counts the overflow internally too
      continue;
    }
    fifo_.push(w);
  }
  // Drain the FIFO into card blocks whenever a full block's worth of
  // samples is available. 512 B * 8 / 26 bits = 157 samples per block.
  const std::size_t samples_per_block =
      card_->spec().block_bytes * 8 / kBitsPerSample;
  while (fifo_.size() >= samples_per_block) {
    staging_.clear();
    for (std::size_t i = 0; i < samples_per_block; ++i)
      staging_.push_back(fifo_.pop());
    auto packed = pack_iq26(staging_);
    card_->write_block(packed);
    recorded_ += samples_per_block;
  }
  return dropped;
}

void SampleRecorder::flush() {
  if (fifo_.empty()) return;
  staging_.clear();
  while (!fifo_.empty()) staging_.push_back(fifo_.pop());
  auto packed = pack_iq26(staging_);
  card_->write_block(packed);
  recorded_ += staging_.size();
}

}  // namespace tinysdr::fpga
