// FPGA resource accounting for the Lattice LFE5U-25F.
//
// The paper reports LUT utilization for every PHY configuration (Table 6:
// LoRa TX 976 LUTs flat across SF, RX 2656-2818 growing with the FFT size;
// §4.2/§5.2: BLE beacon generation 3%; §6: dual-config concurrent demod
// 17%). We reproduce those numbers with a block-level inventory: each
// hardware block the paper's Fig. 6 diagrams name carries a LUT cost, and a
// design is a composition of blocks. Costs are calibrated so the composed
// totals match Table 6 — real numbers would come from Lattice synthesis,
// which we cannot run here (see DESIGN.md).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace tinysdr::fpga {

/// LFE5U-25F device limits.
struct DeviceSpec {
  std::string name = "LFE5U-25F";
  std::uint32_t luts = 24000;
  std::uint32_t bram_bytes = 126 * 1024;  ///< embedded SRAM usable as FIFO
  std::uint32_t plls = 2;
  std::uint32_t bitstream_bytes = 579 * 1024;
};

/// Named hardware blocks from the paper's block diagrams.
enum class Block {
  kIqSerializer,        // LVDS TX framer (Fig. 6a)
  kIqDeserializer,      // LVDS RX framer (Fig. 6b)
  kFir14,               // 14-tap FIR low-pass
  kSampleBufferCtrl,    // FIFO/memory controller
  kChirpGenerator,      // squared phase accumulator + sin/cos LUTs
  kComplexMultiplier,   // dechirp multiply
  kSymbolDetector,      // FFT peak scan
  kLoraPacketGen,       // LoRa packet generator / framer
  kBlePacketGen,        // BLE PDU + CRC24 + whitening
  kGaussianFilter,      // GFSK pulse shaping
  kPhaseIntegrator,     // frequency -> phase for GFSK
  kSinCosLut,           // standalone phase-to-amplitude ROM
  kSpiController,       // shared SPI block (microSD / flash)
};

/// LUT cost of a single block. FFT cost is separate (depends on SF).
[[nodiscard]] std::uint32_t block_luts(Block block);

/// LUT cost of the 2^sf-point FFT core (Lattice IP in the paper).
/// @throws std::invalid_argument for sf outside [6, 12].
[[nodiscard]] std::uint32_t fft_luts(int sf);

/// A composed FPGA design: a set of blocks (+ FFTs) with utilization math.
class Design {
 public:
  explicit Design(std::string name) : name_(std::move(name)) {}

  Design& add(Block block, int count = 1);
  Design& add_fft(int sf, int count = 1);
  Design& add_bram_bytes(std::uint32_t bytes);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t total_luts() const;
  [[nodiscard]] std::uint32_t bram_bytes() const { return bram_bytes_; }

  [[nodiscard]] double utilization(const DeviceSpec& device) const {
    return static_cast<double>(total_luts()) /
           static_cast<double>(device.luts);
  }
  [[nodiscard]] bool fits(const DeviceSpec& device) const {
    return total_luts() <= device.luts && bram_bytes_ <= device.bram_bytes;
  }

  /// Human-readable breakdown (block name -> LUTs) for reports.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint32_t>> breakdown()
      const;

 private:
  std::string name_;
  std::map<Block, int> blocks_;
  std::map<int, int> ffts_;  // sf -> count
  std::uint32_t bram_bytes_ = 0;
};

/// Factory: the LoRa modulator design (Fig. 6a). LUT count is SF-independent
/// (Table 6: 976 for all SF).
[[nodiscard]] Design lora_tx_design();

/// Factory: the LoRa demodulator design (Fig. 6b) for a given SF.
[[nodiscard]] Design lora_rx_design(int sf);

/// Factory: BLE beacon baseband generator (§4.2).
[[nodiscard]] Design ble_tx_design();

/// Factory: concurrent demodulator with one dechirp+FFT branch per config,
/// sharing the front-end deserializer/FIR/buffer/chirp blocks (§6).
[[nodiscard]] Design concurrent_rx_design(const std::vector<int>& sfs);

}  // namespace tinysdr::fpga
