#include "fpga/bitstream.hpp"

#include <algorithm>

#include "common/crc.hpp"

namespace tinysdr::fpga {

FirmwareImage generate_bitstream(const Design& design,
                                 const DeviceSpec& device, Rng& rng,
                                 BitstreamGenConfig config) {
  FirmwareImage image;
  image.name = design.name();
  image.data.assign(config.total_bytes, 0x00);

  // Infrastructure region: dense, high-entropy configuration at the start
  // (device preamble, I/O ring, clock tree).
  std::size_t infra = std::min(config.infrastructure_bytes, config.total_bytes);
  for (std::size_t i = 0; i < infra; ++i) image.data[i] = rng.next_byte();

  // Logic frames: the touched fraction of the fabric scales with LUT
  // utilization times the routing spread. Spread the dense frames across
  // the remaining area in frame-sized runs (real bitstreams interleave
  // used and unused frames, which is what block-compression sees).
  double density =
      std::min(1.0, design.utilization(device) * config.routing_spread);
  std::size_t body = config.total_bytes - infra;
  constexpr std::size_t kFrameBytes = 256;
  std::size_t frames = body / kFrameBytes;
  auto dense_frames = static_cast<std::size_t>(density * static_cast<double>(frames));

  if (frames > 0 && dense_frames > 0) {
    // Distribute dense frames evenly (stride pattern).
    double stride = static_cast<double>(frames) / static_cast<double>(dense_frames);
    for (std::size_t k = 0; k < dense_frames; ++k) {
      auto frame = static_cast<std::size_t>(static_cast<double>(k) * stride);
      std::size_t start = infra + frame * kFrameBytes;
      for (std::size_t i = 0; i < kFrameBytes && start + i < config.total_bytes;
           ++i)
        image.data[start + i] = rng.next_byte();
    }
  }

  image.crc32 = crc32_ieee(image.data);
  return image;
}

FirmwareImage generate_mcu_program(const std::string& name, std::size_t bytes,
                                   Rng& rng) {
  FirmwareImage image;
  image.name = name;
  image.data.reserve(bytes);

  // Thumb-2-like structure: short runs of novel instructions interleaved
  // with repeated idioms (prologues, literal pools, zero-initialised data).
  // The mix is calibrated so miniLZO reaches the paper's ~31% ratio
  // (78 kB -> 24 kB).
  std::vector<std::uint8_t> idiom(16);
  for (auto& b : idiom) b = rng.next_byte();
  while (image.data.size() < bytes) {
    std::uint32_t pick = rng.next_below(100);
    if (pick < 22) {
      // Novel code: random halfwords.
      std::size_t run = 8 + rng.next_below(24);
      for (std::size_t i = 0; i < run && image.data.size() < bytes; ++i)
        image.data.push_back(rng.next_byte());
    } else if (pick < 72) {
      // Repeated idiom (function prologue / common sequence).
      for (std::size_t i = 0; i < idiom.size() && image.data.size() < bytes;
           ++i)
        image.data.push_back(idiom[i]);
    } else {
      // Zero-filled data / alignment padding.
      std::size_t run = 16 + rng.next_below(48);
      for (std::size_t i = 0; i < run && image.data.size() < bytes; ++i)
        image.data.push_back(0x00);
    }
  }
  image.data.resize(bytes);
  image.crc32 = crc32_ieee(image.data);
  return image;
}

}  // namespace tinysdr::fpga
