// FPGA (re)programming model.
//
// The SRAM-based LFE5U boots from external flash over quad-SPI at 62 MHz;
// the paper measures 22 ms to load the 579 kB bitstream (§3.4), which is
// the dominant term in the 22 ms sleep-to-radio wakeup (Table 4).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace tinysdr::fpga {

struct ProgrammingModel {
  Hertz spi_clock = Hertz::from_megahertz(62.0);
  int spi_lanes = 4;  ///< quad SPI
  /// Fixed controller overhead (mode entry, preamble, CRC check).
  Seconds fixed_overhead = Seconds::from_milliseconds(3.3);

  /// Time to load a bitstream of `bytes` from flash.
  [[nodiscard]] Seconds load_time(std::size_t bytes) const {
    double bits = static_cast<double>(bytes) * 8.0;
    double rate = spi_clock.value() * static_cast<double>(spi_lanes);
    return Seconds{bits / rate} + fixed_overhead;
  }

  /// Effective link rate in bits per second.
  [[nodiscard]] double link_bps() const {
    return spi_clock.value() * static_cast<double>(spi_lanes);
  }
};

}  // namespace tinysdr::fpga
