// FPGA bitstream model and synthetic generator.
//
// Real LFE5U-25F bitstreams are 579 kB (paper §3.1.2). Their compressed
// size depends on how much of the fabric a design configures: the paper's
// LoRa image compresses to 99 kB and the BLE image to 40 kB with miniLZO.
// We cannot run Lattice synthesis, so we generate synthetic bitstreams with
// a calibrated structure: a fixed "infrastructure" region (I/O rings,
// clocking — dense regardless of design) plus configuration frames whose
// density scales with LUT utilization (routing drag makes the touched
// region larger than raw utilization; calibration constant below), the rest
// being erased (zero) frames that compress away.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fpga/resources.hpp"

namespace tinysdr::fpga {

/// A firmware image (FPGA bitstream or MCU program) with identity metadata.
struct FirmwareImage {
  std::string name;
  std::vector<std::uint8_t> data;
  std::uint32_t crc32 = 0;  ///< fingerprint, filled by the generators

  [[nodiscard]] std::size_t size() const { return data.size(); }
};

struct BitstreamGenConfig {
  std::size_t total_bytes = 579 * 1024;
  /// Bytes of always-dense infrastructure configuration.
  std::size_t infrastructure_bytes = 18 * 1024;
  /// Multiplier from LUT utilization to configured-frame fraction
  /// (routing drag). Calibrated so LoRa (11%) -> ~99 kB, BLE (3%) -> ~40 kB
  /// after LZO compression.
  double routing_spread = 1.27;
};

/// Generate a synthetic bitstream for a design with the given LUT
/// utilization fraction.
[[nodiscard]] FirmwareImage generate_bitstream(const Design& design,
                                               const DeviceSpec& device,
                                               Rng& rng,
                                               BitstreamGenConfig config = {});

/// Generate a synthetic MCU program image. Firmware code is moderately
/// LZO-compressible (paper: 78 kB -> 24 kB); we mix literal (random) bytes
/// with repeated instruction-like patterns at a calibrated ratio.
[[nodiscard]] FirmwareImage generate_mcu_program(const std::string& name,
                                                 std::size_t bytes, Rng& rng);

}  // namespace tinysdr::fpga
