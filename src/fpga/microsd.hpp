// microSD storage interface and real-time I/Q sample recorder
// (paper §3.2.2).
//
// The FPGA reuses its SPI block for the microSD card: SPI mode is a 1-bit
// serial interface but "supports the 104 Mbps data rate which we need to
// write data in real time". That number is exactly the raw sample payload:
// 4 Msps x 26 bits (13-bit I + 13-bit Q, packed without the LVDS framing
// overhead) = 104 Mbps. The recorder models that packing, the card's
// block-oriented writes, and the FIFO between radio and card that absorbs
// write-latency jitter.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "fpga/fifo.hpp"
#include "radio/lvds.hpp"

namespace tinysdr::fpga {

/// Pack I/Q words to the 26-bit recording format (13-bit I then 13-bit Q,
/// MSB first, bit-contiguous across samples). Control bits are dropped —
/// storage keeps samples, not framing.
[[nodiscard]] std::vector<std::uint8_t> pack_iq26(
    std::span<const radio::IqWord> words);

/// Unpack the 26-bit format back to I/Q words. `count` samples are read;
/// @throws std::invalid_argument if the buffer is too small.
[[nodiscard]] std::vector<radio::IqWord> unpack_iq26(
    std::span<const std::uint8_t> bytes, std::size_t count);

/// Bits per stored sample and the required real-time write rate.
inline constexpr std::size_t kBitsPerSample = 26;
[[nodiscard]] constexpr double recording_rate_bps(double samples_per_second) {
  return samples_per_second * static_cast<double>(kBitsPerSample);
}

/// microSD card in SPI mode.
struct MicroSdSpec {
  std::size_t capacity_bytes = 8ull * 1024 * 1024 * 1024 / 4;  // 2 GB card
  std::size_t block_bytes = 512;
  /// SPI-mode sustained throughput (paper: 104 Mbps).
  double write_bps = 104e6;
  /// Worst-case per-block write latency (card internal programming).
  Seconds max_block_latency = Seconds::from_microseconds(250.0);
};

class MicroSdCard {
 public:
  explicit MicroSdCard(MicroSdSpec spec = {}) : spec_(spec) {}

  [[nodiscard]] const MicroSdSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t bytes_written() const { return data_.size(); }

  /// Append one block; partial blocks are zero-padded (as FAT writes are).
  /// @throws std::length_error when the card is full.
  void write_block(std::span<const std::uint8_t> block);

  [[nodiscard]] std::vector<std::uint8_t> read(std::size_t offset,
                                               std::size_t length) const;

  /// Seconds of 4 MHz I/Q this card can hold.
  [[nodiscard]] double capacity_seconds(double samples_per_second) const {
    double bytes_per_second =
        recording_rate_bps(samples_per_second) / 8.0;
    return static_cast<double>(spec_.capacity_bytes) / bytes_per_second;
  }

 private:
  MicroSdSpec spec_;
  std::vector<std::uint8_t> data_;
};

/// Streams I/Q words through a FIFO to the card, checking the real-time
/// budget: the card's sustained rate must exceed the recording rate, and
/// the FIFO must ride out the worst-case block latency.
class SampleRecorder {
 public:
  SampleRecorder(MicroSdCard& card, Hertz sample_rate,
                 std::size_t fifo_bytes = 126 * 1024);

  /// True if sustained card throughput covers the stream.
  [[nodiscard]] bool realtime_feasible() const;

  /// FIFO headroom (in samples) vs the samples arriving during one
  /// worst-case block latency; > 1 means the FIFO absorbs the stall.
  [[nodiscard]] double stall_margin() const;

  /// Record a block of words (buffered through the FIFO, flushed in card
  /// blocks). Returns samples dropped on FIFO overflow (0 in a correctly
  /// sized design).
  std::size_t record(std::span<const radio::IqWord> words);

  /// Flush any buffered samples to the card (pads the final block).
  void flush();

  [[nodiscard]] std::size_t samples_recorded() const { return recorded_; }

 private:
  MicroSdCard* card_;
  Hertz sample_rate_;
  SampleFifo fifo_;
  std::vector<radio::IqWord> staging_;
  std::size_t recorded_ = 0;
};

}  // namespace tinysdr::fpga
