#include "fpga/resources.hpp"

namespace tinysdr::fpga {

std::uint32_t block_luts(Block block) {
  switch (block) {
    case Block::kIqSerializer:
      return 180;
    case Block::kIqDeserializer:
      return 220;
    case Block::kFir14:
      return 520;
    case Block::kSampleBufferCtrl:
      return 140;
    case Block::kChirpGenerator:
      return 566;
    case Block::kComplexMultiplier:
      return 180;
    case Block::kSymbolDetector:
      return 300;
    case Block::kLoraPacketGen:
      return 230;
    case Block::kBlePacketGen:
      return 150;
    case Block::kGaussianFilter:
      return 200;
    case Block::kPhaseIntegrator:
      return 90;
    case Block::kSinCosLut:
      return 100;
    case Block::kSpiController:
      return 160;
  }
  throw std::invalid_argument("block_luts: unknown block");
}

std::uint32_t fft_luts(int sf) {
  // Calibrated so lora_rx_design(sf) totals equal Table 6 exactly.
  switch (sf) {
    case 6:
      return 730;
    case 7:
      return 744;
    case 8:
      return 774;
    case 9:
      return 816;
    case 10:
      return 860;
    case 11:
      return 868;
    case 12:
      return 892;
    default:
      throw std::invalid_argument("fft_luts: sf must be in [6, 12]");
  }
}

Design& Design::add(Block block, int count) {
  if (count <= 0) throw std::invalid_argument("Design::add: count <= 0");
  blocks_[block] += count;
  return *this;
}

Design& Design::add_fft(int sf, int count) {
  if (count <= 0) throw std::invalid_argument("Design::add_fft: count <= 0");
  (void)fft_luts(sf);  // validate sf
  ffts_[sf] += count;
  return *this;
}

Design& Design::add_bram_bytes(std::uint32_t bytes) {
  bram_bytes_ += bytes;
  return *this;
}

std::uint32_t Design::total_luts() const {
  std::uint32_t total = 0;
  for (const auto& [block, count] : blocks_)
    total += block_luts(block) * static_cast<std::uint32_t>(count);
  for (const auto& [sf, count] : ffts_)
    total += fft_luts(sf) * static_cast<std::uint32_t>(count);
  return total;
}

namespace {
std::string block_name(Block block) {
  switch (block) {
    case Block::kIqSerializer:
      return "I/Q serializer";
    case Block::kIqDeserializer:
      return "I/Q deserializer";
    case Block::kFir14:
      return "14-tap FIR";
    case Block::kSampleBufferCtrl:
      return "sample buffer ctrl";
    case Block::kChirpGenerator:
      return "chirp generator";
    case Block::kComplexMultiplier:
      return "complex multiplier";
    case Block::kSymbolDetector:
      return "symbol detector";
    case Block::kLoraPacketGen:
      return "LoRa packet gen";
    case Block::kBlePacketGen:
      return "BLE packet gen";
    case Block::kGaussianFilter:
      return "Gaussian filter";
    case Block::kPhaseIntegrator:
      return "phase integrator";
    case Block::kSinCosLut:
      return "sin/cos LUT";
    case Block::kSpiController:
      return "SPI controller";
  }
  return "?";
}
}  // namespace

std::vector<std::pair<std::string, std::uint32_t>> Design::breakdown() const {
  std::vector<std::pair<std::string, std::uint32_t>> out;
  for (const auto& [block, count] : blocks_)
    out.emplace_back(block_name(block),
                     block_luts(block) * static_cast<std::uint32_t>(count));
  for (const auto& [sf, count] : ffts_)
    out.emplace_back("FFT 2^" + std::to_string(sf),
                     fft_luts(sf) * static_cast<std::uint32_t>(count));
  return out;
}

Design lora_tx_design() {
  Design d{"lora_tx"};
  d.add(Block::kLoraPacketGen)
      .add(Block::kChirpGenerator)
      .add(Block::kIqSerializer);
  return d;
}

Design lora_rx_design(int sf) {
  Design d{"lora_rx_sf" + std::to_string(sf)};
  d.add(Block::kIqDeserializer)
      .add(Block::kFir14)
      .add(Block::kSampleBufferCtrl)
      .add(Block::kChirpGenerator)
      .add(Block::kComplexMultiplier)
      .add(Block::kSymbolDetector)
      .add_fft(sf)
      .add_bram_bytes((std::uint32_t{1} << sf) * 4 * 2);  // symbol buffer
  return d;
}

Design ble_tx_design() {
  Design d{"ble_tx"};
  d.add(Block::kBlePacketGen)
      .add(Block::kGaussianFilter)
      .add(Block::kPhaseIntegrator)
      .add(Block::kSinCosLut)
      .add(Block::kIqSerializer);
  return d;
}

Design concurrent_rx_design(const std::vector<int>& sfs) {
  Design d{"concurrent_rx"};
  d.add(Block::kIqDeserializer)
      .add(Block::kFir14)
      .add(Block::kSampleBufferCtrl)
      .add(Block::kChirpGenerator);
  for (int sf : sfs) {
    d.add(Block::kComplexMultiplier)
        .add(Block::kSymbolDetector)
        .add_fft(sf)
        .add_bram_bytes((std::uint32_t{1} << sf) * 4 * 2);
  }
  return d;
}

}  // namespace tinysdr::fpga
