// Sample FIFO backed by the FPGA's embedded SRAM (paper §3.2.2).
//
// The real design buffers 13-bit I/Q pairs in up to 126 kB of block RAM
// between the LVDS deserializer and the signal-processing chain. We model
// the capacity limit and overflow/underflow behaviour; timing is not a
// constraint ("embedded memory can run at rates significantly greater than
// 4 MHz").
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>

#include "radio/lvds.hpp"

namespace tinysdr::fpga {

class SampleFifo {
 public:
  /// Each buffered I/Q pair occupies two 16-bit words in BRAM.
  static constexpr std::size_t kBytesPerEntry = 4;

  explicit SampleFifo(std::size_t capacity_bytes = 126 * 1024)
      : capacity_entries_(capacity_bytes / kBytesPerEntry) {
    if (capacity_entries_ == 0)
      throw std::invalid_argument("SampleFifo: zero capacity");
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] bool full() const { return entries_.size() >= capacity_entries_; }

  /// Number of writes dropped because the FIFO was full.
  [[nodiscard]] std::size_t overflow_count() const { return overflows_; }

  /// Push one I/Q word; drops (and counts) on overflow, like the hardware.
  void push(const radio::IqWord& word) {
    if (full()) {
      ++overflows_;
      return;
    }
    entries_.push_back(word);
  }

  /// @throws std::underflow_error when empty.
  [[nodiscard]] radio::IqWord pop() {
    if (entries_.empty()) throw std::underflow_error("SampleFifo: empty");
    radio::IqWord w = entries_.front();
    entries_.pop_front();
    return w;
  }

  void clear() { entries_.clear(); }

  /// Seconds of signal this FIFO can hold at a given sample rate.
  [[nodiscard]] double buffer_seconds(double sample_rate_hz) const {
    return static_cast<double>(capacity_entries_) / sample_rate_hz;
  }

 private:
  std::size_t capacity_entries_;
  std::deque<radio::IqWord> entries_;
  std::size_t overflows_ = 0;
};

}  // namespace tinysdr::fpga
