// CRC implementations used across the platform:
//  - CRC-16/CCITT for LoRa payloads and the OTA update protocol
//  - CRC-24 (Bluetooth) as an LFSR, bit-exact to the BT core spec
#pragma once

#include <cstdint>
#include <span>

namespace tinysdr {

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) — used by LoRa payload CRC
/// and by our OTA data packets.
[[nodiscard]] constexpr std::uint16_t crc16_ccitt(
    std::span<const std::uint8_t> data, std::uint16_t init = 0xFFFF) {
  std::uint16_t crc = init;
  for (std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

/// Bluetooth CRC-24.
///
/// Polynomial x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1, LFSR initialised
/// to 0x555555 for advertising packets; PDU bytes enter LSB first
/// (BT Core Spec v5.1, Vol 6 Part B §3.1.1).
class BleCrc24 {
 public:
  explicit constexpr BleCrc24(std::uint32_t init = 0x555555)
      : state_(init & 0xFFFFFF) {}

  constexpr void feed_bit(bool bit) {
    // MSB of the 24-bit register is position 23.
    bool msb = (state_ >> 23) & 1u;
    bool fb = msb != bit;
    state_ = (state_ << 1) & 0xFFFFFF;
    if (fb) {
      // Taps per the polynomial above (excluding x^24 which is the feedback).
      state_ ^= 0x00065B;  // bits 10,9,6,4,3,1,0
    }
  }

  constexpr void feed_byte_lsb_first(std::uint8_t byte) {
    for (int bit = 0; bit < 8; ++bit) feed_bit((byte >> bit) & 1u);
  }

  constexpr void feed(std::span<const std::uint8_t> data) {
    for (std::uint8_t b : data) feed_byte_lsb_first(b);
  }

  /// Final CRC register value (24 bits).
  [[nodiscard]] constexpr std::uint32_t value() const { return state_; }

  /// The three CRC bytes as transmitted over the air (MSB of the register
  /// first, each bit sent as-is).
  [[nodiscard]] constexpr std::uint32_t transmitted() const { return state_; }

 private:
  std::uint32_t state_;
};

/// Convenience: CRC-24 over a complete PDU.
[[nodiscard]] constexpr std::uint32_t ble_crc24(
    std::span<const std::uint8_t> pdu, std::uint32_t init = 0x555555) {
  BleCrc24 crc{init};
  crc.feed(pdu);
  return crc.value();
}

/// CRC-32 (IEEE 802.3, reflected) — used to fingerprint firmware images in
/// the OTA flash store.
[[nodiscard]] constexpr std::uint32_t crc32_ieee(
    std::span<const std::uint8_t> data, std::uint32_t init = 0xFFFFFFFF) {
  std::uint32_t crc = init;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
  }
  return ~crc;
}

}  // namespace tinysdr
