// Strong unit types used across the tinysdr simulation.
//
// The paper reasons in dBm (RF power), milliwatts (DC power), hertz
// (bandwidth / sample rate), and seconds (timings from 11 us to minutes).
// Mixing those up silently is the classic SDR bug, so each quantity gets a
// small value type with explicit conversions only.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace tinysdr {

/// RF power expressed in dBm (decibels relative to 1 mW).
class Dbm {
 public:
  constexpr Dbm() = default;
  constexpr explicit Dbm(double value) : value_(value) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  /// Linear power in milliwatts.
  [[nodiscard]] double milliwatts() const {
    return std::pow(10.0, value_ / 10.0);
  }
  /// Linear power in watts.
  [[nodiscard]] double watts() const { return milliwatts() * 1e-3; }

  [[nodiscard]] static Dbm from_milliwatts(double mw) {
    if (mw <= 0.0) throw std::domain_error("Dbm::from_milliwatts: mw <= 0");
    return Dbm{10.0 * std::log10(mw)};
  }

  constexpr auto operator<=>(const Dbm&) const = default;

  /// dB offsets add directly to a dBm level.
  constexpr Dbm operator+(double db) const { return Dbm{value_ + db}; }
  constexpr Dbm operator-(double db) const { return Dbm{value_ - db}; }
  /// Difference of two absolute levels is a gain/loss in dB.
  constexpr double operator-(Dbm other) const { return value_ - other.value_; }

 private:
  double value_ = 0.0;
};

/// DC power draw in milliwatts.
class Milliwatts {
 public:
  constexpr Milliwatts() = default;
  constexpr explicit Milliwatts(double value) : value_(value) {}

  [[nodiscard]] constexpr double value() const { return value_; }
  [[nodiscard]] constexpr double microwatts() const { return value_ * 1e3; }
  [[nodiscard]] constexpr double watts() const { return value_ * 1e-3; }

  [[nodiscard]] static constexpr Milliwatts from_microwatts(double uw) {
    return Milliwatts{uw * 1e-3};
  }
  /// P = V * I with I in milliamps gives milliwatts directly.
  [[nodiscard]] static constexpr Milliwatts from_volts_milliamps(double volts,
                                                                 double ma) {
    return Milliwatts{volts * ma};
  }

  constexpr auto operator<=>(const Milliwatts&) const = default;

  constexpr Milliwatts operator+(Milliwatts o) const {
    return Milliwatts{value_ + o.value_};
  }
  constexpr Milliwatts operator-(Milliwatts o) const {
    return Milliwatts{value_ - o.value_};
  }
  constexpr Milliwatts& operator+=(Milliwatts o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Milliwatts operator*(double k) const {
    return Milliwatts{value_ * k};
  }

 private:
  double value_ = 0.0;
};

/// Frequency or bandwidth in hertz.
class Hertz {
 public:
  constexpr Hertz() = default;
  constexpr explicit Hertz(double value) : value_(value) {}

  [[nodiscard]] constexpr double value() const { return value_; }
  [[nodiscard]] constexpr double kilohertz() const { return value_ * 1e-3; }
  [[nodiscard]] constexpr double megahertz() const { return value_ * 1e-6; }

  [[nodiscard]] static constexpr Hertz from_kilohertz(double khz) {
    return Hertz{khz * 1e3};
  }
  [[nodiscard]] static constexpr Hertz from_megahertz(double mhz) {
    return Hertz{mhz * 1e6};
  }

  constexpr auto operator<=>(const Hertz&) const = default;

  constexpr Hertz operator+(Hertz o) const { return Hertz{value_ + o.value_}; }
  constexpr Hertz operator-(Hertz o) const { return Hertz{value_ - o.value_}; }
  constexpr Hertz operator*(double k) const { return Hertz{value_ * k}; }
  constexpr double operator/(Hertz o) const { return value_ / o.value_; }

 private:
  double value_ = 0.0;
};

/// Duration in seconds (double precision covers 11 us .. minutes fine).
class Seconds {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double value) : value_(value) {}

  [[nodiscard]] constexpr double value() const { return value_; }
  [[nodiscard]] constexpr double milliseconds() const { return value_ * 1e3; }
  [[nodiscard]] constexpr double microseconds() const { return value_ * 1e6; }

  [[nodiscard]] static constexpr Seconds from_milliseconds(double ms) {
    return Seconds{ms * 1e-3};
  }
  [[nodiscard]] static constexpr Seconds from_microseconds(double us) {
    return Seconds{us * 1e-6};
  }

  constexpr auto operator<=>(const Seconds&) const = default;

  constexpr Seconds operator+(Seconds o) const {
    return Seconds{value_ + o.value_};
  }
  constexpr Seconds operator-(Seconds o) const {
    return Seconds{value_ - o.value_};
  }
  constexpr Seconds& operator+=(Seconds o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Seconds operator*(double k) const { return Seconds{value_ * k}; }
  constexpr double operator/(Seconds o) const { return value_ / o.value_; }

 private:
  double value_ = 0.0;
};

/// Energy in millijoules; the natural product of Milliwatts * Seconds.
class Millijoules {
 public:
  constexpr Millijoules() = default;
  constexpr explicit Millijoules(double value) : value_(value) {}

  [[nodiscard]] constexpr double value() const { return value_; }
  [[nodiscard]] constexpr double joules() const { return value_ * 1e-3; }

  constexpr auto operator<=>(const Millijoules&) const = default;

  constexpr Millijoules operator+(Millijoules o) const {
    return Millijoules{value_ + o.value_};
  }
  constexpr Millijoules& operator+=(Millijoules o) {
    value_ += o.value_;
    return *this;
  }

 private:
  double value_ = 0.0;
};

constexpr Millijoules operator*(Milliwatts p, Seconds t) {
  return Millijoules{p.value() * t.value()};
}
constexpr Millijoules operator*(Seconds t, Milliwatts p) { return p * t; }

/// Battery capacity helper: a LiPo cell rated in mAh at a nominal voltage.
class BatteryCapacity {
 public:
  constexpr BatteryCapacity(double mah, double volts)
      : mah_(mah), volts_(volts) {}

  [[nodiscard]] constexpr double milliamp_hours() const { return mah_; }
  [[nodiscard]] constexpr double volts() const { return volts_; }
  [[nodiscard]] constexpr Millijoules energy() const {
    // mAh * V = mWh; * 3600 = mJ.
    return Millijoules{mah_ * volts_ * 3600.0};
  }

  /// Lifetime at a constant average draw.
  [[nodiscard]] Seconds lifetime_at(Milliwatts draw) const {
    if (draw.value() <= 0.0)
      throw std::domain_error("lifetime_at: non-positive draw");
    return Seconds{energy().value() / draw.value()};
  }

 private:
  double mah_;
  double volts_;
};

inline std::string to_string(Dbm v) { return std::to_string(v.value()) + " dBm"; }
inline std::string to_string(Milliwatts v) {
  return std::to_string(v.value()) + " mW";
}
inline std::string to_string(Hertz v) { return std::to_string(v.value()) + " Hz"; }
inline std::string to_string(Seconds v) { return std::to_string(v.value()) + " s"; }

}  // namespace tinysdr
