// Bit-level readers/writers used by the LVDS framer, LoRa encoding chain and
// BLE packet builder. Both MSB-first and LSB-first orders appear in the
// platform (LVDS words are MSB-first, BLE goes over the air LSB-first).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace tinysdr {

/// Append-only bit vector with explicit bit order per push.
class BitWriter {
 public:
  void push_bit(bool bit) { bits_.push_back(bit); }

  void push_bits_msb_first(std::uint64_t value, int count) {
    if (count < 0 || count > 64)
      throw std::invalid_argument("push_bits_msb_first: bad count");
    for (int i = count - 1; i >= 0; --i) bits_.push_back((value >> i) & 1u);
  }

  void push_bits_lsb_first(std::uint64_t value, int count) {
    if (count < 0 || count > 64)
      throw std::invalid_argument("push_bits_lsb_first: bad count");
    for (int i = 0; i < count; ++i) bits_.push_back((value >> i) & 1u);
  }

  void push_byte_lsb_first(std::uint8_t byte) {
    push_bits_lsb_first(byte, 8);
  }

  [[nodiscard]] const std::vector<bool>& bits() const { return bits_; }
  [[nodiscard]] std::size_t size() const { return bits_.size(); }

  /// Pack to bytes, LSB-first within each byte (BLE air order). Pads the
  /// final byte with zeros.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes_lsb_first() const {
    std::vector<std::uint8_t> out((bits_.size() + 7) / 8, 0);
    for (std::size_t i = 0; i < bits_.size(); ++i) {
      if (bits_[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
    return out;
  }

 private:
  std::vector<bool> bits_;
};

/// Sequential reader over a bit vector.
class BitReader {
 public:
  explicit BitReader(const std::vector<bool>& bits) : bits_(&bits) {}

  [[nodiscard]] bool exhausted() const { return pos_ >= bits_->size(); }
  [[nodiscard]] std::size_t remaining() const { return bits_->size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

  bool read_bit() {
    if (exhausted()) throw std::out_of_range("BitReader: past end");
    return (*bits_)[pos_++];
  }

  std::uint64_t read_bits_msb_first(int count) {
    std::uint64_t v = 0;
    for (int i = 0; i < count; ++i) v = (v << 1) | (read_bit() ? 1u : 0u);
    return v;
  }

  std::uint64_t read_bits_lsb_first(int count) {
    std::uint64_t v = 0;
    for (int i = 0; i < count; ++i)
      v |= static_cast<std::uint64_t>(read_bit() ? 1u : 0u) << i;
    return v;
  }

  void skip(std::size_t count) {
    if (pos_ + count > bits_->size())
      throw std::out_of_range("BitReader::skip past end");
    pos_ += count;
  }

 private:
  const std::vector<bool>* bits_;
  std::size_t pos_ = 0;
};

/// Expand bytes to bits, LSB-first per byte (BLE air order).
[[nodiscard]] inline std::vector<bool> bytes_to_bits_lsb_first(
    std::span<const std::uint8_t> bytes) {
  std::vector<bool> bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes)
    for (int i = 0; i < 8; ++i) bits.push_back((b >> i) & 1u);
  return bits;
}

/// Pack bits (LSB-first per byte) back to bytes; size must be a multiple of 8.
[[nodiscard]] inline std::vector<std::uint8_t> bits_to_bytes_lsb_first(
    const std::vector<bool>& bits) {
  if (bits.size() % 8 != 0)
    throw std::invalid_argument("bits_to_bytes_lsb_first: ragged bit count");
  std::vector<std::uint8_t> out(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  return out;
}

}  // namespace tinysdr
