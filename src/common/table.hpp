// Minimal fixed-width text table renderer used by the benchmark harness to
// print paper tables/figure series in a uniform, diffable format.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace tinysdr {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Format a double with fixed precision — the common cell type.
  [[nodiscard]] static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());

    auto line = [&] {
      os << '+';
      for (auto w : widths) os << std::string(w + 2, '-') << '+';
      os << '\n';
    };
    auto emit = [&](const std::vector<std::string>& cells) {
      os << '|';
      for (std::size_t c = 0; c < widths.size(); ++c) {
        std::string cell = c < cells.size() ? cells[c] : "";
        os << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ')
           << '|';
      }
      os << '\n';
    };

    line();
    emit(headers_);
    line();
    for (const auto& row : rows_) emit(row);
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tinysdr
