// Deterministic random number generation for reproducible simulation.
//
// All stochastic parts of the simulator (AWGN, packet loss, payload
// generation) draw from an explicitly seeded PCG32 generator so that tests
// and benchmark tables reproduce bit-for-bit across runs and platforms.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace tinysdr {

/// PCG32 (O'Neill) — small, fast, statistically solid, and fully portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Uniform 32-bit value.
  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform in [0, bound).
  std::uint32_t next_below(std::uint32_t bound) {
    // Debiased modulo (Lemire-style rejection).
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
  }

  /// Standard normal via Box-Muller (cached second value).
  double next_gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = next_double();
    } while (u1 <= 1e-12);
    double u2 = next_double();
    double mag = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * std::numbers::pi * u2;
    cached_ = mag * std::sin(angle);
    has_cached_ = true;
    return mag * std::cos(angle);
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

  std::uint8_t next_byte() {
    return static_cast<std::uint8_t>(next_u32() & 0xFFu);
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace tinysdr
