// AES-128 and AES-CMAC, used for LoRaWAN frame integrity (MIC) the way the
// TTN MAC the paper ports computes it. Implemented from scratch (encrypt
// direction only — CMAC never decrypts) and validated against FIPS-197 and
// RFC 4493 test vectors in the test suite.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace tinysdr {

using AesKey = std::array<std::uint8_t, 16>;
using AesBlock = std::array<std::uint8_t, 16>;

/// AES-128 block cipher (encrypt only).
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  /// Encrypt one 16-byte block.
  [[nodiscard]] AesBlock encrypt(const AesBlock& plaintext) const;

 private:
  std::array<std::array<std::uint8_t, 16>, 11> round_keys_;
};

/// AES-CMAC (RFC 4493 / NIST SP 800-38B) over an arbitrary message.
class AesCmac {
 public:
  explicit AesCmac(const AesKey& key);

  /// Full 128-bit tag.
  [[nodiscard]] AesBlock compute(std::span<const std::uint8_t> message) const;

  /// Truncated 32-bit tag — the LoRaWAN MIC (first 4 bytes, little-endian
  /// packing as the spec transmits it).
  [[nodiscard]] std::uint32_t mic(std::span<const std::uint8_t> message) const;

 private:
  Aes128 cipher_;
  AesBlock k1_{};
  AesBlock k2_{};
};

}  // namespace tinysdr
