#include "core/concurrent.hpp"

#include <stdexcept>

namespace tinysdr::core {

namespace {

/// Random chirp-symbol waveform (no preamble — the §6 setup transmits
/// "random chirp symbols" continuously) at the common rate.
dsp::Samples random_symbol_waveform(const lora::LoraParams& params,
                                    Hertz sample_rate,
                                    std::size_t symbol_count, Rng& rng,
                                    std::vector<std::uint32_t>& symbols_out) {
  lora::ChirpGenerator chirps{params, sample_rate};
  dsp::Samples wave;
  wave.reserve(symbol_count * chirps.samples_per_symbol());
  symbols_out.clear();
  for (std::size_t i = 0; i < symbol_count; ++i) {
    std::uint32_t value = rng.next_below(params.chips());
    symbols_out.push_back(value);
    auto sym = chirps.symbol(value, lora::ChirpDirection::kUp);
    wave.insert(wave.end(), sym.begin(), sym.end());
  }
  return wave;
}

double symbol_error_rate(const std::vector<std::uint32_t>& tx,
                         const std::vector<std::uint32_t>& rx) {
  std::size_t n = std::min(tx.size(), rx.size());
  if (n == 0) return 1.0;
  std::size_t errors = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (tx[i] != rx[i]) ++errors;
  return static_cast<double>(errors) / static_cast<double>(n);
}

}  // namespace

ConcurrentReceiver::ConcurrentReceiver(std::vector<lora::LoraParams> configs,
                                       Hertz sample_rate)
    : configs_(std::move(configs)), sample_rate_(sample_rate) {
  if (configs_.size() < 2)
    throw std::invalid_argument("ConcurrentReceiver: need >= 2 branches");
  for (std::size_t i = 0; i < configs_.size(); ++i)
    for (std::size_t j = i + 1; j < configs_.size(); ++j)
      if (!lora::orthogonal(configs_[i], configs_[j]))
        throw std::invalid_argument(
            "ConcurrentReceiver: branch chirp slopes must differ");
  for (const auto& cfg : configs_) demods_.emplace_back(cfg, sample_rate);
}

std::vector<std::vector<std::uint32_t>> ConcurrentReceiver::demodulate_aligned(
    const dsp::Samples& combined, std::size_t count_per_branch) const {
  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(demods_.size());
  for (const auto& demod : demods_) {
    auto conditioned = demod.condition(combined);
    out.push_back(
        demod.demodulate_aligned(conditioned, 0, count_per_branch));
  }
  return out;
}

fpga::Design ConcurrentReceiver::design() const {
  std::vector<int> sfs;
  sfs.reserve(configs_.size());
  for (const auto& cfg : configs_) sfs.push_back(cfg.sf);
  return fpga::concurrent_rx_design(sfs);
}

Milliwatts ConcurrentReceiver::platform_power() const {
  power::PlatformPowerModel model;
  return model.draw_with_design(power::Activity::kConcurrentReceive,
                                design());
}

ConcurrentTrialResult run_concurrent_trial(const lora::LoraParams& config_a,
                                           const lora::LoraParams& config_b,
                                           Dbm rssi_a, Dbm rssi_b,
                                           std::size_t symbol_count,
                                           Hertz sample_rate, Rng& rng,
                                           double noise_figure_db) {
  std::vector<std::uint32_t> tx_a, tx_b;
  auto wave_a =
      random_symbol_waveform(config_a, sample_rate, symbol_count, rng, tx_a);

  // Match transmitter B's waveform duration to A's so both are continuous
  // over the same window.
  lora::ChirpGenerator chirps_b{config_b, sample_rate};
  std::size_t count_b =
      wave_a.size() / chirps_b.samples_per_symbol();
  auto wave_b =
      random_symbol_waveform(config_b, sample_rate, count_b, rng, tx_b);

  // Superpose at the requested relative power; add noise calibrated to A's
  // RSSI over the common sampling bandwidth.
  auto combined = channel::superpose(wave_a, wave_b, rssi_b - rssi_a);
  channel::AwgnChannel chan{sample_rate, noise_figure_db, rng};
  auto noisy = chan.apply(combined, rssi_a);

  ConcurrentReceiver receiver{{config_a, config_b}, sample_rate};
  // Demodulate as many whole symbols as fit on each branch (branch B's
  // shorter symbols yield proportionally more).
  auto rx = receiver.demodulate_aligned(noisy, noisy.size());

  ConcurrentTrialResult result;
  result.ser_a = symbol_error_rate(tx_a, rx[0]);
  result.ser_b = symbol_error_rate(tx_b, rx[1]);
  result.symbols_a = std::min(tx_a.size(), rx[0].size());
  result.symbols_b = std::min(tx_b.size(), rx[1].size());
  return result;
}

double run_single_trial(const lora::LoraParams& config, Dbm rssi,
                        std::size_t symbol_count, Hertz sample_rate, Rng& rng,
                        double noise_figure_db) {
  std::vector<std::uint32_t> tx;
  auto wave = random_symbol_waveform(config, sample_rate, symbol_count, rng, tx);
  channel::AwgnChannel chan{sample_rate, noise_figure_db, rng};
  auto noisy = chan.apply(wave, rssi);

  lora::Demodulator demod{config, sample_rate};
  auto conditioned = demod.condition(noisy);
  auto rx = demod.demodulate_aligned(conditioned, 0, symbol_count);
  return symbol_error_rate(tx, rx);
}

}  // namespace tinysdr::core
