#include "core/backscatter.hpp"

#include <cmath>
#include <numbers>

#include "dsp/nco.hpp"

namespace tinysdr::core {

BackscatterLink::BackscatterLink(BackscatterConfig config) : config_(config) {}

dsp::Samples BackscatterLink::carrier(std::size_t samples) const {
  return dsp::generate_tone(config_.tone_cycles_per_sample, samples);
}

dsp::Samples BackscatterLink::tag_modulate(
    const std::vector<bool>& bits) const {
  const std::uint32_t spb = config_.samples_per_bit();
  auto tone = carrier(bits.size() * spb);
  // Reflection path: attenuated, with an arbitrary fixed path phase.
  auto refl = static_cast<float>(
      std::pow(10.0, config_.reflection_db / 20.0));
  dsp::Complex path_phase{0.3090f, 0.9511f};  // 72 degrees
  dsp::Samples out(tone.size());
  for (std::size_t i = 0; i < tone.size(); ++i) {
    bool bit = bits[i / spb];
    dsp::Complex reflected =
        bit ? tone[i] * refl * path_phase : dsp::Complex{0.0f, 0.0f};
    out[i] = tone[i] + reflected;
  }
  return out;
}

std::vector<bool> BackscatterLink::decode(const dsp::Samples& rx,
                                          std::size_t bit_count) const {
  const std::uint32_t spb = config_.samples_per_bit();
  // Envelope and its mean (the direct carrier level).
  std::vector<double> env(rx.size());
  double mean = 0.0;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    env[i] = std::abs(rx[i]);
    mean += env[i];
  }
  mean /= static_cast<double>(rx.size());

  // Integrate the mean-removed envelope per bit; the sign distribution is
  // bimodal, so threshold at the midpoint of the observed extremes.
  std::vector<double> dumps;
  for (std::size_t b = 0; b < bit_count; ++b) {
    double acc = 0.0;
    std::size_t start = b * spb;
    if (start + spb > env.size()) break;
    for (std::uint32_t s = 0; s < spb; ++s) acc += env[start + s] - mean;
    dumps.push_back(acc);
  }
  if (dumps.empty()) return {};
  double lo = dumps[0], hi = dumps[0];
  for (double d : dumps) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  double threshold = (lo + hi) / 2.0;
  std::vector<bool> bits;
  bits.reserve(dumps.size());
  for (double d : dumps) bits.push_back(d > threshold);
  return bits;
}

double backscatter_ber(const BackscatterConfig& config, std::size_t bits,
                       double carrier_snr_db, Rng& rng) {
  BackscatterLink link{config};
  std::vector<bool> tx(bits);
  for (auto&& b : tx) b = rng.next_bool(0.5);
  // Guarantee both symbols appear so the threshold is well defined.
  if (bits >= 2) {
    tx[0] = false;
    tx[1] = true;
  }
  auto rf = link.tag_modulate(tx);

  // AWGN at the stated carrier SNR (carrier power is ~1).
  double noise_power = std::pow(10.0, -carrier_snr_db / 10.0);
  auto sigma = static_cast<float>(std::sqrt(noise_power / 2.0));
  for (auto& s : rf)
    s += dsp::Complex{sigma * static_cast<float>(rng.next_gaussian()),
                      sigma * static_cast<float>(rng.next_gaussian())};

  auto rx = link.decode(rf, bits);
  std::size_t errors = 0;
  std::size_t n = std::min(tx.size(), rx.size());
  for (std::size_t i = 0; i < n; ++i)
    if (tx[i] != rx[i]) ++errors;
  errors += bits - n;
  return static_cast<double>(errors) / static_cast<double>(bits);
}

}  // namespace tinysdr::core
