// Static databases behind the paper's comparison tables:
//   Table 1 — SDR platforms (sleep power, standalone, OTA, cost, BW, ADC,
//             spectrum, size)
//   Fig. 2  — radio-module TX/RX power per platform
//   Table 2 — off-the-shelf I/Q radio modules
//   Table 5 — tinySDR bill of materials at 1000 units
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace tinysdr::core {

struct SdrPlatform {
  std::string name;
  std::optional<Milliwatts> sleep_power;  ///< nullopt = N/A (no standalone)
  bool standalone = false;
  bool ota_programming = false;
  double cost_usd = 0.0;
  double max_bandwidth_mhz = 0.0;
  int adc_bits = 0;
  std::string spectrum;
  double size_cm2 = 0.0;
  // Fig. 2: radio-module power at the listed TX output power.
  Milliwatts radio_tx_power{0.0};
  Dbm tx_output{0.0};
  Milliwatts radio_rx_power{0.0};
};

/// Table 1 + Fig. 2 rows (tinySDR last).
[[nodiscard]] const std::vector<SdrPlatform>& sdr_platforms();

struct IqRadioModule {
  std::string name;
  std::string frequency_range;
  Milliwatts rx_power{0.0};
  double cost_usd = 0.0;
  bool covers_900mhz = false;
  bool covers_2400mhz = false;
};

/// Table 2 rows.
[[nodiscard]] const std::vector<IqRadioModule>& iq_radio_modules();

struct BomLine {
  std::string category;
  std::string component;
  double price_usd;
};

/// Table 5: cost breakdown for 1000 units; sums to ~$54.53.
[[nodiscard]] const std::vector<BomLine>& bom_lines();
[[nodiscard]] double bom_total_usd();

}  // namespace tinysdr::core
