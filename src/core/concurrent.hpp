// Concurrent LoRa reception on an IoT endpoint (paper §6).
//
// Research question: can a low-power endpoint decode multiple concurrent
// LoRa transmissions in real time? Orthogonal chirp slopes (different
// SF/BW combinations) can share a channel; tinySDR instantiates one
// dechirp+FFT branch per configuration on the FPGA, sharing the
// deserializer/FIR front end. This module mirrors that: N demodulator
// branches consuming one combined waveform, plus the §6 evaluation driver
// that measures per-branch chirp symbol error rates (Fig. 15).
#pragma once

#include <vector>

#include "channel/noise.hpp"
#include "fpga/resources.hpp"
#include "lora/demodulator.hpp"
#include "lora/modulator.hpp"
#include "power/platform_power.hpp"

namespace tinysdr::core {

class ConcurrentReceiver {
 public:
  /// @param configs      one LoRa configuration per branch; all slopes
  ///                     should differ (checked) for orthogonality
  /// @param sample_rate  common front-end rate (integer multiple of every
  ///                     branch bandwidth)
  ConcurrentReceiver(std::vector<lora::LoraParams> configs, Hertz sample_rate);

  [[nodiscard]] std::size_t branch_count() const { return demods_.size(); }
  [[nodiscard]] const lora::Demodulator& branch(std::size_t i) const {
    return demods_.at(i);
  }

  /// Demodulate `count` aligned symbols on every branch from the combined
  /// waveform (alignment at sample 0, the §6 measurement setup).
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> demodulate_aligned(
      const dsp::Samples& combined, std::size_t count_per_branch) const;

  /// FPGA design implementing this receiver (shares the front end).
  [[nodiscard]] fpga::Design design() const;

  /// Platform power while running it (paper: 207 mW for the dual-SF8 case).
  [[nodiscard]] Milliwatts platform_power() const;

 private:
  std::vector<lora::LoraParams> configs_;
  Hertz sample_rate_;
  std::vector<lora::Demodulator> demods_;
};

/// One Fig. 15 trial: two transmitters send `symbol_count` random chirp
/// symbols each (truncated to what fits the common duration), superposed at
/// the given RSSIs plus AWGN; returns the per-branch symbol error rate.
struct ConcurrentTrialResult {
  double ser_a = 0.0;
  double ser_b = 0.0;
  std::size_t symbols_a = 0;
  std::size_t symbols_b = 0;
};

[[nodiscard]] ConcurrentTrialResult run_concurrent_trial(
    const lora::LoraParams& config_a, const lora::LoraParams& config_b,
    Dbm rssi_a, Dbm rssi_b, std::size_t symbol_count, Hertz sample_rate,
    Rng& rng, double noise_figure_db = channel::kDefaultNoiseFigureDb);

/// Single-transmitter baseline SER at a given RSSI (the Fig. 11 pipeline),
/// for quantifying the concurrency penalty.
[[nodiscard]] double run_single_trial(const lora::LoraParams& config,
                                      Dbm rssi, std::size_t symbol_count,
                                      Hertz sample_rate, Rng& rng,
                                      double noise_figure_db =
                                          channel::kDefaultNoiseFigureDb);

}  // namespace tinysdr::core
