// TinySdrDevice — the top-level facade wiring the whole platform together:
// AT86RF215 I/Q radio, RF front ends and switch, FPGA (designs programmed
// from flash), MSP432 controller, backbone SX1276, PMU and energy ledger.
//
// This is the object a testbed script manipulates: wake it (22 ms, FPGA
// boots from flash while the radio sets up), load a PHY design, transmit /
// receive packets, check the energy bill, go back to 30 uW sleep.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "ble/advertiser.hpp"
#include "radio/builtin_modem.hpp"
#include "zigbee/oqpsk.hpp"
#include "core/concurrent.hpp"
#include "fpga/bitstream.hpp"
#include "fpga/programming.hpp"
#include "lora/demodulator.hpp"
#include "lora/modulator.hpp"
#include "mcu/msp432.hpp"
#include "ota/flash.hpp"
#include "power/ledger.hpp"
#include "radio/at86rf215.hpp"
#include "radio/frontend.hpp"

namespace tinysdr::core {

enum class DeviceState { kSleep, kActive };

class TinySdrDevice {
 public:
  explicit TinySdrDevice(std::uint16_t device_id);

  [[nodiscard]] std::uint16_t id() const { return device_id_; }
  [[nodiscard]] DeviceState state() const { return state_; }
  [[nodiscard]] const std::string& loaded_design() const {
    return loaded_design_;
  }

  // ------------------------------------------------------------ lifecycle

  /// Sleep -> active: FPGA boots its current bitstream from flash while the
  /// radio performs register setup; total latency max of the two (Table 4:
  /// 22 ms). Returns the wakeup latency and accrues its energy.
  Seconds wake();

  /// Active -> 30 uW sleep; records the sleep interval when the device next
  /// wakes (pass expected sleep duration for the ledger now).
  void sleep(Seconds planned_sleep = Seconds{0.0});

  /// Battery-side draw in the current state/activity.
  [[nodiscard]] Milliwatts current_draw() const;

  // -------------------------------------------------------------- designs

  /// Store a bitstream in flash (e.g. delivered by OTA).
  void store_design(const fpga::FirmwareImage& image);

  /// Program the FPGA with a stored design. Returns programming time
  /// (22 ms quad-SPI load). @throws std::logic_error if unknown or asleep.
  Seconds load_design(const std::string& name);

  [[nodiscard]] std::size_t stored_designs() const {
    return store_.stored_count();
  }

  // ------------------------------------------------------------------- TX

  /// Modulate and "transmit" a LoRa packet; returns the antenna waveform
  /// (unit power; absolute level = tx_power). Accounts airtime energy.
  [[nodiscard]] dsp::Samples transmit_lora(
      std::span<const std::uint8_t> payload, const lora::LoraParams& params,
      Dbm tx_power);

  /// Transmit one BLE beacon burst across the three advertising channels;
  /// returns the per-channel waveforms. Accounts airtime + hop energy.
  [[nodiscard]] std::vector<dsp::Samples> transmit_ble_burst(
      const ble::AdvPacket& packet, Dbm tx_power);

  /// Transmit an 802.15.4 (Zigbee) frame at 2.4 GHz through the FPGA
  /// O-QPSK design.
  [[nodiscard]] dsp::Samples transmit_zigbee(
      std::span<const std::uint8_t> psdu, Dbm tx_power);

  /// Transmit via the radio chip's built-in MR-FSK modem with the FPGA
  /// power-gated (§3.1.1's power-saving path) — the ledger records the
  /// cheaper operating point.
  [[nodiscard]] dsp::Samples transmit_fsk_builtin(
      std::span<const std::uint8_t> payload, Dbm tx_power);

  // ------------------------------------------------------------------- RX

  /// Receive a LoRa packet from an antenna waveform (through the radio's
  /// AGC/ADC path, then the FPGA demodulator).
  [[nodiscard]] std::optional<lora::DemodResult> receive_lora(
      const dsp::Samples& rf, const lora::LoraParams& params,
      Seconds listen_time);

  // ------------------------------------------------------------ accounting

  [[nodiscard]] const power::EnergyLedger& ledger() const { return ledger_; }
  [[nodiscard]] power::EnergyLedger& ledger() { return ledger_; }
  [[nodiscard]] const radio::At86rf215& radio() const { return radio_; }
  [[nodiscard]] radio::At86rf215& radio() { return radio_; }
  [[nodiscard]] ota::FlashModel& flash() { return flash_; }
  [[nodiscard]] mcu::Msp432& mcu() { return mcu_; }

 private:
  void require_active(const char* op) const;

  std::uint16_t device_id_;
  DeviceState state_ = DeviceState::kSleep;
  std::string loaded_design_;

  radio::At86rf215 radio_;
  radio::Frontend frontend_900_;
  radio::Frontend frontend_2400_;
  radio::RfSwitch rf_switch_;
  fpga::ProgrammingModel fpga_prog_;
  ota::FlashModel flash_;
  ota::FirmwareStore store_;
  mcu::Msp432 mcu_;
  power::PlatformPowerModel power_model_;
  power::EnergyLedger ledger_;
};

}  // namespace tinysdr::core
