#include "core/localization.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tinysdr::core {

namespace {
double wrap_pi(double angle) {
  while (angle >= std::numbers::pi) angle -= 2.0 * std::numbers::pi;
  while (angle < -std::numbers::pi) angle += 2.0 * std::numbers::pi;
  return angle;
}
}  // namespace

std::vector<PhaseMeasurement> simulate_phase_sweep(const RangingConfig& config,
                                                   double distance_m,
                                                   double phase_noise_rad,
                                                   Rng& rng) {
  if (distance_m < 0.0)
    throw std::invalid_argument("simulate_phase_sweep: negative distance");
  std::vector<PhaseMeasurement> out;
  out.reserve(config.tones);
  for (std::size_t k = 0; k < config.tones; ++k) {
    Hertz f = config.start + config.step * static_cast<double>(k);
    // One-way propagation phase: -2*pi*f*d/c.
    double phase = -2.0 * std::numbers::pi * f.value() * distance_m /
                   kSpeedOfLight;
    phase += phase_noise_rad * rng.next_gaussian();
    out.push_back(PhaseMeasurement{f, wrap_pi(phase)});
  }
  return out;
}

RangeEstimate estimate_range(const RangingConfig& config,
                             const std::vector<PhaseMeasurement>& measurements,
                             double resolution_m) {
  if (measurements.empty())
    throw std::invalid_argument("estimate_range: no measurements");
  if (resolution_m <= 0.0)
    throw std::invalid_argument("estimate_range: bad resolution");

  const double max_d = config.unambiguous_range_m();
  RangeEstimate best;
  double best_residual = 1e18;
  for (double d = 0.0; d < max_d; d += resolution_m) {
    double sum_sq = 0.0;
    for (const auto& m : measurements) {
      double expected = -2.0 * std::numbers::pi * m.carrier.value() * d /
                        kSpeedOfLight;
      double err = wrap_pi(m.phase_rad - expected);
      sum_sq += err * err;
    }
    if (sum_sq < best_residual) {
      best_residual = sum_sq;
      best.distance_m = d;
    }
  }
  best.residual_rad =
      std::sqrt(best_residual / static_cast<double>(measurements.size()));

  // Local refinement at a fraction of the grid step.
  double lo = std::max(0.0, best.distance_m - resolution_m);
  double hi = std::min(max_d, best.distance_m + resolution_m);
  for (double d = lo; d <= hi; d += resolution_m / 50.0) {
    double sum_sq = 0.0;
    for (const auto& m : measurements) {
      double expected = -2.0 * std::numbers::pi * m.carrier.value() * d /
                        kSpeedOfLight;
      double err = wrap_pi(m.phase_rad - expected);
      sum_sq += err * err;
    }
    if (sum_sq < best_residual) {
      best_residual = sum_sq;
      best.distance_m = d;
      best.residual_rad =
          std::sqrt(sum_sq / static_cast<double>(measurements.size()));
    }
  }
  return best;
}

}  // namespace tinysdr::core
