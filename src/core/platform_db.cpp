#include "core/platform_db.hpp"

namespace tinysdr::core {

const std::vector<SdrPlatform>& sdr_platforms() {
  // Table 1 and Fig. 2 of the paper. TX powers are the radio-module draws
  // at the output level annotated in Fig. 2.
  static const std::vector<SdrPlatform> db = {
      {"USRP E310", Milliwatts{2820.0}, true, false, 3000.0, 30.72, 12,
       "70-6000 MHz", 6.8 * 13.3, Milliwatts{1375.0}, Dbm{14.0},
       Milliwatts{335.0}},
      {"USRP B200mini", std::nullopt, false, false, 733.0, 30.72, 12,
       "70-6000 MHz", 5.0 * 8.3, Milliwatts{1260.0}, Dbm{10.0},
       Milliwatts{305.0}},
      {"bladeRF 2.0", Milliwatts{717.0}, true, false, 720.0, 30.72, 12,
       "47-6000 MHz", 6.3 * 12.7, Milliwatts{940.0}, Dbm{10.0},
       Milliwatts{300.0}},
      {"LimeSDR Mini", std::nullopt, false, false, 159.0, 30.72, 12,
       "10-3500 MHz", 3.1 * 6.9, Milliwatts{960.0}, Dbm{10.0},
       Milliwatts{378.0}},
      {"PlutoSDR", std::nullopt, false, false, 149.0, 20.0, 12,
       "325-3800 MHz", 7.9 * 11.7, Milliwatts{900.0}, Dbm{10.0},
       Milliwatts{262.0}},
      {"uSDR", Milliwatts{320.0}, true, false, 150.0, 40.0, 8,
       "2400-2500 MHz", 7.0 * 14.5, Milliwatts{860.0}, Dbm{14.0},
       Milliwatts{276.0}},
      {"GalioT", Milliwatts{350.0}, true, false, 60.0, 14.4, 8,
       "0.5-1766 MHz", 2.5 * 7.0, Milliwatts{0.0} /* RX-only */, Dbm{0.0},
       Milliwatts{200.0}},
      {"TinySDR", Milliwatts{0.03}, true, true, 55.0, 4.0, 13,
       "389.5-510 / 779-1020 / 2400-2483 MHz", 3.0 * 5.0,
       Milliwatts{179.0}, Dbm{14.0}, Milliwatts{59.0}},
  };
  return db;
}

const std::vector<IqRadioModule>& iq_radio_modules() {
  static const std::vector<IqRadioModule> db = {
      {"AD9361", "70-6000 MHz", Milliwatts{262.0}, 282.0, true, true},
      {"AD9363", "325-3800 MHz", Milliwatts{262.0}, 123.0, true, true},
      {"AD9364", "70-6000 MHz", Milliwatts{262.0}, 210.0, true, true},
      {"LMS7002M", "10-3500 MHz", Milliwatts{378.0}, 110.0, true, true},
      {"MAX2831", "2400-2500 MHz", Milliwatts{276.0}, 9.0, false, true},
      {"SX1257", "862-1020 MHz", Milliwatts{54.0}, 7.5, true, false},
      {"AT86RF215", "389.5-510 / 779-1020 / 2400-2483 MHz", Milliwatts{50.0},
       5.5, true, true},
  };
  return db;
}

const std::vector<BomLine>& bom_lines() {
  static const std::vector<BomLine> db = {
      {"DSP", "FPGA (LFE5U-25F)", 8.69},
      {"DSP", "Oscillator", 0.90},
      {"IQ Front-End", "Radio (AT86RF215)", 5.08},
      {"IQ Front-End", "Crystal", 0.53},
      {"IQ Front-End", "2.4 GHz Balun", 0.36},
      {"IQ Front-End", "Sub-GHz Balun", 0.30},
      {"Backbone", "Radio (SX1276)", 4.50},
      {"Backbone", "Crystal", 0.40},
      {"Backbone", "Flash Memory (MX25R6435F)", 1.60},
      {"MAC", "MCU (MSP432P401R)", 3.89},
      {"MAC", "Crystals", 0.68},
      {"RF", "Switch (ADG904)", 3.14},
      {"RF", "Sub-GHz PA (SE2435L)", 1.54},
      {"RF", "2.4 GHz PA (SKY66112)", 1.72},
      {"Power Management", "Regulators", 3.70},
      {"Supporting Components", "Passives / misc", 4.50},
      {"Production", "Fabrication", 3.00},
      {"Production", "Assembly", 10.00},
  };
  return db;
}

double bom_total_usd() {
  double total = 0.0;
  for (const auto& line : bom_lines()) total += line.price_usd;
  return total;
}

}  // namespace tinysdr::core
