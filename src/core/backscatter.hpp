// Backscatter reader study (paper §7, "Low power backscatter readers").
//
// "Many of these proposals require either a single-tone generator or a
// custom receiver to decode the backscatter transmissions. TinySDR can be
// used as a building block to achieve a battery-operated backscatter
// signal generation and receiver."
//
// Model: tinySDR emits a single tone (the carrier the tag reflects); an
// OOK backscatter tag toggles its antenna impedance at a low bit rate,
// amplitude-modulating the reflection; the same tinySDR (or a second one)
// receives carrier + reflection and decodes the tag bits from the envelope
// after DC (direct carrier) removal.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dsp/types.hpp"

namespace tinysdr::core {

struct BackscatterConfig {
  Hertz sample_rate = Hertz::from_megahertz(4.0);
  double tag_bitrate = 10e3;          ///< tag OOK rate (10 kbps typical)
  double reflection_db = -20.0;       ///< reflected power vs direct carrier
  double tone_cycles_per_sample = 0.1;

  [[nodiscard]] std::uint32_t samples_per_bit() const {
    return static_cast<std::uint32_t>(sample_rate.value() / tag_bitrate);
  }
};

class BackscatterLink {
 public:
  explicit BackscatterLink(BackscatterConfig config = {});

  [[nodiscard]] const BackscatterConfig& config() const { return config_; }

  /// The carrier tinySDR generates (single tone via the NCO).
  [[nodiscard]] dsp::Samples carrier(std::size_t samples) const;

  /// What the receiver antenna sees: direct carrier plus the tag's
  /// bit-keyed reflection (phase-shifted path).
  [[nodiscard]] dsp::Samples tag_modulate(const std::vector<bool>& bits) const;

  /// Decode tag bits from the received waveform: envelope -> mean removal
  /// -> per-bit integrate -> threshold. `bit_count` bits expected.
  [[nodiscard]] std::vector<bool> decode(const dsp::Samples& rx,
                                         std::size_t bit_count) const;

 private:
  BackscatterConfig config_;
};

/// End-to-end helper: BER of a backscatter link at a given carrier-to-noise
/// ratio (dB over the tag-bandwidth noise floor).
[[nodiscard]] double backscatter_ber(const BackscatterConfig& config,
                                     std::size_t bits, double carrier_snr_db,
                                     Rng& rng);

}  // namespace tinysdr::core
