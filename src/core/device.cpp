#include "core/device.hpp"

#include <stdexcept>

#include "lora/airtime.hpp"

namespace tinysdr::core {

TinySdrDevice::TinySdrDevice(std::uint16_t device_id)
    : device_id_(device_id),
      frontend_900_(radio::se2435l_spec()),
      frontend_2400_(radio::sky66112_spec()),
      store_(flash_),
      mcu_(mcu::baseline_firmware()),
      ledger_(power_model_) {}

void TinySdrDevice::require_active(const char* op) const {
  if (state_ != DeviceState::kActive)
    throw std::logic_error(std::string("TinySdrDevice: ") + op +
                           " while asleep");
}

Seconds TinySdrDevice::wake() {
  if (state_ == DeviceState::kActive) return Seconds{0.0};
  // FPGA boot (22 ms from flash) in parallel with radio setup (1.2 ms).
  Seconds fpga_boot = loaded_design_.empty()
                          ? Seconds{0.0}
                          : fpga_prog_.load_time(579 * 1024);
  Seconds radio_setup = radio_.wake();
  Seconds latency = std::max(fpga_boot, radio_setup);
  // Cap at the Table 4 value: the measured number includes both.
  latency = std::max(latency, radio_.timing().sleep_to_radio);
  state_ = DeviceState::kActive;
  mcu_.set_mode(mcu::McuMode::kActive);
  // Wakeup burns roughly the RX-chain power for its duration.
  ledger_.record_draw(power::Activity::kLoraReceive, latency,
                      power_model_.draw(power::Activity::kLoraReceive),
                      "wakeup");
  return latency;
}

void TinySdrDevice::sleep(Seconds planned_sleep) {
  radio_.sleep();
  mcu_.set_mode(mcu::McuMode::kLpm3);
  frontend_900_.set_mode(radio::FrontendMode::kSleep);
  frontend_2400_.set_mode(radio::FrontendMode::kSleep);
  state_ = DeviceState::kSleep;
  if (planned_sleep.value() > 0.0)
    ledger_.record(power::Activity::kSleep, planned_sleep, Dbm{0.0}, "sleep");
}

Milliwatts TinySdrDevice::current_draw() const {
  if (state_ == DeviceState::kSleep) return power_model_.sleep_power();
  switch (radio_.state()) {
    case radio::RadioState::kTx:
      return power_model_.draw(power::Activity::kLoraTransmit,
                               radio_.tx_power());
    case radio::RadioState::kRx:
      return power_model_.draw(power::Activity::kLoraReceive);
    default:
      return power_model_.draw(power::Activity::kDecompress);
  }
}

void TinySdrDevice::store_design(const fpga::FirmwareImage& image) {
  store_.store(image.name, image.data);
}

Seconds TinySdrDevice::load_design(const std::string& name) {
  require_active("load_design");
  auto image = store_.load(name);
  if (!image)
    throw std::logic_error("TinySdrDevice: unknown design " + name);
  loaded_design_ = name;
  Seconds t = fpga_prog_.load_time(image->size());
  ledger_.record(power::Activity::kDecompress, t, Dbm{0.0},
                 "fpga program " + name);
  return t;
}

dsp::Samples TinySdrDevice::transmit_lora(
    std::span<const std::uint8_t> payload, const lora::LoraParams& params,
    Dbm tx_power) {
  require_active("transmit_lora");
  radio_.set_tx_power(tx_power);
  radio_.enter_tx();

  // Select the front end for the current band (bypass below 14 dBm).
  auto& fe = radio_.band() == radio::Band::kIsm2400 ? frontend_2400_
                                                    : frontend_900_;
  fe.set_mode(radio::FrontendMode::kBypass);

  lora::Modulator mod{params, radio_.config().sample_rate};
  auto baseband = mod.modulate(payload);
  auto antenna = radio_.transmit(baseband);

  Seconds airtime = lora::time_on_air(params, payload.size());
  ledger_.record(power::Activity::kLoraTransmit, airtime, tx_power,
                 "lora tx");
  return antenna;
}

std::vector<dsp::Samples> TinySdrDevice::transmit_ble_burst(
    const ble::AdvPacket& packet, Dbm tx_power) {
  require_active("transmit_ble_burst");
  radio_.set_tx_power(tx_power);
  radio_.retune(Hertz::from_megahertz(ble::kAdvChannels[0].freq_mhz));
  radio_.enter_tx();
  frontend_2400_.set_mode(radio::FrontendMode::kBypass);

  ble::Advertiser advertiser{packet};
  std::vector<dsp::Samples> waves;
  for (const auto& chan : ble::kAdvChannels) {
    radio_.retune(Hertz::from_megahertz(chan.freq_mhz));
    waves.push_back(advertiser.waveform(chan.index));
    Seconds airtime = Seconds::from_microseconds(ble::airtime_us(packet));
    ledger_.record(power::Activity::kBleTransmit, airtime, tx_power,
                   "ble beacon ch" + std::to_string(chan.index));
  }
  return waves;
}

dsp::Samples TinySdrDevice::transmit_zigbee(
    std::span<const std::uint8_t> psdu, Dbm tx_power) {
  require_active("transmit_zigbee");
  radio_.set_tx_power(tx_power);
  radio_.retune(Hertz::from_megahertz(2440.0));
  radio_.enter_tx();
  frontend_2400_.set_mode(radio::FrontendMode::kBypass);

  zigbee::OqpskModem modem;
  auto baseband = modem.modulate(psdu);
  auto antenna = radio_.transmit(baseband);
  ledger_.record(power::Activity::kBleTransmit, modem.airtime(psdu.size()),
                 tx_power, "zigbee tx");
  return antenna;
}

dsp::Samples TinySdrDevice::transmit_fsk_builtin(
    std::span<const std::uint8_t> payload, Dbm tx_power) {
  require_active("transmit_fsk_builtin");
  radio_.set_tx_power(tx_power);
  radio_.enter_tx();
  auto& fe = radio_.band() == radio::Band::kIsm2400 ? frontend_2400_
                                                    : frontend_900_;
  fe.set_mode(radio::FrontendMode::kBypass);

  radio::BuiltinFskModem modem;
  auto antenna = radio_.transmit(modem.modulate(payload));
  // FPGA stays power-gated: radio + MCU + regulator overhead only.
  Milliwatts draw = power_model_.radio_tx_draw(radio_.band(), tx_power) +
                    power_model_.mcu().active + Milliwatts{10.0};
  ledger_.record_draw(power::Activity::kLoraTransmit,
                      modem.airtime(payload.size()), draw,
                      "builtin fsk tx (fpga off)");
  return antenna;
}

std::optional<lora::DemodResult> TinySdrDevice::receive_lora(
    const dsp::Samples& rf, const lora::LoraParams& params,
    Seconds listen_time) {
  require_active("receive_lora");
  radio_.enter_rx();
  auto& fe = radio_.band() == radio::Band::kIsm2400 ? frontend_2400_
                                                    : frontend_900_;
  fe.set_mode(radio::FrontendMode::kBypass);

  auto conditioned_rf = radio_.receive(rf);
  // Critical-rate demodulation on the FPGA.
  lora::Demodulator demod{params, radio_.config().sample_rate};
  auto result = demod.receive(conditioned_rf);
  ledger_.record(power::Activity::kLoraReceive, listen_time, Dbm{0.0},
                 "lora rx");
  return result;
}

}  // namespace tinysdr::core
