// Phase-based ranging study (paper §7, "Research on IoT localization").
//
// "TinySDR could also be used to build localization systems as it gives
// access to I/Q signals and therefore phase across 2.4 GHz and 900 MHz
// bands, which forms the basis for many localization algorithms."
//
// We implement the canonical multi-carrier phase-ranging scheme: a
// transmitter emits tones on a ladder of carrier frequencies; the receiver
// measures the per-carrier phase of the arriving signal; distance follows
// from the phase-vs-frequency slope, unambiguous up to c / f_step. This is
// exactly what raw I/Q access enables and a packet radio cannot do.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace tinysdr::core {

inline constexpr double kSpeedOfLight = 299792458.0;

struct PhaseMeasurement {
  Hertz carrier;
  double phase_rad;  ///< received carrier phase in [-pi, pi)
};

/// Frequency ladder within one ISM band.
struct RangingConfig {
  Hertz start = Hertz::from_megahertz(902.0);
  Hertz step = Hertz::from_megahertz(2.0);
  std::size_t tones = 10;

  /// Unambiguous range: c / step.
  [[nodiscard]] double unambiguous_range_m() const {
    return kSpeedOfLight / step.value();
  }
};

/// Simulate the phase measurements an endpoint makes for a target at
/// `distance_m`, with per-measurement phase noise (radians std-dev).
[[nodiscard]] std::vector<PhaseMeasurement> simulate_phase_sweep(
    const RangingConfig& config, double distance_m, double phase_noise_rad,
    Rng& rng);

/// Estimate distance from a phase sweep by maximum-likelihood grid search
/// over the unambiguous range (robust to the 2*pi wraps that defeat naive
/// slope fitting).
struct RangeEstimate {
  double distance_m = 0.0;
  double residual_rad = 0.0;  ///< RMS phase residual at the estimate
};
/// The default grid is 5 mm: the cost surface oscillates at the carrier
/// wavelength (~0.33 m) with a shallow inter-lobe envelope, so the search
/// must sample every lobe within a few millimetres of its floor to rank
/// lobes correctly.
[[nodiscard]] RangeEstimate estimate_range(
    const RangingConfig& config,
    const std::vector<PhaseMeasurement>& measurements,
    double resolution_m = 0.005);

}  // namespace tinysdr::core
