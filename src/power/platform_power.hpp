// Whole-platform power model, calibrated against the paper's measurements:
//   - sleep mode: 30 uW total (§5.1)
//   - single-tone TX: 231 mW @ 0 dBm rising to 283 mW @ 14 dBm (Fig. 9)
//   - LoRa packet TX (SF9/BW500, 14 dBm): 287 mW, RX: 186 mW (§5.2)
//   - concurrent dual-demod RX: 207 mW (§6)
//
// The model sums per-component operating points through the PMU's domain
// regulators, so the same machinery yields duty-cycled averages and battery
// lifetimes.
#pragma once

#include <map>

#include "common/units.hpp"
#include "fpga/resources.hpp"
#include "power/domains.hpp"
#include "radio/at86rf215.hpp"

namespace tinysdr::power {

/// FPGA power: static leakage + clocking (PLL + LVDS I/O at 64 MHz) +
/// per-LUT dynamic power. Calibrated so the §5.2 totals decompose
/// consistently (see DESIGN.md).
struct FpgaPowerModel {
  Milliwatts static_mw{36.0};
  Milliwatts clocking_mw{28.0};
  double dynamic_mw_per_lut = 0.015;

  [[nodiscard]] Milliwatts active(std::uint32_t luts) const {
    return static_mw + clocking_mw +
           Milliwatts{dynamic_mw_per_lut * static_cast<double>(luts)};
  }
};

/// MCU operating points (MSP432P401R).
struct McuPowerModel {
  Milliwatts active{12.0};                           ///< 48 MHz run mode
  Milliwatts lpm3_uw = Milliwatts::from_microwatts(5.0);  ///< RTC-only sleep
};

/// Static sleep-mode draws of everything else, in microwatts (battery side).
struct SleepBudget {
  double iq_radio_uw = 0.1;
  double backbone_radio_uw = 0.7;
  double pas_uw = 6.5;        ///< both PAs at 1 uA sleep
  double flash_uw = 1.3;      ///< deep power-down
  double board_leak_uw = 14.5;  ///< dividers, pull-ups, misc leakage

  [[nodiscard]] double total_uw() const {
    return iq_radio_uw + backbone_radio_uw + pas_uw + flash_uw + board_leak_uw;
  }
};

/// Activity the platform is performing, for power accounting.
enum class Activity {
  kSleep,
  kSingleTone900,
  kSingleTone2400,
  kLoraTransmit,
  kLoraReceive,
  kConcurrentReceive,
  kBleTransmit,
  kOtaReceive,   ///< backbone radio RX + MCU, FPGA off
  kDecompress,   ///< MCU active, radios off
};

/// Stable kebab-case label (telemetry metric keys, logs).
[[nodiscard]] const char* to_string(Activity activity);

class PlatformPowerModel {
 public:
  PlatformPowerModel();

  /// Total battery-side draw for an activity. TX activities take the RF
  /// output power; others ignore it.
  [[nodiscard]] Milliwatts draw(Activity activity,
                                Dbm tx_power = Dbm{0.0}) const;

  /// Draw with an explicit FPGA design loaded (for custom designs).
  [[nodiscard]] Milliwatts draw_with_design(Activity activity,
                                            const fpga::Design& design,
                                            Dbm tx_power = Dbm{0.0}) const;

  /// Sleep power (paper: 30 uW).
  [[nodiscard]] Milliwatts sleep_power() const;

  /// Average power for a duty cycle: `active_fraction` of time in
  /// `activity`, the rest asleep (wakeup energy amortised separately).
  [[nodiscard]] Milliwatts duty_cycled_average(Activity activity,
                                               double active_fraction,
                                               Dbm tx_power = Dbm{0.0}) const;

  [[nodiscard]] const FpgaPowerModel& fpga() const { return fpga_; }
  [[nodiscard]] const McuPowerModel& mcu() const { return mcu_; }
  [[nodiscard]] const SleepBudget& sleep_budget() const { return sleep_; }

  /// Radio TX DC draw at an output power (the Fig. 9 radio curve).
  [[nodiscard]] Milliwatts radio_tx_draw(radio::Band band, Dbm out) const;
  /// Radio RX DC draw with the LVDS interface streaming.
  [[nodiscard]] Milliwatts radio_rx_draw() const { return Milliwatts{59.0}; }
  /// Backbone (SX1276) draws.
  [[nodiscard]] Milliwatts backbone_rx_draw() const { return Milliwatts{39.0}; }
  [[nodiscard]] Milliwatts backbone_tx_draw(Dbm out) const;

 private:
  FpgaPowerModel fpga_;
  McuPowerModel mcu_;
  SleepBudget sleep_;
  radio::TxPowerCurve tx_900_;
  radio::TxPowerCurve tx_2400_;
  Milliwatts regulator_overhead_{10.0};
};

}  // namespace tinysdr::power
