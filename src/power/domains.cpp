#include "power/domains.hpp"

#include <stdexcept>

namespace tinysdr::power {

std::string domain_name(Domain d) {
  switch (d) {
    case Domain::kV1:
      return "V1";
    case Domain::kV2:
      return "V2";
    case Domain::kV3:
      return "V3";
    case Domain::kV4:
      return "V4";
    case Domain::kV5:
      return "V5";
    case Domain::kV6:
      return "V6";
    case Domain::kV7:
      return "V7";
  }
  return "?";
}

std::string component_name(Component c) {
  switch (c) {
    case Component::kMcu:
      return "MCU";
    case Component::kFpgaCore:
      return "FPGA core";
    case Component::kFpgaAux:
      return "FPGA aux";
    case Component::kFpgaPll:
      return "FPGA PLL";
    case Component::kFpgaIo:
      return "FPGA I/O";
    case Component::kIqRadio:
      return "I/Q radio";
    case Component::kBackboneRadio:
      return "backbone radio";
    case Component::kSubGhzPa:
      return "sub-GHz PA";
    case Component::k24GhzPa:
      return "2.4 GHz PA";
    case Component::kFlash:
      return "flash";
    case Component::kMicroSd:
      return "microSD";
  }
  return "?";
}

Domain domain_of(Component c) {
  switch (c) {
    case Component::kMcu:
      return Domain::kV1;
    case Component::kFpgaCore:
      return Domain::kV2;
    case Component::kFpgaAux:
    case Component::kFlash:
      return Domain::kV3;
    case Component::kFpgaPll:
      return Domain::kV4;
    case Component::kFpgaIo:
    case Component::kIqRadio:
    case Component::kBackboneRadio:
      return Domain::kV5;
    case Component::kSubGhzPa:
      return Domain::kV6;
    case Component::k24GhzPa:
    case Component::kMicroSd:
      return Domain::kV7;
  }
  throw std::invalid_argument("domain_of: unknown component");
}

PowerManagementUnit::PowerManagementUnit(double battery_volts) {
  regs_.emplace(Domain::kV1,
                Regulator{tps78218_spec(), 1.8, battery_volts});
  // FPGA core 1.1 V, aux 1.8 V, PLL 2.5 V.
  auto buck = tps62240_spec();
  buck.min_volts = 1.1;
  buck.max_volts = 3.0;
  regs_.emplace(Domain::kV2, Regulator{buck, 1.1, battery_volts});
  regs_.emplace(Domain::kV3, Regulator{buck, 1.8, battery_volts});
  regs_.emplace(Domain::kV4, Regulator{buck, 2.5, battery_volts});
  regs_.emplace(Domain::kV5, Regulator{sc195_spec(), 1.8, battery_volts});
  regs_.emplace(Domain::kV6, Regulator{tps62080_spec(), 3.5, battery_volts});
  regs_.emplace(Domain::kV7, Regulator{buck, 3.0, battery_volts});
}

void PowerManagementUnit::set_domain_enabled(Domain d, bool on) {
  if (d == Domain::kV1 && !on)
    throw std::logic_error("PMU: V1 (MCU) cannot be disabled");
  regs_.at(d).set_enabled(on);
}

Milliwatts PowerManagementUnit::battery_draw(
    const std::map<Domain, Milliwatts>& domain_loads) const {
  Milliwatts total{0.0};
  for (const auto& [domain, reg] : regs_) {
    Milliwatts load{0.0};
    if (auto it = domain_loads.find(domain); it != domain_loads.end())
      load = it->second;
    total += reg.input_power(load);
  }
  return total;
}

Milliwatts PowerManagementUnit::overhead(
    const std::map<Domain, Milliwatts>& domain_loads) const {
  Milliwatts loads{0.0};
  for (const auto& [domain, load] : domain_loads) {
    if (regs_.at(domain).enabled()) loads += load;
  }
  return battery_draw(domain_loads) - loads;
}

std::vector<Domain> PowerManagementUnit::all_domains() {
  return {Domain::kV1, Domain::kV2, Domain::kV3, Domain::kV4,
          Domain::kV5, Domain::kV6, Domain::kV7};
}

}  // namespace tinysdr::power
