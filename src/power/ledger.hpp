// Energy ledger: accumulates (activity, duration) intervals into total
// energy and average power over a simulated timeline. Used for the OTA
// energy results (§5.3: 6144 mJ per LoRa FPGA update) and battery-lifetime
// projections ("2100 LoRa updates on a 1000 mAh LiPo").
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "power/platform_power.hpp"

namespace tinysdr::power {

class EnergyLedger {
 public:
  explicit EnergyLedger(const PlatformPowerModel& model) : model_(&model) {}

  struct Entry {
    Activity activity;
    Seconds duration;
    Milliwatts draw;
    Millijoules energy;
    std::string note;
  };

  /// Record time spent in an activity; returns the energy it cost.
  Millijoules record(Activity activity, Seconds duration,
                     Dbm tx_power = Dbm{0.0}, std::string note = {});

  /// Record at an explicit draw (for externally-computed operating points).
  Millijoules record_draw(Activity activity, Seconds duration,
                          Milliwatts draw, std::string note = {});

  [[nodiscard]] Millijoules total_energy() const { return total_; }
  [[nodiscard]] Seconds total_time() const { return time_; }
  [[nodiscard]] Milliwatts average_power() const {
    if (time_.value() <= 0.0) return Milliwatts{0.0};
    return Milliwatts{total_.value() / time_.value()};
  }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// How many times this ledger's recorded sequence could run on a battery.
  [[nodiscard]] double runs_on(BatteryCapacity battery) const {
    if (total_.value() <= 0.0) return 0.0;
    return battery.energy().value() / total_.value();
  }

  void reset() {
    entries_.clear();
    total_ = Millijoules{0.0};
    time_ = Seconds{0.0};
  }

 private:
  const PlatformPowerModel* model_;
  std::vector<Entry> entries_;
  Millijoules total_{0.0};
  Seconds time_{0.0};
};

}  // namespace tinysdr::power
