#include "power/ledger.hpp"

namespace tinysdr::power {

Millijoules EnergyLedger::record(Activity activity, Seconds duration,
                                 Dbm tx_power, std::string note) {
  return record_draw(activity, duration, model_->draw(activity, tx_power),
                     std::move(note));
}

Millijoules EnergyLedger::record_draw(Activity activity, Seconds duration,
                                      Milliwatts draw, std::string note) {
  Millijoules energy = draw * duration;
  entries_.push_back(Entry{activity, duration, draw, energy, std::move(note)});
  total_ += energy;
  time_ += duration;
  return energy;
}

}  // namespace tinysdr::power
