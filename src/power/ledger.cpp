#include "power/ledger.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tinysdr::power {

Millijoules EnergyLedger::record(Activity activity, Seconds duration,
                                 Dbm tx_power, std::string note) {
  return record_draw(activity, duration, model_->draw(activity, tx_power),
                     std::move(note));
}

Millijoules EnergyLedger::record_draw(Activity activity, Seconds duration,
                                      Milliwatts draw, std::string note) {
  Millijoules energy = draw * duration;
  entries_.push_back(Entry{activity, duration, draw, energy, std::move(note)});
  total_ += energy;
  time_ += duration;
  const char* label = to_string(activity);
  if (auto* t = obs::tracer()) {
    t->instant("power", label,
               {obs::TraceArg::num("duration_s", duration.value()),
                obs::TraceArg::num("draw_mw", draw.value()),
                obs::TraceArg::num("energy_mj", energy.value())});
    t->counter("power", "ledger_total_mj", total_.value());
  }
  if (auto* m = obs::metrics()) {
    m->counter(std::string("power.energy_mj.") + label).add(energy.value());
    m->counter("power.energy_mj.total").add(energy.value());
  }
  return energy;
}

}  // namespace tinysdr::power
