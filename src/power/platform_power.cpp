#include "power/platform_power.hpp"

#include <stdexcept>

namespace tinysdr::power {

const char* to_string(Activity activity) {
  switch (activity) {
    case Activity::kSleep:
      return "sleep";
    case Activity::kSingleTone900:
      return "single-tone-900";
    case Activity::kSingleTone2400:
      return "single-tone-2400";
    case Activity::kLoraTransmit:
      return "lora-tx";
    case Activity::kLoraReceive:
      return "lora-rx";
    case Activity::kConcurrentReceive:
      return "concurrent-rx";
    case Activity::kBleTransmit:
      return "ble-tx";
    case Activity::kOtaReceive:
      return "ota-rx";
    case Activity::kDecompress:
      return "decompress";
  }
  return "?";
}

namespace {
/// Single-tone generator design: NCO (phase integrator + sin/cos LUT) and
/// the LVDS serializer.
fpga::Design tone_design() {
  fpga::Design d{"single_tone"};
  d.add(fpga::Block::kPhaseIntegrator)
      .add(fpga::Block::kSinCosLut)
      .add(fpga::Block::kIqSerializer);
  return d;
}
}  // namespace

PlatformPowerModel::PlatformPowerModel() {
  // Radio TX curves calibrated so whole-platform totals reproduce Fig. 9:
  // 231 mW at 0 dBm and 283 mW at 14 dBm for 900 MHz (tone overhead below
  // is ~91.5 mW).
  tx_900_.flat_region = Milliwatts{139.5};
  tx_900_.knee = Dbm{0.0};
  tx_900_.slope_mw_per_mw = 2.16;
  tx_2400_.flat_region = Milliwatts{143.5};
  tx_2400_.knee = Dbm{0.0};
  tx_2400_.slope_mw_per_mw = 2.20;
}

Milliwatts PlatformPowerModel::radio_tx_draw(radio::Band band, Dbm out) const {
  return band == radio::Band::kIsm2400 ? tx_2400_.dc_draw(out)
                                       : tx_900_.dc_draw(out);
}

Milliwatts PlatformPowerModel::backbone_tx_draw(Dbm out) const {
  // SX1276: ~29 mA @ 3.3 V at 14 dBm, scaling with output power.
  double rf_mw = out.milliwatts();
  return Milliwatts{35.0 + rf_mw * 2.4};
}

Milliwatts PlatformPowerModel::sleep_power() const {
  // MCU in LPM3 plus every static leak; FPGA and regulators shut down.
  return mcu_.lpm3_uw +
         Milliwatts::from_microwatts(sleep_.total_uw()) +
         Milliwatts::from_microwatts(5 * 0.1 * 3.7);  // 5 regs in shutdown
}

Milliwatts PlatformPowerModel::draw_with_design(Activity activity,
                                                const fpga::Design& design,
                                                Dbm tx_power) const {
  switch (activity) {
    case Activity::kSleep:
      return sleep_power();
    case Activity::kSingleTone900:
    case Activity::kLoraTransmit:
      return radio_tx_draw(radio::Band::kSubGhz900, tx_power) +
             fpga_.active(design.total_luts()) + mcu_.active +
             regulator_overhead_;
    case Activity::kSingleTone2400:
    case Activity::kBleTransmit:
      return radio_tx_draw(radio::Band::kIsm2400, tx_power) +
             fpga_.active(design.total_luts()) + mcu_.active +
             regulator_overhead_;
    case Activity::kLoraReceive:
    case Activity::kConcurrentReceive:
      return radio_rx_draw() + fpga_.active(design.total_luts()) +
             mcu_.active + regulator_overhead_;
    case Activity::kOtaReceive:
      // Backbone radio RX + MCU writing flash; FPGA and I/Q radio off.
      return backbone_rx_draw() + mcu_.active + Milliwatts{4.0} /* flash */ +
             regulator_overhead_;
    case Activity::kDecompress:
      return mcu_.active + Milliwatts{4.0} + regulator_overhead_;
  }
  throw std::invalid_argument("PlatformPowerModel: unknown activity");
}

Milliwatts PlatformPowerModel::draw(Activity activity, Dbm tx_power) const {
  switch (activity) {
    case Activity::kSleep:
      return sleep_power();
    case Activity::kSingleTone900:
    case Activity::kSingleTone2400:
      return draw_with_design(activity, tone_design(), tx_power);
    case Activity::kLoraTransmit:
      return draw_with_design(activity, fpga::lora_tx_design(), tx_power);
    case Activity::kLoraReceive:
      return draw_with_design(activity, fpga::lora_rx_design(8), tx_power);
    case Activity::kConcurrentReceive:
      return draw_with_design(activity, fpga::concurrent_rx_design({8, 8}),
                              tx_power);
    case Activity::kBleTransmit:
      return draw_with_design(activity, fpga::ble_tx_design(), tx_power);
    case Activity::kOtaReceive:
    case Activity::kDecompress:
      return draw_with_design(activity, tone_design(), tx_power);
  }
  throw std::invalid_argument("PlatformPowerModel: unknown activity");
}

Milliwatts PlatformPowerModel::duty_cycled_average(Activity activity,
                                                   double active_fraction,
                                                   Dbm tx_power) const {
  if (active_fraction < 0.0 || active_fraction > 1.0)
    throw std::invalid_argument("duty_cycled_average: fraction out of [0,1]");
  Milliwatts active = draw(activity, tx_power);
  Milliwatts asleep = sleep_power();
  return Milliwatts{active.value() * active_fraction +
                    asleep.value() * (1.0 - active_fraction)};
}

}  // namespace tinysdr::power
