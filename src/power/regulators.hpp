// Voltage regulator models (paper §3.3).
//
// The PMU groups components into domains V1..V7, each behind one of four
// regulator parts chosen for the domain's duty profile:
//  - TPS78218 LDO:        always-on MCU rail (low quiescent current)
//  - TPS62240 buck:       switchable rails (0.1 uA shutdown, ~90% eff.)
//  - TPS62080 buck:       sub-GHz PA rail (supports the 30 dBm PA current)
//  - SC195 adjustable:    shared radio/FPGA-I/O rail, 1.8-3.6 V programmable
#pragma once

#include <stdexcept>
#include <string>

#include "common/units.hpp"

namespace tinysdr::power {

struct RegulatorSpec {
  std::string part;
  double quiescent_ua = 0.5;    ///< ground current while enabled
  double shutdown_ua = 0.1;     ///< leakage while disabled
  double efficiency = 0.90;     ///< output power / input power when loaded
  bool adjustable = false;
  double min_volts = 1.8;
  double max_volts = 1.8;
};

[[nodiscard]] inline RegulatorSpec tps78218_spec() {
  return RegulatorSpec{"TPS78218", 0.5, 0.0, /*LDO eff = Vout/Vin*/ 0.0, false,
                       1.8, 1.8};
}
[[nodiscard]] inline RegulatorSpec tps62240_spec() {
  return RegulatorSpec{"TPS62240", 15.0, 0.1, 0.90, false, 1.1, 3.0};
}
[[nodiscard]] inline RegulatorSpec tps62080_spec() {
  return RegulatorSpec{"TPS62080", 12.0, 0.15, 0.90, false, 3.5, 3.5};
}
[[nodiscard]] inline RegulatorSpec sc195_spec() {
  return RegulatorSpec{"SC195", 20.0, 0.1, 0.90, true, 1.8, 3.6};
}

/// One regulator instance with an output voltage and enable state.
class Regulator {
 public:
  Regulator(RegulatorSpec spec, double output_volts, double input_volts = 3.7)
      : spec_(std::move(spec)),
        output_volts_(output_volts),
        input_volts_(input_volts) {
    validate_voltage(output_volts);
  }

  [[nodiscard]] const RegulatorSpec& spec() const { return spec_; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  [[nodiscard]] double output_volts() const { return output_volts_; }
  void set_output_volts(double volts) {
    if (!spec_.adjustable)
      throw std::logic_error("Regulator: " + spec_.part + " not adjustable");
    validate_voltage(volts);
    output_volts_ = volts;
  }

  /// Battery-side power needed to deliver `load` at the output.
  /// LDOs burn (Vin-Vout) linearly; bucks divide by efficiency. Quiescent /
  /// shutdown currents are drawn from the battery rail.
  [[nodiscard]] Milliwatts input_power(Milliwatts load) const {
    if (!enabled_) {
      return Milliwatts::from_volts_milliamps(input_volts_,
                                              spec_.shutdown_ua * 1e-3);
    }
    double load_input_mw;
    if (spec_.efficiency <= 0.0) {
      // LDO: input current equals output current.
      double load_ma = load.value() / output_volts_;
      load_input_mw = load_ma * input_volts_;
    } else {
      load_input_mw = load.value() / spec_.efficiency;
    }
    double quiescent_mw = spec_.quiescent_ua * 1e-3 * input_volts_;
    return Milliwatts{load_input_mw + quiescent_mw};
  }

 private:
  void validate_voltage(double volts) const {
    if (volts < spec_.min_volts - 1e-9 || volts > spec_.max_volts + 1e-9)
      throw std::invalid_argument("Regulator: " + spec_.part +
                                  " voltage out of range");
  }

  RegulatorSpec spec_;
  double output_volts_;
  double input_volts_;
  bool enabled_ = true;
};

}  // namespace tinysdr::power
