// Power domain plan (paper Table 3).
//
// Components are grouped into domains V1..V7 behind individually
// controllable regulators; the MCU toggles domains to duty-cycle the
// platform. V1 (MCU) is always on; V5 is the SC195 adjustable rail shared
// by the I/Q radio, backbone radio and the FPGA I/O bank.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "power/regulators.hpp"

namespace tinysdr::power {

enum class Domain { kV1, kV2, kV3, kV4, kV5, kV6, kV7 };

enum class Component {
  kMcu,
  kFpgaCore,       // 1.1 V core (V2)
  kFpgaAux,        // 1.8 V aux (V3)
  kFpgaPll,        // 2.5 V PLL (V4)
  kFpgaIo,         // LVDS bank on V5
  kIqRadio,        // AT86RF215 (V5)
  kBackboneRadio,  // SX1276 (V5)
  kSubGhzPa,       // SE2435L (V6)
  k24GhzPa,        // SKY66112 (V7 + V3 control)
  kFlash,          // MX25R6435F (V3)
  kMicroSd,        // V7
};

[[nodiscard]] std::string domain_name(Domain d);
[[nodiscard]] std::string component_name(Component c);

/// Which domain powers each component (Table 3; multi-rail parts are
/// assigned to their dominant rail for accounting).
[[nodiscard]] Domain domain_of(Component c);

/// The full PMU: one regulator per domain with the Table 3 voltages.
class PowerManagementUnit {
 public:
  explicit PowerManagementUnit(double battery_volts = 3.7);

  [[nodiscard]] Regulator& regulator(Domain d) { return regs_.at(d); }
  [[nodiscard]] const Regulator& regulator(Domain d) const {
    return regs_.at(d);
  }

  /// Enable/disable a whole domain. V1 cannot be disabled (the MCU hosts
  /// the power manager itself).
  void set_domain_enabled(Domain d, bool on);
  [[nodiscard]] bool domain_enabled(Domain d) const {
    return regs_.at(d).enabled();
  }

  /// Battery-side draw given per-component load on each domain.
  [[nodiscard]] Milliwatts battery_draw(
      const std::map<Domain, Milliwatts>& domain_loads) const;

  /// Regulator overhead alone (quiescent + shutdown + conversion loss) for
  /// a given load set.
  [[nodiscard]] Milliwatts overhead(
      const std::map<Domain, Milliwatts>& domain_loads) const;

  [[nodiscard]] static std::vector<Domain> all_domains();

 private:
  std::map<Domain, Regulator> regs_;
};

}  // namespace tinysdr::power
