// IEEE 802.15.4 O-QPSK PHY (the "Zigbee" PHY the paper lists among the
// protocols tinySDR's 4 MHz / 2.4 GHz front end supports).
//
// 2.4 GHz band, 250 kb/s: each 4-bit symbol maps to one of 16
// quasi-orthogonal 32-chip PN sequences at 2 Mchip/s; chips are split
// even->I / odd->Q with a half-chip offset and half-sine pulse shaping
// (O-QPSK == MSK up to the mapping). At 2 samples/chip this runs exactly at
// the AT86RF215's 4 MHz I/Q rate.
//
// Frame (802.15.4 PPDU): preamble (8 zero symbols), SFD 0xA7, 7-bit PHR
// length, PSDU, 16-bit FCS (ITU CRC-16, LSB-first, init 0).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "dsp/types.hpp"

namespace tinysdr::zigbee {

inline constexpr std::size_t kChipsPerSymbol = 32;
inline constexpr double kChipRate = 2e6;
inline constexpr double kBitRate = 250e3;
inline constexpr std::uint8_t kSfd = 0xA7;
inline constexpr std::size_t kMaxPsdu = 127;

/// The 16 standard PN sequences (chip 0 first, as a 32-bit word LSB-first).
[[nodiscard]] const std::array<std::uint32_t, 16>& chip_table();

/// Expand a 4-bit symbol to its chip sequence.
[[nodiscard]] std::array<bool, kChipsPerSymbol> chips_for(std::uint8_t symbol);

/// Min-Hamming-distance decision over the table; returns (symbol, distance).
[[nodiscard]] std::pair<std::uint8_t, int> nearest_symbol(
    std::span<const bool> chips);
/// Same decision from a pre-packed 32-chip word (bit i = chip i).
[[nodiscard]] std::pair<std::uint8_t, int> nearest_symbol_word(
    std::uint32_t word);

/// 802.15.4 FCS: reflected CRC-16 (poly 0x1021 reversed = 0x8408), init 0.
[[nodiscard]] std::uint16_t fcs16(std::span<const std::uint8_t> data);

struct OqpskConfig {
  std::uint32_t samples_per_chip = 2;  ///< 2 -> 4 MHz at 2 Mchip/s

  [[nodiscard]] Hertz sample_rate() const {
    return Hertz{kChipRate * samples_per_chip};
  }
};

class OqpskModem {
 public:
  explicit OqpskModem(OqpskConfig config = {});

  [[nodiscard]] const OqpskConfig& config() const { return config_; }

  /// Symbol stream of a full PPDU (preamble + SFD + PHR + PSDU + FCS),
  /// 2 symbols per byte, low nibble first (802.15.4 bit order).
  /// @throws std::invalid_argument if psdu exceeds 125 B (PHR adds FCS).
  [[nodiscard]] std::vector<std::uint8_t> frame_symbols(
      std::span<const std::uint8_t> psdu) const;

  /// Full baseband waveform (half-sine O-QPSK, unit envelope).
  [[nodiscard]] dsp::Samples modulate(std::span<const std::uint8_t> psdu) const;

  /// Receive: chip-rate sampling, preamble/SFD sync, despread, FCS check.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> demodulate(
      std::span<const dsp::Complex> iq) const;

  /// PPDU airtime at 250 kb/s (62.5 ksym/s).
  [[nodiscard]] Seconds airtime(std::size_t psdu_bytes) const;

 private:
  /// Hard chip decisions (0/1) from a waveform, starting at `offset`.
  [[nodiscard]] std::vector<std::uint8_t> slice_chips(std::span<const dsp::Complex> iq,
                                                      std::size_t offset) const;

  OqpskConfig config_;
};

}  // namespace tinysdr::zigbee
