#include "zigbee/oqpsk.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tinysdr::zigbee {

const std::array<std::uint32_t, 16>& chip_table() {
  // Built from the 802.15.4 base sequence for symbol 0 (0x744AC39B with
  // bit i = chip i): symbols 1..7 are 4-chip cyclic delays; symbols 8..15
  // invert the odd-indexed chips (the "conjugate" half of the table).
  static const std::array<std::uint32_t, 16> table = [] {
    std::array<std::uint32_t, 16> t{};
    std::uint32_t base = 0x744AC39B;
    for (int k = 0; k < 8; ++k) {
      int rot = 4 * k;
      t[static_cast<std::size_t>(k)] =
          rot == 0 ? base : ((base << rot) | (base >> (32 - rot)));
      t[static_cast<std::size_t>(k + 8)] =
          t[static_cast<std::size_t>(k)] ^ 0xAAAAAAAA;
    }
    return t;
  }();
  return table;
}

std::array<bool, kChipsPerSymbol> chips_for(std::uint8_t symbol) {
  if (symbol > 0xF) throw std::invalid_argument("chips_for: not a nibble");
  std::uint32_t word = chip_table()[symbol];
  std::array<bool, kChipsPerSymbol> out{};
  for (std::size_t i = 0; i < kChipsPerSymbol; ++i)
    out[i] = (word >> i) & 1u;
  return out;
}

std::pair<std::uint8_t, int> nearest_symbol_word(std::uint32_t word) {
  std::uint8_t best = 0;
  int best_dist = 33;
  for (std::uint8_t s = 0; s < 16; ++s) {
    int d = __builtin_popcount(word ^ chip_table()[s]);
    if (d < best_dist) {
      best_dist = d;
      best = s;
    }
  }
  return {best, best_dist};
}

std::pair<std::uint8_t, int> nearest_symbol(std::span<const bool> chips) {
  if (chips.size() < kChipsPerSymbol)
    throw std::invalid_argument("nearest_symbol: need 32 chips");
  std::uint32_t word = 0;
  for (std::size_t i = 0; i < kChipsPerSymbol; ++i)
    word |= static_cast<std::uint32_t>(chips[i] ? 1u : 0u) << i;
  return nearest_symbol_word(word);
}

std::uint16_t fcs16(std::span<const std::uint8_t> data) {
  // ITU CRC-16 (reflected 0x1021 = 0x8408), init 0x0000 — 802.15.4 FCS.
  std::uint16_t crc = 0x0000;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 1)
        crc = static_cast<std::uint16_t>((crc >> 1) ^ 0x8408);
      else
        crc >>= 1;
    }
  }
  return crc;
}

OqpskModem::OqpskModem(OqpskConfig config) : config_(config) {
  if (config_.samples_per_chip < 2)
    throw std::invalid_argument("OqpskModem: need >= 2 samples/chip");
}

std::vector<std::uint8_t> OqpskModem::frame_symbols(
    std::span<const std::uint8_t> psdu) const {
  if (psdu.size() > kMaxPsdu - 2)
    throw std::invalid_argument("OqpskModem: PSDU too long");

  std::vector<std::uint8_t> bytes;
  bytes.insert(bytes.end(), 4, 0x00);  // preamble: 8 zero symbols
  bytes.push_back(kSfd);
  std::uint16_t fcs = fcs16(psdu);
  bytes.push_back(static_cast<std::uint8_t>(psdu.size() + 2));  // PHR
  bytes.insert(bytes.end(), psdu.begin(), psdu.end());
  bytes.push_back(static_cast<std::uint8_t>(fcs & 0xFF));
  bytes.push_back(static_cast<std::uint8_t>(fcs >> 8));

  std::vector<std::uint8_t> symbols;
  symbols.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    symbols.push_back(b & 0xF);         // low nibble first (802.15.4)
    symbols.push_back((b >> 4) & 0xF);
  }
  return symbols;
}

dsp::Samples OqpskModem::modulate(std::span<const std::uint8_t> psdu) const {
  auto symbols = frame_symbols(psdu);

  // Chip stream.
  std::vector<bool> chips;
  chips.reserve(symbols.size() * kChipsPerSymbol);
  for (std::uint8_t s : symbols) {
    auto seq = chips_for(s);
    chips.insert(chips.end(), seq.begin(), seq.end());
  }

  // O-QPSK synthesis: even chips on I, odd on Q, half-sine pulses of two
  // chip durations, Q offset by one chip.
  const std::uint32_t spc = config_.samples_per_chip;
  const std::size_t pulse_len = 2 * spc;
  const std::size_t total =
      (chips.size() / 2) * pulse_len + pulse_len;  // + Q tail
  std::vector<float> rail_i(total, 0.0f), rail_q(total, 0.0f);

  for (std::size_t k = 0; k * 2 < chips.size(); ++k) {
    float ai = chips[k * 2] ? 1.0f : -1.0f;
    std::size_t start_i = k * pulse_len;
    for (std::size_t j = 0; j < pulse_len; ++j) {
      auto shape = static_cast<float>(std::sin(
          std::numbers::pi * (static_cast<double>(j) + 0.5) /
          static_cast<double>(pulse_len)));
      rail_i[start_i + j] += ai * shape;
    }
    if (k * 2 + 1 < chips.size()) {
      float aq = chips[k * 2 + 1] ? 1.0f : -1.0f;
      std::size_t start_q = k * pulse_len + spc;
      for (std::size_t j = 0; j < pulse_len; ++j) {
        auto shape = static_cast<float>(std::sin(
            std::numbers::pi * (static_cast<double>(j) + 0.5) /
            static_cast<double>(pulse_len)));
        rail_q[start_q + j] += aq * shape;
      }
    }
  }

  dsp::Samples out(total);
  for (std::size_t i = 0; i < total; ++i)
    out[i] = dsp::Complex{rail_i[i], rail_q[i]};
  return out;
}

std::vector<std::uint8_t> OqpskModem::slice_chips(std::span<const dsp::Complex> iq,
                                                  std::size_t offset) const {
  const std::uint32_t spc = config_.samples_per_chip;
  const std::size_t pulse_len = 2 * spc;
  std::vector<std::uint8_t> chips;
  for (std::size_t k = 0;; ++k) {
    std::size_t i_center = offset + k * pulse_len + pulse_len / 2;
    std::size_t q_center = i_center + spc;
    if (q_center >= iq.size()) break;
    chips.push_back(iq[i_center].real() > 0.0f ? 1 : 0);
    chips.push_back(iq[q_center].imag() > 0.0f ? 1 : 0);
  }
  return chips;
}

std::optional<std::vector<std::uint8_t>> OqpskModem::demodulate(
    std::span<const dsp::Complex> iq) const {
  const std::uint32_t spc = config_.samples_per_chip;
  const std::size_t pulse_len = 2 * spc;
  // Need at least the 6-symbol probe window plus slack.
  if (iq.size() < pulse_len * kChipsPerSymbol * 7) return std::nullopt;

  // Joint search over sample phase (rail grid alignment) and chip offset:
  // minimize total despreading distance over a probe window. A one-chip
  // stream misalignment appears as phase offset spc with rails swapped —
  // covered because slicing at phase spc reads what are actually Q pulses
  // on the real rail only for true odd shifts, which the chip-offset
  // search rejects by distance.
  std::size_t best_phase = 0, best_chip_off = 0;
  int best_cost = 1 << 30;
  for (std::size_t phase = 0; phase < pulse_len; ++phase) {
    auto chips = slice_chips(iq, phase);
    for (std::size_t chip_off = 0; chip_off + kChipsPerSymbol * 6 <
                                   chips.size();
         chip_off += 2) {
      if (chip_off >= kChipsPerSymbol) break;
      int cost = 0;
      for (std::size_t s = 0; s < 6; ++s) {
        std::uint32_t word = 0;
        for (std::size_t i = 0; i < kChipsPerSymbol; ++i)
          word |= static_cast<std::uint32_t>(
                      chips[chip_off + s * kChipsPerSymbol + i])
                  << i;
        cost += nearest_symbol_word(word).second;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_phase = phase;
        best_chip_off = chip_off;
      }
    }
  }

  auto chips = slice_chips(iq, best_phase);
  std::vector<std::uint8_t> symbols;
  for (std::size_t pos = best_chip_off;
       pos + kChipsPerSymbol <= chips.size(); pos += kChipsPerSymbol) {
    std::uint32_t word = 0;
    for (std::size_t i = 0; i < kChipsPerSymbol; ++i)
      word |= static_cast<std::uint32_t>(chips[pos + i]) << i;
    symbols.push_back(nearest_symbol_word(word).first);
  }

  // Hunt for the SFD nibbles (0x7 then 0xA) after at least two preamble
  // zeros; then PHR and PSDU follow.
  for (std::size_t i = 2; i + 4 < symbols.size(); ++i) {
    if (!(symbols[i] == 0x7 && symbols[i + 1] == 0xA)) continue;
    if (symbols[i - 1] != 0x0 || symbols[i - 2] != 0x0) continue;
    std::size_t pos = i + 2;
    if (pos + 2 > symbols.size()) return std::nullopt;
    std::uint8_t phr = static_cast<std::uint8_t>(symbols[pos] |
                                                 (symbols[pos + 1] << 4));
    pos += 2;
    std::size_t frame_len = phr & 0x7F;
    if (frame_len < 2 || frame_len > kMaxPsdu) continue;
    if (pos + frame_len * 2 > symbols.size()) return std::nullopt;
    std::vector<std::uint8_t> body;
    for (std::size_t b = 0; b < frame_len; ++b) {
      body.push_back(static_cast<std::uint8_t>(
          symbols[pos + b * 2] | (symbols[pos + b * 2 + 1] << 4)));
    }
    std::vector<std::uint8_t> psdu(body.begin(), body.end() - 2);
    std::uint16_t fcs = static_cast<std::uint16_t>(
        body[frame_len - 2] | (body[frame_len - 1] << 8));
    if (fcs16(psdu) == fcs) return psdu;
  }
  return std::nullopt;
}

Seconds OqpskModem::airtime(std::size_t psdu_bytes) const {
  // (preamble 4 + SFD 1 + PHR 1 + psdu + FCS 2) bytes at 2 symbols/byte,
  // 62.5 ksym/s.
  double symbols = static_cast<double>(4 + 1 + 1 + psdu_bytes + 2) * 2.0;
  return Seconds{symbols / 62500.0};
}

}  // namespace tinysdr::zigbee
