// Carrier-frequency-offset estimation and correction.
//
// The estimator is the conjugate-lag autocorrelation angle: for a capture
// x it forms S = sum_n x[n] * conj(x[n-L]) and reads the offset as
// arg(S) / (2*pi*L) cycles/sample. The lag L is the knob that adapts it
// per PHY:
//   - L = 1 for oversampled constant-envelope modulations (GFSK, O-QPSK,
//     DBPSK): in-symbol samples rotate by the CFO alone and dominate the
//     sum, transition samples average out;
//   - L = samples-per-symbol for LoRa: the repeated preamble upchirps
//     correlate coherently at exactly one symbol (Schmidl-&-Cox shape, the
//     lora-lite demod_symbol_peak_cfo pattern), data symbols decorrelate —
//     at critical sampling the lag-1 sum degenerates to ~0 because each
//     chirp's per-sample increments sweep the full circle.
// A modulation with an inherent mean rotation (NB-IoT's pi/2-BPSK) shows
// up as a constant bias; callers calibrate it once on a clean reference
// waveform (phy::measure_cfo_bias) and pass it here to subtract.
//
// Capture range is +-1/(2L) cycles/sample; estimates are pure functions of
// the input (double accumulation, no RNG), so repeated calls are
// byte-stable.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.hpp"

namespace tinysdr::dsp {

struct CfoEstimatorConfig {
  /// Autocorrelation lag in samples (>= 1; 0 is treated as 1).
  std::size_t lag = 1;
  /// Inherent modulation rotation (cycles/sample) subtracted from the raw
  /// angle — the zero-CFO reading of the target waveform.
  double bias_cycles_per_sample = 0.0;
  /// Nonlinearity order: 2 squares each sample before correlating (and
  /// halves the angle), stripping BPSK-family data flips — pi phase jumps
  /// become 2*pi and vanish, so the residual rotation is deterministic.
  /// The price is capture range: +-1/(2*L*power) cycles/sample. Values
  /// other than 1 or 2 are treated as 1.
  std::size_t power = 1;
};

/// Estimated offset in cycles/sample (0 when the capture is shorter than
/// the lag or carries no energy). Always finite.
[[nodiscard]] double estimate_cfo(std::span<const Complex> x,
                                  const CfoEstimatorConfig& config = {});

/// Rotate the capture by e^{j*(2*pi*f*n + phase0)} in place (n from 0 at
/// x[0]). Correct an estimated offset with mix_cfo(x, -estimate).
void mix_cfo(std::span<Complex> x, double cycles_per_sample,
             double start_phase_rad = 0.0);

}  // namespace tinysdr::dsp
