#include "dsp/nco.hpp"

#include <cmath>
#include <numbers>

namespace tinysdr::dsp {

SinCosLut::SinCosLut() {
  for (std::size_t i = 0; i < kSize; ++i) {
    double angle = 2.0 * std::numbers::pi * static_cast<double>(i) /
                   static_cast<double>(kSize);
    table_[i] = Complex{static_cast<float>(std::cos(angle)),
                        static_cast<float>(std::sin(angle))};
  }
}

const SinCosLut& SinCosLut::instance() {
  static const SinCosLut lut;
  return lut;
}

Samples generate_tone(double cycles_per_sample, std::size_t count,
                      std::uint32_t initial_phase) {
  Nco nco;
  nco.set_frequency(cycles_per_sample);
  nco.set_phase(initial_phase);
  Samples out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(nco.next());
  return out;
}

}  // namespace tinysdr::dsp
