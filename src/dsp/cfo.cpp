#include "dsp/cfo.hpp"

#include <cmath>
#include <numbers>

namespace tinysdr::dsp {

double estimate_cfo(std::span<const Complex> x,
                    const CfoEstimatorConfig& config) {
  const std::size_t lag = config.lag == 0 ? 1 : config.lag;
  const bool squared = config.power == 2;
  if (x.size() <= lag) return 0.0;
  double re = 0.0;
  double im = 0.0;
  for (std::size_t n = lag; n < x.size(); ++n) {
    Complex a = x[n];
    Complex b = x[n - lag];
    if (squared) {
      a *= a;
      b *= b;
    }
    const Complex p = a * std::conj(b);
    re += static_cast<double>(p.real());
    im += static_cast<double>(p.imag());
  }
  if (re == 0.0 && im == 0.0) return 0.0;
  const double raw = std::atan2(im, re) /
                     (2.0 * std::numbers::pi * static_cast<double>(lag) *
                      (squared ? 2.0 : 1.0));
  const double est = raw - config.bias_cycles_per_sample;
  return std::isfinite(est) ? est : 0.0;
}

void mix_cfo(std::span<Complex> x, double cycles_per_sample,
             double start_phase_rad) {
  if (cycles_per_sample == 0.0 && start_phase_rad == 0.0) return;
  const double step = 2.0 * std::numbers::pi * cycles_per_sample;
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double phi = start_phase_rad + step * static_cast<double>(n);
    x[n] *= Complex{static_cast<float>(std::cos(phi)),
                    static_cast<float>(std::sin(phi))};
  }
}

}  // namespace tinysdr::dsp
