// Gaussian pulse shaping for GFSK (BLE) modulation.
//
// BLE's GFSK is BFSK with a Gaussian filter applied to the rectangular
// frequency pulses (paper §4.2). The filter is characterised by its
// bandwidth-time product BT (0.5 for BLE) and the oversampling factor.
#pragma once

#include <vector>

namespace tinysdr::dsp {

/// Design a Gaussian pulse-shaping filter.
///
/// @param bt                  bandwidth-time product (BLE: 0.5)
/// @param samples_per_symbol  oversampling factor
/// @param span_symbols        filter length in symbol periods (typ. 3)
/// @returns taps normalised to unit sum (preserves frequency deviation)
[[nodiscard]] std::vector<double> design_gaussian(double bt,
                                                  std::size_t samples_per_symbol,
                                                  std::size_t span_symbols = 3);

/// Convolve a real-valued sequence with the given taps ("same" alignment is
/// NOT applied; output length = in + taps - 1, matching a hardware shift
/// register that flushes).
[[nodiscard]] std::vector<double> convolve(const std::vector<double>& in,
                                           const std::vector<double>& taps);

}  // namespace tinysdr::dsp
