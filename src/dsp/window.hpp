// Window functions for filter design and spectral analysis.
#pragma once

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace tinysdr::dsp {

enum class WindowKind { kRect, kHamming, kHann, kBlackman };

/// Generate a symmetric window of `n` taps.
[[nodiscard]] inline std::vector<double> make_window(WindowKind kind,
                                                     std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_window: n == 0");
  std::vector<double> w(n, 1.0);
  if (n == 1 || kind == WindowKind::kRect) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    double x = static_cast<double>(i) / denom;
    switch (kind) {
      case WindowKind::kRect:
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * x);
        break;
      case WindowKind::kHann:
        w[i] = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * x);
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(2.0 * std::numbers::pi * x) +
               0.08 * std::cos(4.0 * std::numbers::pi * x);
        break;
    }
  }
  return w;
}

/// Normalised sinc: sin(pi x)/(pi x).
[[nodiscard]] inline double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  double px = std::numbers::pi * x;
  return std::sin(px) / px;
}

}  // namespace tinysdr::dsp
