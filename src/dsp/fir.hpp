// FIR filter design and streaming application.
//
// The paper's LoRa demodulator front-end runs a 14-tap FIR low-pass after
// the I/Q deserializer; we replicate that with a windowed-sinc design of the
// same length and expose a streaming filter with the same group delay
// behaviour the FPGA pipeline has.
#pragma once

#include <span>
#include <vector>

#include "dsp/types.hpp"
#include "dsp/window.hpp"

namespace tinysdr::dsp {

/// Design a linear-phase low-pass FIR.
/// @param taps          filter length (paper uses 14)
/// @param cutoff_ratio  cutoff as a fraction of the sample rate, in (0, 0.5]
/// @param window        taper applied to the ideal sinc
[[nodiscard]] std::vector<float> design_lowpass(
    std::size_t taps, double cutoff_ratio,
    WindowKind window = WindowKind::kHamming);

/// Streaming FIR filter over complex samples.
class FirFilter {
 public:
  explicit FirFilter(std::vector<float> taps);

  [[nodiscard]] std::size_t tap_count() const { return taps_.size(); }
  [[nodiscard]] const std::vector<float>& taps() const { return taps_; }

  /// Process one sample, returning one output sample (direct form,
  /// zero-initialized state).
  [[nodiscard]] Complex process(Complex in);

  /// Filter a whole block (stateful: continues from previous calls).
  [[nodiscard]] Samples filter(std::span<const Complex> in);

  /// Reset internal delay line to zeros.
  void reset();

 private:
  std::vector<float> taps_;
  std::vector<Complex> delay_;
  std::size_t head_ = 0;
};

}  // namespace tinysdr::dsp
