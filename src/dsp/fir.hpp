// FIR filter design and streaming application.
//
// The paper's LoRa demodulator front-end runs a 14-tap FIR low-pass after
// the I/Q deserializer; we replicate that with a windowed-sinc design of the
// same length and expose a streaming filter with the same group delay
// behaviour the FPGA pipeline has.
#pragma once

#include <span>
#include <vector>

#include "dsp/types.hpp"
#include "dsp/window.hpp"

namespace tinysdr::dsp {

/// Design a linear-phase low-pass FIR.
/// @param taps          filter length (paper uses 14)
/// @param cutoff_ratio  cutoff as a fraction of the sample rate, in (0, 0.5]
/// @param window        taper applied to the ideal sinc
[[nodiscard]] std::vector<float> design_lowpass(
    std::size_t taps, double cutoff_ratio,
    WindowKind window = WindowKind::kHamming);

/// Streaming FIR filter over complex samples.
class FirFilter {
 public:
  explicit FirFilter(std::vector<float> taps);

  [[nodiscard]] std::size_t tap_count() const { return taps_.size(); }
  [[nodiscard]] const std::vector<float>& taps() const { return taps_; }

  /// Process one sample, returning one output sample (direct form,
  /// zero-initialized state).
  [[nodiscard]] Complex process(Complex in);

  /// Filter a whole block (stateful: continues from previous calls).
  [[nodiscard]] Samples filter(std::span<const Complex> in);

  /// Filter `in` into caller-owned storage (out.size() >= in.size()),
  /// continuing from previous calls with the same state semantics as
  /// filter()/process(). Each output accumulates taps in the same
  /// ascending order as process(), but over a contiguous history scratch
  /// with a vectorizable tap-outer inner loop and no allocation, so
  /// results can differ from the per-sample path in the last ulp (FMA
  /// contraction). Chunking is invisible: any split of a stream through
  /// filter_into produces identical bytes. This is the streaming engine's
  /// hot path (flow::FirBlock writes straight into a ring's WriteView).
  void filter_into(std::span<const Complex> in, std::span<Complex> out);

  /// Reset internal delay line to zeros.
  void reset();

 private:
  std::vector<float> taps_;
  std::vector<Complex> delay_;
  std::size_t head_ = 0;
  std::vector<Complex> scratch_;  ///< filter_into history + block staging
};

}  // namespace tinysdr::dsp
