#include "dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace tinysdr::dsp {

std::vector<SpectrumPoint> estimate_spectrum(std::span<const Complex> samples,
                                             const SpectrumConfig& config) {
  const std::size_t n = config.fft_size;
  if (!is_power_of_two(n))
    throw std::invalid_argument("estimate_spectrum: fft_size not pow2");
  if (samples.size() < n)
    throw std::invalid_argument("estimate_spectrum: too few samples");

  FftPlan plan{n};
  auto window = make_window(config.window, n);
  double coherent_gain = 0.0;
  for (double w : window) coherent_gain += w;

  std::vector<double> accum(n, 0.0);
  std::size_t segments = 0;
  const std::size_t hop = n / 2;
  for (std::size_t start = 0; start + n <= samples.size(); start += hop) {
    Samples seg(n);
    for (std::size_t i = 0; i < n; ++i)
      seg[i] = samples[start + i] * static_cast<float>(window[i]);
    plan.forward(seg);
    for (std::size_t i = 0; i < n; ++i)
      accum[i] += static_cast<double>(std::norm(seg[i]));
    ++segments;
  }

  // Normalise by the window's coherent gain so a full-scale (unit
  // amplitude) tone lands at config.full_scale_dbm, the way a spectrum
  // analyzer's marker reads tone power.
  const double norm =
      static_cast<double>(segments) * coherent_gain * coherent_gain;

  std::vector<SpectrumPoint> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    // FFT bin i maps to frequency offsets [0, fs) -> wrap to [-fs/2, fs/2).
    double bin_freq = static_cast<double>(i) / static_cast<double>(n) *
                      config.sample_rate_hz;
    if (bin_freq >= config.sample_rate_hz / 2.0)
      bin_freq -= config.sample_rate_hz;
    double linear = accum[i] / norm;
    double dbm = config.full_scale_dbm +
                 10.0 * std::log10(std::max(linear, 1e-30));
    out[i] = SpectrumPoint{config.center_frequency_hz + bin_freq, dbm};
  }
  std::sort(out.begin(), out.end(),
            [](const SpectrumPoint& a, const SpectrumPoint& b) {
              return a.frequency_hz < b.frequency_hz;
            });
  return out;
}

SpectrumPoint spectrum_peak(const std::vector<SpectrumPoint>& spectrum) {
  if (spectrum.empty())
    throw std::invalid_argument("spectrum_peak: empty spectrum");
  return *std::max_element(spectrum.begin(), spectrum.end(),
                           [](const SpectrumPoint& a, const SpectrumPoint& b) {
                             return a.power_dbm < b.power_dbm;
                           });
}

double spurious_free_range_db(const std::vector<SpectrumPoint>& spectrum,
                              std::size_t exclusion_bins) {
  if (spectrum.size() < 2 * exclusion_bins + 2)
    throw std::invalid_argument("spurious_free_range_db: spectrum too small");
  std::size_t peak_idx = 0;
  for (std::size_t i = 1; i < spectrum.size(); ++i)
    if (spectrum[i].power_dbm > spectrum[peak_idx].power_dbm) peak_idx = i;

  double next_best = -1e30;
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    std::size_t dist = i > peak_idx ? i - peak_idx : peak_idx - i;
    if (dist <= exclusion_bins) continue;
    next_best = std::max(next_best, spectrum[i].power_dbm);
  }
  return spectrum[peak_idx].power_dbm - next_best;
}

}  // namespace tinysdr::dsp
