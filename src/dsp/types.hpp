// Core sample types for the DSP layer.
#pragma once

#include <complex>
#include <vector>

namespace tinysdr::dsp {

/// Baseband I/Q sample. Single precision: the hardware path is 13-bit, so
/// float's 24-bit mantissa has ample headroom.
using Complex = std::complex<float>;

/// A contiguous run of baseband samples.
using Samples = std::vector<Complex>;

/// Average power (|x|^2 mean) of a sample block.
[[nodiscard]] inline double mean_power(const Samples& x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& s : x) acc += static_cast<double>(std::norm(s));
  return acc / static_cast<double>(x.size());
}

/// Scale a block so its mean power becomes `target`.
inline void normalize_power(Samples& x, double target = 1.0) {
  double p = mean_power(x);
  if (p <= 0.0) return;
  auto k = static_cast<float>(std::sqrt(target / p));
  for (auto& s : x) s *= k;
}

}  // namespace tinysdr::dsp
