#include "dsp/fir.hpp"

#include <stdexcept>

#include "obs/profile.hpp"

namespace tinysdr::dsp {
namespace {

// One cache-resident tile of the block FIR, over flattened I/Q floats:
// tap-outer, sample-inner, so every inner loop is a stride-1
// multiply-accumulate. Each output element still receives its taps in
// ascending-k order — the same operand values and order as process()
// (modulo FMA contraction) — and the loop shape is identical for every
// chunking, so splitting a stream across calls cannot change the bytes.
//
// restrict is sound: dst is caller storage, base points into either the
// filter's private scratch copy or the caller's input — never the
// output. On x86-64 the kernel gets an AVX2+FMA variant selected once
// at runtime by feature check (not target_clones("arch=..."), which
// dispatches on CPU *model* and misses other AVX2 parts); the baseline
// build keeps old machines working.
[[gnu::always_inline]] inline void fir_tile_body(
    float* __restrict__ dst, const float* __restrict__ base,
    const float* taps, std::size_t tap_count, std::size_t len) {
  const float t0 = taps[0];
  for (std::size_t j = 0; j < len; ++j) dst[j] = base[j] * t0;
  for (std::size_t k = 1; k < tap_count; ++k) {
    const float t = taps[k];
    const float* __restrict__ src = base - 2 * k;
    for (std::size_t j = 0; j < len; ++j) dst[j] += src[j] * t;
  }
}

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
__attribute__((target("avx2,fma"))) void fir_tile_avx2(
    float* __restrict__ dst, const float* __restrict__ base,
    const float* taps, std::size_t tap_count, std::size_t len) {
  fir_tile_body(dst, base, taps, tap_count, len);
}
#endif

void fir_tile(float* __restrict__ dst, const float* __restrict__ base,
              const float* taps, std::size_t tap_count, std::size_t len) {
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
  static const bool kHasAvx2 =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (kHasAvx2) {
    fir_tile_avx2(dst, base, taps, tap_count, len);
    return;
  }
#endif
  fir_tile_body(dst, base, taps, tap_count, len);
}

}  // namespace

std::vector<float> design_lowpass(std::size_t taps, double cutoff_ratio,
                                  WindowKind window) {
  if (taps == 0) throw std::invalid_argument("design_lowpass: taps == 0");
  if (cutoff_ratio <= 0.0 || cutoff_ratio > 0.5)
    throw std::invalid_argument("design_lowpass: cutoff must be in (0, 0.5]");

  auto win = make_window(window, taps);
  std::vector<float> h(taps);
  double center = (static_cast<double>(taps) - 1.0) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    double x = static_cast<double>(i) - center;
    double ideal = 2.0 * cutoff_ratio * sinc(2.0 * cutoff_ratio * x);
    double v = ideal * win[i];
    h[i] = static_cast<float>(v);
    sum += v;
  }
  // Normalise for unity DC gain so signal power is preserved in-band.
  if (sum != 0.0) {
    for (auto& t : h) t = static_cast<float>(t / sum);
  }
  return h;
}

FirFilter::FirFilter(std::vector<float> taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: empty taps");
  delay_.assign(taps_.size(), Complex{0.0f, 0.0f});
}

Complex FirFilter::process(Complex in) {
  delay_[head_] = in;
  Complex acc{0.0f, 0.0f};
  std::size_t idx = head_;
  for (float tap : taps_) {
    acc += delay_[idx] * tap;
    idx = (idx == 0) ? delay_.size() - 1 : idx - 1;
  }
  head_ = (head_ + 1) % delay_.size();
  return acc;
}

Samples FirFilter::filter(std::span<const Complex> in) {
  Samples out(in.size());
  filter_into(in, out);
  return out;
}

void FirFilter::filter_into(std::span<const Complex> in,
                            std::span<Complex> out) {
  if (out.size() < in.size())
    throw std::invalid_argument("FirFilter::filter_into: out too small");
  if (in.empty()) return;
  obs::ProfileScope prof{"fir"};

  const std::size_t T = taps_.size();
  const std::size_t n = in.size();

  // Only the first T-1 outputs reach back before `in`; stage those on a
  // short contiguous timeline (delay history + head of the block). Every
  // later output reads exclusively from `in`, so the kernel runs over
  // the caller's storage directly — zero staging for the bulk of the
  // stream. Requires in/out to be disjoint (ring views and fresh
  // vectors always are); overlapping calls take the staged path for the
  // whole block.
  const std::size_t head = std::min(n, T - 1);
  const bool overlap =
      in.data() < out.data() + n && out.data() < in.data() + n;
  const std::size_t staged = overlap ? n : head;
  scratch_.resize((T - 1) + staged);
  for (std::size_t j = 0; j + 1 < T; ++j)
    scratch_[j] = delay_[(head_ + 1 + j) % T];
  std::copy(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(staged),
            scratch_.begin() + (T - 1));

  // Tiled fir_tile passes keep the output hot in cache across all T
  // taps. std::complex<float> is layout-compatible with float[2].
  const float* sf = reinterpret_cast<const float*>(scratch_.data() + (T - 1));
  const float* xf = reinterpret_cast<const float*>(in.data());
  float* of = reinterpret_cast<float*>(out.data());
  constexpr std::size_t kTile = 2048;
  for (std::size_t i0 = 0; i0 < staged; i0 += kTile) {
    const std::size_t len = 2 * std::min(kTile, staged - i0);
    fir_tile(of + 2 * i0, sf + 2 * i0, taps_.data(), T, len);
  }
  for (std::size_t i0 = staged; i0 < n; i0 += kTile) {
    const std::size_t len = 2 * std::min(kTile, n - i0);
    fir_tile(of + 2 * i0, xf + 2 * i0, taps_.data(), T, len);
  }

  // Leave the delay line exactly as n process() calls would have.
  for (std::size_t m = 1; m <= std::min(T, n); ++m)
    delay_[(head_ + n - m) % T] = in[n - m];
  head_ = (head_ + n) % T;
}

void FirFilter::reset() {
  std::fill(delay_.begin(), delay_.end(), Complex{0.0f, 0.0f});
  head_ = 0;
}

}  // namespace tinysdr::dsp
