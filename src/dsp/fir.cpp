#include "dsp/fir.hpp"

#include <stdexcept>

#include "obs/profile.hpp"

namespace tinysdr::dsp {

std::vector<float> design_lowpass(std::size_t taps, double cutoff_ratio,
                                  WindowKind window) {
  if (taps == 0) throw std::invalid_argument("design_lowpass: taps == 0");
  if (cutoff_ratio <= 0.0 || cutoff_ratio > 0.5)
    throw std::invalid_argument("design_lowpass: cutoff must be in (0, 0.5]");

  auto win = make_window(window, taps);
  std::vector<float> h(taps);
  double center = (static_cast<double>(taps) - 1.0) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    double x = static_cast<double>(i) - center;
    double ideal = 2.0 * cutoff_ratio * sinc(2.0 * cutoff_ratio * x);
    double v = ideal * win[i];
    h[i] = static_cast<float>(v);
    sum += v;
  }
  // Normalise for unity DC gain so signal power is preserved in-band.
  if (sum != 0.0) {
    for (auto& t : h) t = static_cast<float>(t / sum);
  }
  return h;
}

FirFilter::FirFilter(std::vector<float> taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: empty taps");
  delay_.assign(taps_.size(), Complex{0.0f, 0.0f});
}

Complex FirFilter::process(Complex in) {
  delay_[head_] = in;
  Complex acc{0.0f, 0.0f};
  std::size_t idx = head_;
  for (float tap : taps_) {
    acc += delay_[idx] * tap;
    idx = (idx == 0) ? delay_.size() - 1 : idx - 1;
  }
  head_ = (head_ + 1) % delay_.size();
  return acc;
}

Samples FirFilter::filter(std::span<const Complex> in) {
  obs::ProfileScope prof{"fir"};
  Samples out;
  out.reserve(in.size());
  for (Complex s : in) out.push_back(process(s));
  return out;
}

void FirFilter::reset() {
  std::fill(delay_.begin(), delay_.end(), Complex{0.0f, 0.0f});
  head_ = 0;
}

}  // namespace tinysdr::dsp
