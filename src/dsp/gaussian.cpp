#include "dsp/gaussian.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tinysdr::dsp {

std::vector<double> design_gaussian(double bt, std::size_t samples_per_symbol,
                                    std::size_t span_symbols) {
  if (bt <= 0.0) throw std::invalid_argument("design_gaussian: bt <= 0");
  if (samples_per_symbol == 0)
    throw std::invalid_argument("design_gaussian: sps == 0");
  if (span_symbols == 0)
    throw std::invalid_argument("design_gaussian: span == 0");

  // Standard GMSK formulation: h(t) ∝ exp(-(2*pi^2*B^2 / ln 2) t^2) with
  // B = bt / T; sampled at sps per symbol over span symbols (odd length).
  const std::size_t n = span_symbols * samples_per_symbol + 1;
  std::vector<double> h(n);
  const double sps = static_cast<double>(samples_per_symbol);
  const double alpha =
      2.0 * std::numbers::pi * std::numbers::pi * bt * bt / std::log(2.0);
  const double center = static_cast<double>(n - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double t = (static_cast<double>(i) - center) / sps;  // in symbol periods
    h[i] = std::exp(-alpha * t * t);
    sum += h[i];
  }
  for (auto& v : h) v /= sum;
  return h;
}

std::vector<double> convolve(const std::vector<double>& in,
                             const std::vector<double>& taps) {
  if (in.empty() || taps.empty()) return {};
  std::vector<double> out(in.size() + taps.size() - 1, 0.0);
  for (std::size_t i = 0; i < in.size(); ++i)
    for (std::size_t j = 0; j < taps.size(); ++j) out[i + j] += in[i] * taps[j];
  return out;
}

}  // namespace tinysdr::dsp
