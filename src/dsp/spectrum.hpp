// Power spectrum estimation (Welch periodogram) used to reproduce the
// paper's Fig. 8 single-tone spectrum measurement.
#pragma once

#include <span>
#include <vector>

#include "dsp/types.hpp"
#include "dsp/window.hpp"

namespace tinysdr::dsp {

struct SpectrumPoint {
  double frequency_hz;  ///< absolute RF frequency (center + offset)
  double power_dbm;     ///< estimated power in that bin
};

struct SpectrumConfig {
  std::size_t fft_size = 4096;
  double sample_rate_hz = 4e6;
  double center_frequency_hz = 0.0;
  /// Power calibration: dBm corresponding to a full-scale tone.
  double full_scale_dbm = 0.0;
  WindowKind window = WindowKind::kHann;
};

/// Welch-averaged periodogram over 50%-overlapped segments.
[[nodiscard]] std::vector<SpectrumPoint> estimate_spectrum(
    std::span<const Complex> samples, const SpectrumConfig& config);

/// Highest-power point of a spectrum.
[[nodiscard]] SpectrumPoint spectrum_peak(
    const std::vector<SpectrumPoint>& spectrum);

/// Ratio (dB) between the peak and the strongest point at least
/// `exclusion_bins` away from it — a spurious-free dynamic range proxy used
/// to verify "no unexpected harmonics" (Fig. 8).
[[nodiscard]] double spurious_free_range_db(
    const std::vector<SpectrumPoint>& spectrum, std::size_t exclusion_bins);

}  // namespace tinysdr::dsp
