// Radix-2 iterative FFT with cached twiddle factors.
//
// The LoRa demodulator (paper Fig. 6b) uses a Lattice FFT IP core sized
// 2^SF; this is our software equivalent. Plans are cached per size the way
// the FPGA instantiates one core per configuration.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.hpp"

namespace tinysdr::dsp {

/// Pre-planned FFT of a fixed power-of-two size.
class FftPlan {
 public:
  /// @throws std::invalid_argument if size is not a power of two >= 2.
  explicit FftPlan(std::size_t size);

  [[nodiscard]] std::size_t size() const { return size_; }

  /// In-place forward DFT (no scaling).
  void forward(std::span<Complex> data) const;

  /// In-place inverse DFT (scaled by 1/N).
  void inverse(std::span<Complex> data) const;

  /// Out-of-place convenience.
  [[nodiscard]] Samples forward_copy(std::span<const Complex> data) const;

 private:
  void transform(std::span<Complex> data, bool invert) const;

  std::size_t size_;
  std::vector<std::size_t> bitrev_;
  std::vector<Complex> twiddles_;      // forward
  std::vector<Complex> inv_twiddles_;  // inverse
};

[[nodiscard]] constexpr bool is_power_of_two(std::size_t n) {
  return n >= 1 && (n & (n - 1)) == 0;
}

/// Index of the FFT bin with the largest magnitude.
[[nodiscard]] std::size_t peak_bin(std::span<const Complex> spectrum);

/// Magnitude of the largest bin.
[[nodiscard]] double peak_magnitude(std::span<const Complex> spectrum);

}  // namespace tinysdr::dsp
