#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "obs/profile.hpp"

namespace tinysdr::dsp {

FftPlan::FftPlan(std::size_t size) : size_(size) {
  if (size < 2 || !is_power_of_two(size))
    throw std::invalid_argument("FftPlan: size must be a power of two >= 2");

  bitrev_.resize(size);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < size) ++log2n;
  for (std::size_t i = 0; i < size; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b)
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (log2n - 1 - b);
    bitrev_[i] = r;
  }

  twiddles_.resize(size / 2);
  inv_twiddles_.resize(size / 2);
  for (std::size_t k = 0; k < size / 2; ++k) {
    double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                   static_cast<double>(size);
    twiddles_[k] = Complex{static_cast<float>(std::cos(angle)),
                           static_cast<float>(std::sin(angle))};
    inv_twiddles_[k] = std::conj(twiddles_[k]);
  }
}

void FftPlan::transform(std::span<Complex> data, bool invert) const {
  obs::ProfileScope prof{"fft"};
  if (data.size() != size_)
    throw std::invalid_argument("FftPlan::transform: size mismatch");

  for (std::size_t i = 0; i < size_; ++i) {
    std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }

  const auto& tw = invert ? inv_twiddles_ : twiddles_;
  for (std::size_t len = 2; len <= size_; len <<= 1) {
    std::size_t half = len >> 1;
    std::size_t step = size_ / len;
    for (std::size_t start = 0; start < size_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        Complex w = tw[k * step];
        Complex u = data[start + k];
        Complex v = data[start + k + half] * w;
        data[start + k] = u + v;
        data[start + k + half] = u - v;
      }
    }
  }

  if (invert) {
    auto scale = static_cast<float>(1.0 / static_cast<double>(size_));
    for (auto& x : data) x *= scale;
  }
}

void FftPlan::forward(std::span<Complex> data) const { transform(data, false); }

void FftPlan::inverse(std::span<Complex> data) const { transform(data, true); }

Samples FftPlan::forward_copy(std::span<const Complex> data) const {
  Samples out(data.begin(), data.end());
  forward(out);
  return out;
}

std::size_t peak_bin(std::span<const Complex> spectrum) {
  std::size_t best = 0;
  float best_mag = -1.0f;
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    float m = std::norm(spectrum[i]);
    if (m > best_mag) {
      best_mag = m;
      best = i;
    }
  }
  return best;
}

double peak_magnitude(std::span<const Complex> spectrum) {
  double best = 0.0;
  for (const auto& s : spectrum)
    best = std::max(best, static_cast<double>(std::abs(s)));
  return best;
}

}  // namespace tinysdr::dsp
