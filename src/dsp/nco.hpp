// Numerically controlled oscillator, mirroring the FPGA implementation.
//
// The paper's chirp generator uses "a squared phase accumulator and two
// lookup tables for Sin and Cos" (§4.1). We model exactly that: a 32-bit
// fixed-point phase accumulator addressing quarter-wave-symmetric LUTs,
// so quantization behaviour matches a hardware DDS rather than calling
// std::sin per sample.
#pragma once

#include <array>
#include <cstdint>

#include "dsp/types.hpp"

namespace tinysdr::dsp {

/// Shared sin/cos lookup table (a DDS "phase-to-amplitude converter").
/// 12-bit table depth and 16-bit sample amplitude — comfortably above the
/// radio's 13-bit DAC so the LUT is not the limiting quantizer.
class SinCosLut {
 public:
  static constexpr std::size_t kAddressBits = 12;
  static constexpr std::size_t kSize = std::size_t{1} << kAddressBits;

  SinCosLut();

  /// Look up by the top bits of a 32-bit phase word.
  [[nodiscard]] Complex lookup(std::uint32_t phase) const {
    auto index =
        static_cast<std::size_t>(phase >> (32 - kAddressBits)) & (kSize - 1);
    return table_[index];
  }

  /// Process-wide shared instance (the FPGA has one ROM, too).
  [[nodiscard]] static const SinCosLut& instance();

 private:
  std::array<Complex, kSize> table_;
};

/// Phase-accumulator oscillator: phase += step every sample, where
/// step = freq/sample_rate * 2^32.
class Nco {
 public:
  Nco() = default;

  /// Set the frequency as a fraction of the sample rate in [-0.5, 0.5).
  void set_frequency(double cycles_per_sample) {
    step_ = to_step(cycles_per_sample);
  }

  void set_phase(std::uint32_t phase) { phase_ = phase; }
  [[nodiscard]] std::uint32_t phase() const { return phase_; }

  /// Produce the next complex exponential sample and advance.
  [[nodiscard]] Complex next() {
    Complex out = SinCosLut::instance().lookup(phase_);
    phase_ += step_;
    return out;
  }

  [[nodiscard]] static std::uint32_t to_step(double cycles_per_sample) {
    // Wrap into [0,1) then scale to the 32-bit phase circle.
    double f = cycles_per_sample - std::floor(cycles_per_sample);
    return static_cast<std::uint32_t>(f * 4294967296.0);
  }

 private:
  std::uint32_t phase_ = 0;
  std::uint32_t step_ = 0;
};

/// Generate `count` samples of a complex tone at the given normalized
/// frequency (cycles per sample).
[[nodiscard]] Samples generate_tone(double cycles_per_sample,
                                    std::size_t count,
                                    std::uint32_t initial_phase = 0);

}  // namespace tinysdr::dsp
