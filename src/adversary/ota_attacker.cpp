#include "adversary/ota_attacker.hpp"

namespace tinysdr::adversary {

bool ScriptedAttacker::jam_packet(ota::OtaPacketType /*type*/,
                                  std::size_t /*wire_bytes*/) {
  if (!rng_.next_bool(plan_.jam_rate)) return false;
  ++counters_.jams;
  return true;
}

bool ScriptedAttacker::forge_ack(ota::OtaPacketType /*type*/) {
  if (!rng_.next_bool(plan_.forge_ack_rate)) return false;
  ++counters_.forged_acks;
  return true;
}

bool ScriptedAttacker::truncate_chunk(std::uint16_t /*seq*/) {
  if (!rng_.next_bool(plan_.truncate_rate)) return false;
  ++counters_.truncations;
  return true;
}

bool ScriptedAttacker::replay_chunk(std::uint16_t /*seq*/) {
  if (!rng_.next_bool(plan_.replay_rate)) return false;
  ++counters_.replays;
  return true;
}

std::function<std::unique_ptr<ota::LinkAttacker>(std::uint64_t)>
attacker_factory(OtaAttackPlan plan) {
  return [plan](std::uint64_t node_seed) {
    OtaAttackPlan node_plan = plan;
    node_plan.seed = plan.seed ^ node_seed;  // distinct stream per node
    return std::make_unique<ScriptedAttacker>(node_plan);
  };
}

}  // namespace tinysdr::adversary
