// Multi-PHY coexistence matrix: every registry PHY as victim against
// every registry PHY as co-channel interferer (shared-band coexistence
// after the 802.15.4 SDR transceiver literature, arXiv:1304.8028).
//
// Built on the Fig. 15 interference machinery: each (victim, interferer)
// cell runs phy::LinkSimulator with a PhyTxInterferer superposed at a
// configurable power offset, next to a clean reference cell per victim,
// so the matrix reads as PER penalty attributable to the interferer.
//
// Modeling note: the interferer waveform is superposed at the victim's
// sample rate over the victim frame's extent (channel::superpose
// truncates to the victim's length) — a co-channel, rate-matched
// abstraction of two radios keyed up in one band, not a full multi-rate
// band simulation.
//
// Cells shard across exec::parallel_for with per-cell metric shards
// merged in cell order: results and telemetry are byte-identical for a
// fixed base seed at any thread count.
#pragma once

#include <optional>
#include <vector>

#include "exec/policy.hpp"
#include "phy/link_sim.hpp"
#include "phy/registry.hpp"

namespace tinysdr::adversary {

struct CoexistenceConfig {
  std::size_t trials = 4;
  std::size_t payload_bytes = 12;
  /// Victim receive power; strong enough that every registry PHY decodes
  /// cleanly without interference.
  Dbm rssi{-85.0};
  /// Interferer power relative to the victim (0 = equal power).
  double interferer_offset_db = 0.0;
  std::uint64_t base_seed = 0xC0E1;
};

/// One matrix cell: `interferer == nullopt` is the victim's clean
/// reference run.
struct CoexistenceCell {
  phy::Protocol victim{};
  std::optional<phy::Protocol> interferer;
  phy::PointResult result;
};

struct CoexistenceMatrix {
  CoexistenceConfig config;
  std::vector<phy::Protocol> protocols;  ///< registry order
  /// Victim-major: for each victim, its clean cell then one cell per
  /// interferer in registry order.
  std::vector<CoexistenceCell> cells;

  [[nodiscard]] const phy::PointResult* find(
      phy::Protocol victim, std::optional<phy::Protocol> interferer) const;

  /// PER added by the interferer over the victim's clean reference.
  [[nodiscard]] double per_penalty(phy::Protocol victim,
                                   phy::Protocol interferer) const;
};

/// Run the full matrix over `registry` (default: the builtin five-PHY
/// table): per victim one clean cell plus one cell per interferer.
[[nodiscard]] CoexistenceMatrix run_coexistence_matrix(
    const CoexistenceConfig& config = {},
    const exec::ExecPolicy& policy = {},
    const phy::Registry& registry = phy::Registry::builtin());

}  // namespace tinysdr::adversary
