// Seeded RF attacker models (ROADMAP item 5; attack shapes after the
// BLE/Zigbee SDR penetration-testing literature, arXiv:1902.08595).
//
// Three jammer archetypes, all phy::Interferer implementations pluggable
// into phy::LinkSimulator's interferer list:
//
//   ReactiveJammer — listens for the victim's preamble energy and keys up
//     after a reaction latency, the hardest jammer to dodge;
//   SweepJammer    — a chirped tone sweeping the band, hitting any victim
//     channel once per sweep period;
//   PulsedJammer   — duty-cycled wideband noise bursts, the classic
//     low-energy disruptor.
//
// Emitted waveforms are unit power where active; the simulator scales
// them to the attached slot's receive power. All per-trial randomness
// comes from the RNG the simulator hands emit() (seeded per point/trial/
// slot), so jammed sweeps stay byte-identical at any thread count. Jam
// activity is reported through the thread-local obs registry as
// adversary.jam_samples / adversary.reactive_triggers counters, merged
// deterministically with the per-point metric shards.
#pragma once

#include <cstddef>

#include "phy/link_sim.hpp"

namespace tinysdr::adversary {

/// Energy-detecting jammer: integrates |x|^2 over a sliding window of the
/// victim signal, and once the mean crosses the threshold (the preamble
/// ramping up), keys up `reaction_latency` samples later.
struct ReactiveJammerConfig {
  /// Mean |x|^2 over the window that counts as "signal present". The
  /// victim waveform is unit power where active, so 0.05 triggers on the
  /// first window that overlaps the preamble.
  double detect_threshold = 0.05;
  /// Samples of energy integration per detection window.
  std::size_t detect_window = 32;
  /// Samples between detection and RF-on (receiver turnaround).
  std::size_t reaction_latency = 64;
  /// Jam burst length in samples; 0 = jam to the end of the frame.
  std::size_t burst_samples = 0;
};

class ReactiveJammer final : public phy::Interferer {
 public:
  explicit ReactiveJammer(ReactiveJammerConfig config = {})
      : config_(config) {}

  [[nodiscard]] const ReactiveJammerConfig& config() const { return config_; }

  void emit(std::span<const dsp::Complex> signal, dsp::Samples& out,
            Rng& rng) const override;

 private:
  ReactiveJammerConfig config_;
};

/// Sync-preamble-targeting jammer: finds the victim's signal onset by
/// per-sample energy and keys up ONLY over the sync/preamble region at
/// the head of the frame, then goes quiet again. Far cheaper in jam
/// energy than a whole-burst jammer, yet just as deadly against
/// receivers that need a clean preamble to synchronize — the classic
/// low-duty attack on LoRa/BLE sync words.
struct SyncJammerConfig {
  /// Per-sample |x|^2 that counts as "frame started". Victim waveforms
  /// are unit power where active, so 0.05 triggers on the first active
  /// sample (leading pad is pure silence).
  double detect_threshold = 0.05;
  /// Length of the sync/preamble window to jam, in samples, measured
  /// from the detected onset.
  std::size_t preamble_samples = 256;
  /// Samples between onset and RF-on (detector turnaround). Part of the
  /// preamble window — the jam still ends preamble_samples after onset.
  std::size_t reaction_latency = 0;
};

class SyncJammer final : public phy::Interferer {
 public:
  explicit SyncJammer(SyncJammerConfig config = {}) : config_(config) {}

  [[nodiscard]] const SyncJammerConfig& config() const { return config_; }

  void emit(std::span<const dsp::Complex> signal, dsp::Samples& out,
            Rng& rng) const override;

 private:
  SyncJammerConfig config_;
};

/// Swept-tone jammer: a unit-amplitude chirp cycling linearly from f_lo
/// to f_hi (normalized cycles/sample) once per `period_samples`, with a
/// random per-trial phase in the sweep so victims at different offsets
/// all get hit.
struct SweepJammerConfig {
  double f_lo = -0.45;
  double f_hi = 0.45;
  std::size_t period_samples = 4096;
};

class SweepJammer final : public phy::Interferer {
 public:
  explicit SweepJammer(SweepJammerConfig config = {}) : config_(config) {}

  [[nodiscard]] const SweepJammerConfig& config() const { return config_; }

  void emit(std::span<const dsp::Complex> signal, dsp::Samples& out,
            Rng& rng) const override;

 private:
  SweepJammerConfig config_;
};

/// Duty-cycled noise jammer: wideband unit-power noise for
/// duty * period_samples out of every period, off otherwise. The burst
/// phase is drawn per trial so frames land at every alignment.
struct PulsedJammerConfig {
  std::size_t period_samples = 2048;
  double duty = 0.25;
};

class PulsedJammer final : public phy::Interferer {
 public:
  explicit PulsedJammer(PulsedJammerConfig config = {}) : config_(config) {}

  [[nodiscard]] const PulsedJammerConfig& config() const { return config_; }

  void emit(std::span<const dsp::Complex> signal, dsp::Samples& out,
            Rng& rng) const override;

 private:
  PulsedJammerConfig config_;
};

}  // namespace tinysdr::adversary
