#include "adversary/jammer.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>

#include "obs/metrics.hpp"

namespace tinysdr::adversary {

namespace {

// Unit-power complex white noise: each component at sigma = 1/sqrt(2).
dsp::Complex noise_sample(Rng& rng) {
  constexpr double kInvSqrt2 = 0.7071067811865476;
  return {static_cast<float>(rng.next_gaussian() * kInvSqrt2),
          static_cast<float>(rng.next_gaussian() * kInvSqrt2)};
}

void record_jam(std::size_t samples) {
  if (samples == 0) return;
  if (auto* m = obs::metrics())
    m->counter("adversary.jam_samples").add(static_cast<double>(samples));
}

}  // namespace

void ReactiveJammer::emit(std::span<const dsp::Complex> signal,
                          dsp::Samples& out, Rng& rng) const {
  const std::size_t window = std::max<std::size_t>(config_.detect_window, 1);
  // Find the first detection window whose mean energy crosses threshold.
  std::size_t detect_at = signal.size();
  double energy = 0.0;
  for (std::size_t n = 0; n < signal.size(); ++n) {
    energy += std::norm(signal[n]);
    if (n >= window) energy -= std::norm(signal[n - window]);
    if (n + 1 >= window &&
        energy / static_cast<double>(window) >= config_.detect_threshold) {
      detect_at = n + 1;
      break;
    }
  }
  if (detect_at >= signal.size()) return;  // never triggered: stay silent

  std::size_t start =
      std::min(detect_at + config_.reaction_latency, signal.size());
  std::size_t stop = config_.burst_samples == 0
                         ? signal.size()
                         : std::min(start + config_.burst_samples,
                                    signal.size());
  if (start >= stop) return;

  out.assign(start, dsp::Complex{0.0f, 0.0f});
  for (std::size_t n = start; n < stop; ++n) out.push_back(noise_sample(rng));

  if (auto* m = obs::metrics()) m->counter("adversary.reactive_triggers").add();
  record_jam(stop - start);
}

void SyncJammer::emit(std::span<const dsp::Complex> signal,
                      dsp::Samples& out, Rng& rng) const {
  // Onset = first sample with energy above threshold (frames arrive with
  // a silent leading pad, so this lands on the first preamble sample).
  std::size_t onset = signal.size();
  for (std::size_t n = 0; n < signal.size(); ++n) {
    if (std::norm(signal[n]) >= config_.detect_threshold) {
      onset = n;
      break;
    }
  }
  if (onset >= signal.size()) return;  // no frame: stay silent

  const std::size_t start =
      std::min(onset + config_.reaction_latency, signal.size());
  const std::size_t stop =
      std::min(onset + config_.preamble_samples, signal.size());
  if (start >= stop) return;

  out.assign(start, dsp::Complex{0.0f, 0.0f});
  for (std::size_t n = start; n < stop; ++n) out.push_back(noise_sample(rng));
  // Quiet again for the rest of the frame: out stays short of
  // signal.size(), and the simulator treats missing tail samples as
  // silence — the payload region is untouched.

  if (auto* m = obs::metrics()) m->counter("adversary.sync_triggers").add();
  record_jam(stop - start);
}

void SweepJammer::emit(std::span<const dsp::Complex> signal,
                       dsp::Samples& out, Rng& rng) const {
  if (signal.empty()) return;
  const std::size_t period = std::max<std::size_t>(config_.period_samples, 1);
  const std::size_t offset = rng.next_below(static_cast<std::uint32_t>(
      std::min<std::size_t>(period, 0xFFFFFFFFu)));
  double phase = 0.0;
  out.reserve(signal.size());
  for (std::size_t n = 0; n < signal.size(); ++n) {
    double frac = static_cast<double>((n + offset) % period) /
                  static_cast<double>(period);
    double freq = config_.f_lo + (config_.f_hi - config_.f_lo) * frac;
    phase += 2.0 * std::numbers::pi * freq;
    out.emplace_back(static_cast<float>(std::cos(phase)),
                     static_cast<float>(std::sin(phase)));
  }
  record_jam(out.size());
}

void PulsedJammer::emit(std::span<const dsp::Complex> signal,
                        dsp::Samples& out, Rng& rng) const {
  if (signal.empty()) return;
  const std::size_t period = std::max<std::size_t>(config_.period_samples, 1);
  const std::size_t on_samples = static_cast<std::size_t>(
      static_cast<double>(period) * std::clamp(config_.duty, 0.0, 1.0));
  if (on_samples == 0) return;
  const std::size_t offset = rng.next_below(static_cast<std::uint32_t>(
      std::min<std::size_t>(period, 0xFFFFFFFFu)));
  std::size_t jammed = 0;
  out.reserve(signal.size());
  for (std::size_t n = 0; n < signal.size(); ++n) {
    if ((n + offset) % period < on_samples) {
      out.push_back(noise_sample(rng));
      ++jammed;
    } else {
      out.emplace_back(0.0f, 0.0f);
    }
  }
  record_jam(jammed);
}

}  // namespace tinysdr::adversary
