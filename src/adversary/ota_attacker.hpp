// Seeded OTA-protocol attacker: the protocol-level analogue of
// sim::FaultPlan / sim::FaultInjector.
//
// An OtaAttackPlan is a declarative, seeded schedule of protocol attacks
// — forged ACKs racing the node's replies, truncated DATA frames,
// replayed captures, and link jamming — and ScriptedAttacker is the
// runtime ota::LinkAttacker the transfer engine queries at each hookable
// exchange. All draws come from one PCG32 stream per attacker, so an
// attacked campaign run replays bit-for-bit from (plan, seed) alone.
//
// Rollback pushes are not a link-level hook: model them by carrying an
// older image_version through ota::UpdateOptions (or
// testbed::FaultScenario), and let the FirmwareStore ratchet refuse it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "ota/protocol.hpp"

namespace tinysdr::adversary {

/// Declarative, seeded schedule of OTA-protocol attacks for one node.
struct OtaAttackPlan {
  std::uint64_t seed = 0xBADF00D;

  /// Per-delivery probability the attacker jams an arriving packet.
  double jam_rate = 0.0;
  /// Per-exchange probability a forged ACK/SACK beats the node's reply.
  double forge_ack_rate = 0.0;
  /// Per-DATA probability the frame arrives truncated.
  double truncate_rate = 0.0;
  /// Per-stored-DATA probability the attacker replays a captured copy.
  double replay_rate = 0.0;

  [[nodiscard]] static OtaAttackPlan none() { return {}; }

  /// True if any attack dimension is active.
  [[nodiscard]] bool any() const {
    return jam_rate > 0.0 || forge_ack_rate > 0.0 || truncate_rate > 0.0 ||
           replay_rate > 0.0;
  }
};

/// Tally of attacks the attacker actually launched during a run. The
/// protocol's UpdateOutcome counters tally what the *victim* detected;
/// comparing the two is what the detection tests assert.
struct OtaAttackCounters {
  std::size_t jams = 0;
  std::size_t forged_acks = 0;
  std::size_t truncations = 0;
  std::size_t replays = 0;

  [[nodiscard]] std::size_t total() const {
    return jams + forged_acks + truncations + replays;
  }
};

/// Runtime attacker. One per attacked node; all draws funnel through a
/// single seeded RNG stream so runs replay exactly.
class ScriptedAttacker final : public ota::LinkAttacker {
 public:
  explicit ScriptedAttacker(OtaAttackPlan plan)
      : plan_(plan), rng_(plan.seed, 0xA77AC2ULL) {}

  [[nodiscard]] const OtaAttackPlan& plan() const { return plan_; }
  [[nodiscard]] const OtaAttackCounters& counters() const { return counters_; }

  [[nodiscard]] bool jam_packet(ota::OtaPacketType type,
                                std::size_t wire_bytes) override;
  [[nodiscard]] bool forge_ack(ota::OtaPacketType type) override;
  [[nodiscard]] bool truncate_chunk(std::uint16_t seq) override;
  [[nodiscard]] bool replay_chunk(std::uint16_t seq) override;

 private:
  OtaAttackPlan plan_;
  Rng rng_;
  OtaAttackCounters counters_;
};

/// testbed::FaultScenario::make_attacker adapter: builds a per-node
/// ScriptedAttacker whose stream mixes the plan seed with the node's
/// derived seed, keeping fleet campaigns deterministic and
/// order-independent.
[[nodiscard]] std::function<std::unique_ptr<ota::LinkAttacker>(std::uint64_t)>
attacker_factory(OtaAttackPlan plan);

}  // namespace tinysdr::adversary
