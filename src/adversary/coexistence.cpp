#include "adversary/coexistence.hpp"

#include <memory>

#include "exec/parallel_for.hpp"
#include "exec/seed.hpp"
#include "obs/metrics.hpp"

namespace tinysdr::adversary {

const phy::PointResult* CoexistenceMatrix::find(
    phy::Protocol victim, std::optional<phy::Protocol> interferer) const {
  for (const auto& cell : cells) {
    if (cell.victim == victim && cell.interferer == interferer)
      return &cell.result;
  }
  return nullptr;
}

double CoexistenceMatrix::per_penalty(phy::Protocol victim,
                                      phy::Protocol interferer) const {
  const phy::PointResult* clean = find(victim, std::nullopt);
  const phy::PointResult* jammed = find(victim, interferer);
  if (clean == nullptr || jammed == nullptr) return 0.0;
  return jammed->per() - clean->per();
}

CoexistenceMatrix run_coexistence_matrix(const CoexistenceConfig& config,
                                         const exec::ExecPolicy& policy,
                                         const phy::Registry& registry) {
  CoexistenceMatrix matrix;
  matrix.config = config;
  const auto& entries = registry.entries();
  for (const auto& e : entries) matrix.protocols.push_back(e.id);

  // Enumerate cells up front, victim-major, clean cell first — the fixed
  // order everything else (seeds, shard merge, output) keys off.
  struct Job {
    std::size_t victim;
    std::optional<std::size_t> interferer;
  };
  std::vector<Job> jobs;
  for (std::size_t v = 0; v < entries.size(); ++v) {
    jobs.push_back({v, std::nullopt});
    for (std::size_t i = 0; i < entries.size(); ++i) jobs.push_back({v, i});
  }
  matrix.cells.resize(jobs.size());

  obs::Registry* parent = obs::metrics();
  std::vector<std::unique_ptr<obs::Registry>> shards(jobs.size());

  exec::ExecPolicy p = policy;
  if (p.grain == 0) p.grain = 1;  // one cell's trial loop is a heavy item

  (void)exec::parallel_for(jobs.size(), p, [&](std::size_t j, std::size_t) {
    std::optional<obs::MetricsSession> session;
    if (parent != nullptr) {
      shards[j] = std::make_unique<obs::Registry>();
      shards[j]->enable_journal();
      session.emplace(*shards[j]);
    }

    const Job& job = jobs[j];
    const phy::RegisteredPhy& victim = entries[job.victim];
    auto tx = victim.make_tx();
    auto rx = victim.make_rx();

    phy::TrialPlan plan;
    plan.trials = config.trials;
    plan.payload_bytes = config.payload_bytes;
    plan.pad_samples = victim.pad_samples;
    plan.noise_figure_db = victim.system_noise_figure_db;
    // Grid-independent cell seed: pure in (base, victim id, interferer id).
    const std::uint64_t key =
        (static_cast<std::uint64_t>(job.victim) << 8) |
        (job.interferer ? *job.interferer + 1 : 0);
    plan.base_seed = exec::stream_seed(config.base_seed, key);

    phy::LinkSimulator sim{*tx, *rx, plan};
    std::unique_ptr<phy::PhyTx> interferer_tx;
    std::optional<phy::PhyTxInterferer> interferer;
    phy::SweepPoint point{config.rssi, std::nullopt};
    if (job.interferer) {
      interferer_tx = entries[*job.interferer].make_tx();
      interferer.emplace(*interferer_tx, config.payload_bytes);
      sim.add_interferer(*interferer);
      point.interferer_rssi = config.rssi + config.interferer_offset_db;
    }

    CoexistenceCell& cell = matrix.cells[j];
    cell.victim = victim.id;
    if (job.interferer) cell.interferer = entries[*job.interferer].id;
    cell.result = sim.run_point(point);
  });

  // Merge telemetry in cell order, exactly like LinkSimulator::sweep.
  if (parent != nullptr)
    for (const auto& shard : shards)
      if (shard != nullptr) parent->merge_from(*shard);
  return matrix;
}

}  // namespace tinysdr::adversary
