// NB-IoT-style single-tone uplink PHY — the last of the paper's §1
// protocol list ("LoRa, Sigfox, NB-IoT and LTE-M ... use only 500 kHz,
// 200 Hz, 180 kHz, 1.4 MHz" of bandwidth).
//
// NB-IoT's NPUSCH format 1 single-tone mode sends pi/2-BPSK symbols on one
// 3.75 kHz subcarrier — the narrowest cellular IoT uplink. We implement
// that essence: pi/2-BPSK (each symbol rotates the constellation by 90°,
// bounding envelope excursions), a known DMRS-like pilot prefix for
// synchronisation, and a coherent receiver that derotates and integrates
// per symbol. The 180 kHz NB-IoT carrier and the 3.75 kHz tone both sit
// trivially inside the AT86RF215's 4 MHz bandwidth.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "dsp/types.hpp"

namespace tinysdr::nbiot {

inline constexpr double kSymbolRate = 3750.0;  ///< one 3.75 kHz subcarrier
inline constexpr std::size_t kPilotSymbols = 16;
inline constexpr std::size_t kMaxPayload = 125;

struct SingleToneConfig {
  std::uint32_t samples_per_symbol = 8;

  [[nodiscard]] Hertz sample_rate() const {
    return Hertz{kSymbolRate * samples_per_symbol};
  }
  /// Occupied bandwidth: one subcarrier.
  [[nodiscard]] Hertz occupied_bandwidth() const {
    return Hertz{kSymbolRate};
  }
};

class SingleToneModem {
 public:
  explicit SingleToneModem(SingleToneConfig config = {});

  [[nodiscard]] const SingleToneConfig& config() const { return config_; }

  /// Frame bits: pilot (known PN sequence) | length byte | payload | CRC16.
  [[nodiscard]] std::vector<bool> frame_bits(
      std::span<const std::uint8_t> payload) const;

  /// pi/2-BPSK waveform: symbol k carries bit b as (-1)^b rotated by
  /// k * 90 degrees.
  [[nodiscard]] dsp::Samples modulate(
      std::span<const std::uint8_t> payload) const;

  /// Coherent receiver: pilot correlation for timing + phase, derotate,
  /// integrate per symbol, CRC check.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> demodulate(
      std::span<const dsp::Complex> iq) const;

  [[nodiscard]] Seconds airtime(std::size_t payload_bytes) const;

  /// The known pilot bit sequence (PN, shared by TX and RX).
  [[nodiscard]] static const std::vector<bool>& pilot_bits();

 private:
  SingleToneConfig config_;
};

}  // namespace tinysdr::nbiot
