#include "nbiot/uplink.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/crc.hpp"

namespace tinysdr::nbiot {

SingleToneModem::SingleToneModem(SingleToneConfig config) : config_(config) {
  if (config_.samples_per_symbol < 2)
    throw std::invalid_argument("SingleToneModem: need >= 2 samples/symbol");
}

const std::vector<bool>& SingleToneModem::pilot_bits() {
  // 16-bit m-sequence segment (x^4 + x + 1 LFSR from state 0b1001).
  static const std::vector<bool> pilots = [] {
    std::vector<bool> bits;
    std::uint8_t state = 0b1001;
    for (int i = 0; i < static_cast<int>(kPilotSymbols); ++i) {
      bits.push_back(state & 1);
      std::uint8_t fb = static_cast<std::uint8_t>((state ^ (state >> 1)) & 1);
      state = static_cast<std::uint8_t>((state >> 1) | (fb << 3));
    }
    return bits;
  }();
  return pilots;
}

std::vector<bool> SingleToneModem::frame_bits(
    std::span<const std::uint8_t> payload) const {
  if (payload.size() > kMaxPayload)
    throw std::invalid_argument("SingleToneModem: payload too long");
  std::vector<bool> bits = pilot_bits();
  auto push_byte = [&](std::uint8_t b) {
    for (int i = 7; i >= 0; --i) bits.push_back((b >> i) & 1);
  };
  push_byte(static_cast<std::uint8_t>(payload.size()));
  for (std::uint8_t b : payload) push_byte(b);
  std::uint16_t crc = crc16_ccitt(payload);
  push_byte(static_cast<std::uint8_t>(crc >> 8));
  push_byte(static_cast<std::uint8_t>(crc & 0xFF));
  return bits;
}

dsp::Samples SingleToneModem::modulate(
    std::span<const std::uint8_t> payload) const {
  auto bits = frame_bits(payload);
  const std::uint32_t sps = config_.samples_per_symbol;
  dsp::Samples out;
  out.reserve(bits.size() * sps);
  for (std::size_t k = 0; k < bits.size(); ++k) {
    // pi/2-BPSK: BPSK value rotated by 90 degrees per symbol.
    double angle = std::numbers::pi / 2.0 * static_cast<double>(k % 4);
    double amp = bits[k] ? -1.0 : 1.0;
    dsp::Complex sym{static_cast<float>(amp * std::cos(angle)),
                     static_cast<float>(amp * std::sin(angle))};
    for (std::uint32_t s = 0; s < sps; ++s) out.push_back(sym);
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> SingleToneModem::demodulate(
    std::span<const dsp::Complex> iq) const {
  const std::uint32_t sps = config_.samples_per_symbol;
  const auto& pilots = pilot_bits();
  if (iq.size() < sps * (kPilotSymbols + 10)) return std::nullopt;

  // Integrate per candidate symbol grid; derotate the pi/2 progression.
  auto symbols_at = [&](std::size_t offset) {
    std::vector<dsp::Complex> syms;
    for (std::size_t start = offset; start + sps <= iq.size();
         start += sps) {
      dsp::Complex acc{0, 0};
      for (std::uint32_t s = 0; s < sps; ++s) acc += iq[start + s];
      syms.push_back(acc);
    }
    return syms;
  };

  double best_metric = -1.0;
  std::size_t best_offset = 0, best_shift = 0;
  dsp::Complex best_gain{1, 0};
  for (std::size_t offset = 0; offset < sps; ++offset) {
    auto syms = symbols_at(offset);
    if (syms.size() < kPilotSymbols + 2) continue;
    for (std::size_t shift = 0;
         shift + kPilotSymbols + 3 * 8 <= syms.size(); ++shift) {
      // Correlate pilots after derotation relative to this shift.
      dsp::Complex corr{0, 0};
      for (std::size_t k = 0; k < kPilotSymbols; ++k) {
        double angle =
            -std::numbers::pi / 2.0 * static_cast<double>((k) % 4);
        dsp::Complex derot =
            syms[shift + k] * dsp::Complex{static_cast<float>(std::cos(angle)),
                                           static_cast<float>(std::sin(angle))};
        corr += derot * (pilots[k] ? -1.0f : 1.0f);
      }
      double metric = std::abs(corr);
      if (metric > best_metric) {
        best_metric = metric;
        best_offset = offset;
        best_shift = shift;
        best_gain = corr;
      }
    }
  }
  if (best_metric <= 0.0) return std::nullopt;

  auto syms = symbols_at(best_offset);
  auto gain_conj = std::conj(best_gain);
  auto bit_at = [&](std::size_t k) {
    // k indexes the frame's symbols (pilots at 0..15).
    double angle = -std::numbers::pi / 2.0 * static_cast<double>(k % 4);
    dsp::Complex derot =
        syms[best_shift + k] *
        dsp::Complex{static_cast<float>(std::cos(angle)),
                     static_cast<float>(std::sin(angle))};
    return (derot * gain_conj).real() < 0.0f;
  };

  std::size_t pos = kPilotSymbols;
  auto read_byte = [&](std::size_t at) {
    std::uint8_t b = 0;
    for (int i = 0; i < 8; ++i)
      b = static_cast<std::uint8_t>((b << 1) |
                                    (bit_at(at + static_cast<std::size_t>(i))
                                         ? 1
                                         : 0));
    return b;
  };

  std::size_t available = syms.size() - best_shift;
  if (pos + 8 > available) return std::nullopt;
  std::uint8_t len = read_byte(pos);
  pos += 8;
  if (len > kMaxPayload) return std::nullopt;
  if (pos + (static_cast<std::size_t>(len) + 2) * 8 > available)
    return std::nullopt;

  std::vector<std::uint8_t> payload;
  for (std::size_t b = 0; b < len; ++b) {
    payload.push_back(read_byte(pos));
    pos += 8;
  }
  std::uint16_t crc = static_cast<std::uint16_t>(read_byte(pos)) << 8;
  pos += 8;
  crc = static_cast<std::uint16_t>(crc | read_byte(pos));
  if (crc16_ccitt(payload) != crc) return std::nullopt;
  return payload;
}

Seconds SingleToneModem::airtime(std::size_t payload_bytes) const {
  double symbols = static_cast<double>(kPilotSymbols) + 8.0 +
                   8.0 * static_cast<double>(payload_bytes) + 16.0;
  return Seconds{symbols / kSymbolRate};
}

}  // namespace tinysdr::nbiot
