// Wall-clock profiling scopes for the hot DSP paths (dechirp/FFT, FIR,
// GFSK demod), feeding the metrics registry.
//
// Unlike the tracer (which runs on deterministic sim time), profile
// samples are real elapsed wall time on the host, so they belong in the
// registry — never in the trace — to keep trace output byte-identical
// across runs. With no registry installed the constructor is a single
// pointer test and no clock is read.
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.hpp"

namespace tinysdr::obs {

class ProfileScope {
 public:
  explicit ProfileScope(const char* name)
      : registry_(metrics()), name_(name) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  ~ProfileScope() {
    if (registry_ == nullptr) return;
    auto end = std::chrono::steady_clock::now();
    double us =
        std::chrono::duration<double, std::micro>(end - start_).count();
    // Geometric buckets from 10 ns to 10 s: hot-path calls span orders of
    // magnitude (a 64-point FFT vs a full packet demod).
    registry_
        ->histogram(std::string("prof.") + name_ + ".us",
                    HistogramSpec::log_scale(0.01, 1e7, 72))
        .observe(us);
  }

 private:
  Registry* registry_;
  const char* name_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace tinysdr::obs
