// Metrics registry: named counters, gauges and fixed-bucket histograms
// (PER, retransmissions-per-chunk, backoff delay, SNR, demod SER,
// per-activity energy, wall-clock profile samples) with JSON/CSV export
// and a deterministic snapshot API.
//
// Same null-sink contract as the tracer: `metrics()` is nullptr until a
// MetricsSession installs a Registry, so uninstrumented runs pay one
// branch per site and produce bit-identical results. The sink pointer is
// thread_local: parallel campaigns install a journaled shard Registry per
// unit of work and merge_from() the shards in deterministic index order.
// The journal replays every raw add/observe in its original order, so the
// merged floating-point state is bit-identical to a serial run's — no
// reliance on (non-existent) float associativity.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tinysdr::obs {

class Counter {
 public:
  void add(double n = 1.0) {
    value_ += n;
    if (journaled_) journal_.push_back(n);
  }
  [[nodiscard]] double value() const { return value_; }

 private:
  friend class Registry;
  double value_ = 0.0;
  bool journaled_ = false;        ///< shard mode (Registry::enable_journal)
  std::vector<double> journal_;   ///< every add, in order, for exact replay
};

class Gauge {
 public:
  void set(double v) {
    value_ = v;
    touched_ = true;
  }
  [[nodiscard]] double value() const { return value_; }

 private:
  friend class Registry;
  double value_ = 0.0;
  bool touched_ = false;  ///< distinguishes "set to 0" from "never set"
};

/// Fixed-bucket layout: `buckets` intervals spanning [lo, hi), either
/// equal-width (linear) or equal-ratio (geometric; requires lo > 0).
/// Samples outside the range land in dedicated under/overflow buckets.
struct HistogramSpec {
  double lo = 0.0;
  double hi = 1.0;
  std::size_t buckets = 20;
  bool geometric = false;

  [[nodiscard]] static HistogramSpec linear(double lo, double hi,
                                            std::size_t buckets) {
    return HistogramSpec{lo, hi, buckets, false};
  }
  [[nodiscard]] static HistogramSpec log_scale(double lo, double hi,
                                               std::size_t buckets) {
    return HistogramSpec{lo, hi, buckets, true};
  }

  [[nodiscard]] bool operator==(const HistogramSpec&) const = default;
};

class Histogram {
 public:
  explicit Histogram(HistogramSpec spec = {});

  void observe(double value);

  [[nodiscard]] const HistogramSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i];
  }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  /// Bucket edges: bucket i covers [lower(i), upper(i)).
  [[nodiscard]] double bucket_lower(std::size_t i) const;
  [[nodiscard]] double bucket_upper(std::size_t i) const;

  /// q-quantile estimate (q in [0,1]) by linear interpolation inside the
  /// containing bucket; ranks in the under/overflow buckets clamp to the
  /// observed min/max.
  [[nodiscard]] double quantile(double q) const;

 private:
  friend class Registry;
  HistogramSpec spec_;
  bool journaled_ = false;
  std::vector<double> journal_;  ///< every observed value, in order
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Deterministic, comparable point-in-time copy of a Registry. Snapshots
/// round-trip exactly through their JSON form (shortest-round-trip number
/// formatting on both sides).
struct MetricsSnapshot {
  struct HistogramData {
    HistogramSpec spec;
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    [[nodiscard]] bool operator==(const HistogramData&) const = default;
  };

  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  [[nodiscard]] bool operator==(const MetricsSnapshot&) const = default;

  [[nodiscard]] std::string json() const;
  void write_json(std::ostream& out) const;
  [[nodiscard]] static std::optional<MetricsSnapshot> from_json(
      std::string_view src);
};

class Registry {
 public:
  /// Find-or-create by name. For histograms, the spec applies only on
  /// first creation; later lookups return the existing instrument.
  Counter& counter(const std::string& name) {
    Counter& c = counters_[name];
    if (journal_) c.journaled_ = true;
    return c;
  }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name, HistogramSpec spec = {});

  /// Shard mode: every instrument additionally records its raw operations
  /// so merge_from() can replay them in order with exact float semantics.
  void enable_journal() { journal_ = true; }
  [[nodiscard]] bool journal_enabled() const { return journal_; }

  /// Fold a shard registry into this one. Journaled shard instruments are
  /// replayed operation by operation (bit-exact vs. having run the same
  /// ops here directly); non-journaled ones are merged by aggregate.
  void merge_from(const Registry& shard);

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::string json() const { return snapshot().json(); }
  void write_json(std::ostream& out) const { snapshot().write_json(out); }
  /// CSV: one line per instrument; histograms report count/sum/min/max
  /// and the p50/p90/p99 estimates.
  void write_csv(std::ostream& out) const;

  void clear();

 private:
  bool journal_ = false;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The calling thread's installed registry, or nullptr (the null sink).
[[nodiscard]] Registry* metrics();

/// RAII installation of a Registry as the calling thread's metrics sink.
class MetricsSession {
 public:
  explicit MetricsSession(Registry& r);
  ~MetricsSession();
  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;

 private:
  Registry* previous_;
};

}  // namespace tinysdr::obs
