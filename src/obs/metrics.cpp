#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace tinysdr::obs {

namespace {
thread_local Registry* g_metrics = nullptr;
}  // namespace

Registry* metrics() { return g_metrics; }

MetricsSession::MetricsSession(Registry& r) : previous_(g_metrics) {
  g_metrics = &r;
}

MetricsSession::~MetricsSession() { g_metrics = previous_; }

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(HistogramSpec spec) : spec_(spec) {
  if (spec_.buckets == 0) spec_.buckets = 1;
  if (!(spec_.hi > spec_.lo)) spec_.hi = spec_.lo + 1.0;
  if (spec_.geometric && spec_.lo <= 0.0) spec_.geometric = false;
  counts_.assign(spec_.buckets, 0);
}

void Histogram::observe(double value) {
  if (journaled_) journal_.push_back(value);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;

  if (value < spec_.lo) {
    ++underflow_;
    return;
  }
  if (value >= spec_.hi) {
    ++overflow_;
    return;
  }
  std::size_t idx;
  if (spec_.geometric) {
    double ratio = std::log(spec_.hi / spec_.lo);
    idx = static_cast<std::size_t>(std::log(value / spec_.lo) / ratio *
                                   static_cast<double>(spec_.buckets));
  } else {
    idx = static_cast<std::size_t>((value - spec_.lo) / (spec_.hi - spec_.lo) *
                                   static_cast<double>(spec_.buckets));
  }
  if (idx >= spec_.buckets) idx = spec_.buckets - 1;  // float edge safety
  ++counts_[idx];
}

double Histogram::bucket_lower(std::size_t i) const {
  double f = static_cast<double>(i) / static_cast<double>(spec_.buckets);
  if (spec_.geometric)
    return spec_.lo * std::pow(spec_.hi / spec_.lo, f);
  return spec_.lo + (spec_.hi - spec_.lo) * f;
}

double Histogram::bucket_upper(std::size_t i) const { return bucket_lower(i + 1); }

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (rank <= cum) return min_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    double next = cum + static_cast<double>(counts_[i]);
    if (rank <= next && counts_[i] > 0) {
      double frac = (rank - cum) / static_cast<double>(counts_[i]);
      return bucket_lower(i) + frac * (bucket_upper(i) - bucket_lower(i));
    }
    cum = next;
  }
  return max_;
}

// ----------------------------------------------------------------- Registry

Histogram& Registry::histogram(const std::string& name, HistogramSpec spec) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(name, Histogram{spec}).first;
  if (journal_) it->second.journaled_ = true;
  return it->second;
}

void Registry::merge_from(const Registry& shard) {
  for (const auto& [name, c] : shard.counters_) {
    Counter& dst = counter(name);
    if (c.journaled_) {
      for (double v : c.journal_) dst.add(v);
    } else {
      dst.add(c.value_);
    }
  }
  for (const auto& [name, g] : shard.gauges_)
    if (g.touched_) gauge(name).set(g.value_);
  for (const auto& [name, h] : shard.histograms_) {
    Histogram& dst = histogram(name, h.spec_);
    if (h.journaled_) {
      for (double v : h.journal_) dst.observe(v);
    } else {
      // Aggregate fallback: bucket-exact, sum grouped per shard.
      if (h.count_ == 0) continue;
      if (dst.count_ == 0) {
        dst.min_ = h.min_;
        dst.max_ = h.max_;
      } else {
        dst.min_ = std::min(dst.min_, h.min_);
        dst.max_ = std::max(dst.max_, h.max_);
      }
      dst.count_ += h.count_;
      dst.sum_ += h.sum_;
      dst.underflow_ += h.underflow_;
      dst.overflow_ += h.overflow_;
      for (std::size_t i = 0;
           i < dst.counts_.size() && i < h.counts_.size(); ++i)
        dst.counts_[i] += h.counts_[i];
    }
  }
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData d;
    d.spec = h.spec();
    d.counts = h.counts();
    d.underflow = h.underflow();
    d.overflow = h.overflow();
    d.count = h.count();
    d.sum = h.sum();
    d.min = h.min();
    d.max = h.max();
    snap.histograms[name] = std::move(d);
  }
  return snap;
}

void Registry::write_csv(std::ostream& out) const {
  out << "kind,name,value,count,sum,min,max,p50,p90,p99\n";
  for (const auto& [name, c] : counters_)
    out << "counter," << name << "," << json_number(c.value())
        << ",,,,,,,\n";
  for (const auto& [name, g] : gauges_)
    out << "gauge," << name << "," << json_number(g.value()) << ",,,,,,,\n";
  for (const auto& [name, h] : histograms_) {
    out << "histogram," << name << ",," << h.count() << ","
        << json_number(h.sum()) << "," << json_number(h.min()) << ","
        << json_number(h.max()) << "," << json_number(h.quantile(0.5)) << ","
        << json_number(h.quantile(0.9)) << "," << json_number(h.quantile(0.99))
        << "\n";
  }
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

// ---------------------------------------------------------- MetricsSnapshot

void MetricsSnapshot::write_json(std::ostream& out) const {
  out << "{\"schema\":\"tinysdr-metrics-v1\",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out << ",";
    first = false;
    out << json_quote(name) << ":" << json_number(v);
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out << ",";
    first = false;
    out << json_quote(name) << ":" << json_number(v);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out << ",";
    first = false;
    out << json_quote(name) << ":{\"lo\":" << json_number(h.spec.lo)
        << ",\"hi\":" << json_number(h.spec.hi)
        << ",\"buckets\":" << h.spec.buckets
        << ",\"geometric\":" << (h.spec.geometric ? "true" : "false")
        << ",\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out << ",";
      out << h.counts[i];
    }
    out << "],\"underflow\":" << h.underflow << ",\"overflow\":" << h.overflow
        << ",\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
        << ",\"min\":" << json_number(h.min)
        << ",\"max\":" << json_number(h.max) << "}";
  }
  out << "}}";
}

std::string MetricsSnapshot::json() const {
  std::ostringstream oss;
  write_json(oss);
  return oss.str();
}

std::optional<MetricsSnapshot> MetricsSnapshot::from_json(
    std::string_view src) {
  auto doc = JsonValue::parse(src);
  if (!doc || !doc->is_object()) return std::nullopt;
  MetricsSnapshot snap;

  auto read_scalar_map = [](const JsonValue* obj,
                            std::map<std::string, double>& out) {
    if (obj == nullptr || !obj->is_object()) return false;
    for (const auto& [name, v] : obj->members) {
      if (!v.is_number()) return false;
      out[name] = v.number;
    }
    return true;
  };
  if (!read_scalar_map(doc->find("counters"), snap.counters))
    return std::nullopt;
  if (!read_scalar_map(doc->find("gauges"), snap.gauges)) return std::nullopt;

  const JsonValue* hists = doc->find("histograms");
  if (hists == nullptr || !hists->is_object()) return std::nullopt;
  for (const auto& [name, h] : hists->members) {
    if (!h.is_object()) return std::nullopt;
    HistogramData d;
    d.spec.lo = h.number_or("lo", 0.0);
    d.spec.hi = h.number_or("hi", 1.0);
    d.spec.buckets = static_cast<std::size_t>(h.number_or("buckets", 0.0));
    const JsonValue* geometric = h.find("geometric");
    d.spec.geometric = geometric != nullptr && geometric->boolean;
    const JsonValue* counts = h.find("counts");
    if (counts == nullptr || !counts->is_array()) return std::nullopt;
    for (const auto& c : counts->items) {
      if (!c.is_number()) return std::nullopt;
      d.counts.push_back(static_cast<std::uint64_t>(c.number));
    }
    d.underflow = static_cast<std::uint64_t>(h.number_or("underflow", 0.0));
    d.overflow = static_cast<std::uint64_t>(h.number_or("overflow", 0.0));
    d.count = static_cast<std::uint64_t>(h.number_or("count", 0.0));
    d.sum = h.number_or("sum", 0.0);
    d.min = h.number_or("min", 0.0);
    d.max = h.number_or("max", 0.0);
    snap.histograms[name] = std::move(d);
  }
  return snap;
}

}  // namespace tinysdr::obs
