// Flight recorder: a bounded, deterministic, sim-time-stamped structured
// log for post-mortem debugging of fleet campaigns. Where the Tracer
// answers "what happened when" as a Perfetto timeline, the flight
// recorder keeps the last N *noteworthy* events (level/node/component/
// message + key-value args) and is dumped as `tinysdr-flight-v1` JSON
// when a campaign ends in failure, a fault fires, or a deadline or
// cancellation trips — the black box you read after the crash.
//
// Same contracts as the Tracer (trace.hpp):
//   - Null sink by default: `flight()` is nullptr until a FlightSession
//     installs a recorder; every site guards on the pointer, so an
//     uninstrumented run pays one branch and stays bit-identical.
//   - Sim time, not wall clock: engines mirror the tracer clock
//     (`set_time`, `shift_base`), so dumps are deterministic per seed.
//   - Bounded memory: fixed-capacity ring, drop-oldest with a count.
//   - Thread-sharded: parallel campaigns give each unit of work an
//     unbounded() shard and absorb() the shards in node-index order, so
//     the dump is byte-identical regardless of thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "obs/trace.hpp"  // TraceArg: shared key/value attachment type

namespace tinysdr::obs {

enum class FlightLevel : std::uint8_t { kDebug, kInfo, kWarn, kError };

[[nodiscard]] const char* to_string(FlightLevel level);

/// One structured log record. `component` points at a static string
/// (like TraceEvent::category); `node` is the simulated node id the
/// record was made on behalf of (0 = campaign scope).
struct FlightRecord {
  double ts_us = 0.0;
  FlightLevel level = FlightLevel::kInfo;
  std::uint32_t node = 0;
  const char* component = "";
  std::string message;
  std::vector<TraceArg> args;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 12;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// Shard recorder for one unit of parallel work: grows on demand,
  /// never drops, records against base 0. absorb() into the bounded
  /// campaign recorder applies the drop-oldest semantics a serial run
  /// would have had.
  [[nodiscard]] static FlightRecorder unbounded();
  [[nodiscard]] bool is_unbounded() const { return unbounded_; }

  /// Append a shard's records (oldest first) with timestamps offset by
  /// this recorder's base and fold its dropped count in. The shard is
  /// untouched; this recorder's clock does not move.
  void absorb(const FlightRecorder& shard);

  // ---------------------------------------------------------- sim clock
  /// Mirrors the Tracer clock: engines that call Tracer::set_time stamp
  /// the flight recorder with the same sim time.
  [[nodiscard]] Seconds now() const;
  void set_time(Seconds t);
  void shift_base(Seconds dt);
  void reset_clock();

  // --------------------------------------------------------------- node
  /// Node id stamped on subsequent records (campaign shards set this to
  /// the node they run).
  void set_node(std::uint32_t node) { node_ = node; }
  [[nodiscard]] std::uint32_t node() const { return node_; }

  // ---------------------------------------------------------- recording
  void record(FlightLevel level, const char* component, std::string message,
              std::vector<TraceArg> args = {});

  // -------------------------------------------------- inspection / dump
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  /// Records oldest-first (a copy; the ring stays untouched).
  [[nodiscard]] std::vector<FlightRecord> records() const;
  [[nodiscard]] std::size_t count_component(std::string_view component) const;
  /// Records at `level` or more severe — the auto-dump trigger test.
  [[nodiscard]] std::size_t count_at_least(FlightLevel level) const;
  void clear();

  /// `tinysdr-flight-v1` JSON: {"schema":...,"reason":...,"dropped":N,
  /// "records":[{"ts_us","level","node","component","message","args"}]}.
  /// Byte-deterministic for a fixed record sequence and reason.
  void write_json(std::ostream& out, std::string_view reason = "") const;
  [[nodiscard]] std::string json(std::string_view reason = "") const;
  /// Write the dump to a file; false if the file cannot be opened.
  bool dump_to(const std::string& path, std::string_view reason = "") const;

  /// Where automatic failure dumps go. Unset (empty) means campaigns
  /// fall back to the TINYSDR_FLIGHT_DUMP environment variable, and dump
  /// nowhere if that is empty too.
  void set_dump_path(std::string path) { dump_path_ = std::move(path); }
  [[nodiscard]] const std::string& dump_path() const { return dump_path_; }

 private:
  void push(FlightRecord record);

  std::vector<FlightRecord> ring_;
  bool unbounded_ = false;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
  std::size_t dropped_ = 0;
  double base_us_ = 0.0;
  double now_us_ = 0.0;
  std::uint32_t node_ = 0;
  std::string dump_path_;
};

/// The calling thread's installed flight recorder, or nullptr (the null
/// sink). Instrumented code must guard on this before building any
/// record arguments.
[[nodiscard]] FlightRecorder* flight();

/// RAII installation, nesting like TraceSession: worker threads install
/// per-shard recorders without disturbing the caller's.
class FlightSession {
 public:
  explicit FlightSession(FlightRecorder& r);
  ~FlightSession();
  FlightSession(const FlightSession&) = delete;
  FlightSession& operator=(const FlightSession&) = delete;

 private:
  FlightRecorder* previous_;
};

/// Post-mortem hook: dump the calling thread's recorder to its configured
/// dump path (falling back to $TINYSDR_FLIGHT_DUMP). Returns the path
/// written, or empty when no recorder is installed, no path is
/// configured, or the write failed. Campaign engines call this when a
/// run ends in failure, a fault fired, or a deadline/cancellation
/// tripped.
std::string dump_flight(std::string_view reason);

}  // namespace tinysdr::obs
