#include "obs/flight.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace tinysdr::obs {

namespace {
thread_local FlightRecorder* g_flight = nullptr;
}  // namespace

FlightRecorder* flight() { return g_flight; }

FlightSession::FlightSession(FlightRecorder& r) : previous_(g_flight) {
  g_flight = &r;
}

FlightSession::~FlightSession() { g_flight = previous_; }

const char* to_string(FlightLevel level) {
  switch (level) {
    case FlightLevel::kDebug:
      return "debug";
    case FlightLevel::kInfo:
      return "info";
    case FlightLevel::kWarn:
      return "warn";
    case FlightLevel::kError:
      return "error";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

FlightRecorder FlightRecorder::unbounded() {
  FlightRecorder r{1};
  r.ring_.clear();
  r.unbounded_ = true;
  return r;
}

void FlightRecorder::absorb(const FlightRecorder& shard) {
  if (shard.count_ > 0) {
    std::size_t start = (shard.next_ + shard.ring_.size() - shard.count_) %
                        shard.ring_.size();
    for (std::size_t i = 0; i < shard.count_; ++i) {
      FlightRecord r = shard.ring_[(start + i) % shard.ring_.size()];
      r.ts_us += base_us_;
      push(std::move(r));
    }
  }
  dropped_ += shard.dropped_;
}

Seconds FlightRecorder::now() const {
  return Seconds::from_microseconds(base_us_ + now_us_);
}

void FlightRecorder::set_time(Seconds t) { now_us_ = t.microseconds(); }

void FlightRecorder::shift_base(Seconds dt) {
  base_us_ += dt.microseconds();
  now_us_ = 0.0;
}

void FlightRecorder::reset_clock() {
  base_us_ = 0.0;
  now_us_ = 0.0;
}

void FlightRecorder::push(FlightRecord record) {
  if (unbounded_) {
    ring_.push_back(std::move(record));
    ++count_;
    next_ = 0;  // keeps the oldest-first recovery arithmetic valid
    return;
  }
  if (count_ == ring_.size()) ++dropped_;
  else ++count_;
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % ring_.size();
}

void FlightRecorder::record(FlightLevel level, const char* component,
                            std::string message,
                            std::vector<TraceArg> args) {
  FlightRecord r;
  r.ts_us = base_us_ + now_us_;
  r.level = level;
  r.node = node_;
  r.component = component;
  r.message = std::move(message);
  r.args = std::move(args);
  push(std::move(r));
}

std::vector<FlightRecord> FlightRecorder::records() const {
  std::vector<FlightRecord> out;
  if (count_ == 0) return out;
  out.reserve(count_);
  std::size_t start = (next_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

std::size_t FlightRecorder::count_component(
    std::string_view component) const {
  std::size_t n = 0;
  std::size_t start =
      count_ == 0 ? 0 : (next_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i)
    if (component == ring_[(start + i) % ring_.size()].component) ++n;
  return n;
}

std::size_t FlightRecorder::count_at_least(FlightLevel level) const {
  std::size_t n = 0;
  std::size_t start =
      count_ == 0 ? 0 : (next_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i)
    if (ring_[(start + i) % ring_.size()].level >= level) ++n;
  return n;
}

void FlightRecorder::clear() {
  if (unbounded_) ring_.clear();
  next_ = 0;
  count_ = 0;
  dropped_ = 0;
  reset_clock();
  node_ = 0;
}

void FlightRecorder::write_json(std::ostream& out,
                                std::string_view reason) const {
  out << "{\"schema\":\"tinysdr-flight-v1\",\"reason\":"
      << json_quote(reason) << ",\"dropped\":" << dropped_
      << ",\"records\":[";
  std::size_t start =
      count_ == 0 ? 0 : (next_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    const FlightRecord& r = ring_[(start + i) % ring_.size()];
    if (i > 0) out << ",";
    out << "{\"ts_us\":" << json_number(r.ts_us) << ",\"level\":"
        << json_quote(to_string(r.level)) << ",\"node\":" << r.node
        << ",\"component\":" << json_quote(r.component)
        << ",\"message\":" << json_quote(r.message);
    if (!r.args.empty()) {
      out << ",\"args\":{";
      for (std::size_t a = 0; a < r.args.size(); ++a) {
        if (a > 0) out << ",";
        out << json_quote(r.args[a].key) << ":";
        if (r.args[a].is_string) out << json_quote(r.args[a].text);
        else out << json_number(r.args[a].number);
      }
      out << "}";
    }
    out << "}";
  }
  out << "]}";
}

std::string FlightRecorder::json(std::string_view reason) const {
  std::ostringstream oss;
  write_json(oss, reason);
  return oss.str();
}

bool FlightRecorder::dump_to(const std::string& path,
                             std::string_view reason) const {
  std::ofstream out{path};
  if (!out) return false;
  write_json(out, reason);
  out << "\n";
  return static_cast<bool>(out);
}

std::string dump_flight(std::string_view reason) {
  FlightRecorder* recorder = flight();
  if (recorder == nullptr) return {};
  std::string path = recorder->dump_path();
  if (path.empty()) {
    if (const char* env = std::getenv("TINYSDR_FLIGHT_DUMP");
        env != nullptr && *env != '\0')
      path = env;
  }
  if (path.empty()) return {};
  if (!recorder->dump_to(path, reason)) return {};
  return path;
}

}  // namespace tinysdr::obs
