#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace tinysdr::obs {

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  // Integral values print without an exponent or trailing ".0" so counters
  // look like counters; everything else is shortest-round-trip.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = members.find(key);
  return it == members.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string_view JsonValue::string_or(const std::string& key,
                                      std::string_view fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? std::string_view{v->text}
                                          : fallback;
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind == Kind::kBool) ? v->boolean : fallback;
}

namespace {

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src) {}

  std::optional<JsonValue> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != src_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_])))
      ++pos_;
  }

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos_ < src_.size() && src_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (src_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= src_.size()) return std::nullopt;
    JsonValue v;
    switch (src_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        auto s = string();
        if (!s) return std::nullopt;
        v.kind = JsonValue::Kind::kString;
        v.text = std::move(*s);
        return v;
      }
      case 't':
        if (!literal("true")) return std::nullopt;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!literal("false")) return std::nullopt;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!literal("null")) return std::nullopt;
        v.kind = JsonValue::Kind::kNull;
        return v;
      default:
        return number();
    }
  }

  std::optional<JsonValue> number() {
    std::size_t start = pos_;
    if (pos_ < src_.size() && (src_[pos_] == '-' || src_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E' ||
            src_[pos_] == '-' || src_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(src_[pos_]))) digits = true;
      ++pos_;
    }
    if (!digits) return std::nullopt;
    double out = 0.0;
    auto [end, ec] =
        std::from_chars(src_.data() + start, src_.data() + pos_, out);
    if (ec != std::errc{} || end != src_.data() + pos_) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = out;
    return v;
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < src_.size()) {
      char c = src_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= src_.size()) return std::nullopt;
      char esc = src_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > src_.size()) return std::nullopt;
          unsigned code = 0;
          auto [end, ec] = std::from_chars(src_.data() + pos_,
                                           src_.data() + pos_ + 4, code, 16);
          if (ec != std::errc{} || end != src_.data() + pos_ + 4)
            return std::nullopt;
          pos_ += 4;
          // The emitter only escapes control characters, so a plain
          // single-byte append covers everything we round-trip.
          if (code > 0xFF) return std::nullopt;
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> array() {
    if (!eat('[')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (eat(']')) return v;
    while (true) {
      auto item = value();
      if (!item) return std::nullopt;
      v.items.push_back(std::move(*item));
      if (eat(']')) return v;
      if (!eat(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> object() {
    if (!eat('{')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (eat('}')) return v;
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      if (!eat(':')) return std::nullopt;
      auto member = value();
      if (!member) return std::nullopt;
      v.members.emplace(std::move(*key), std::move(*member));
      if (eat('}')) return v;
      if (!eat(',')) return std::nullopt;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view src) {
  return Parser{src}.run();
}

}  // namespace tinysdr::obs
