#include "obs/trace.hpp"

#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace tinysdr::obs {

namespace {
thread_local Tracer* g_tracer = nullptr;
}  // namespace

Tracer* tracer() { return g_tracer; }

TraceSession::TraceSession(Tracer& t) : previous_(g_tracer) { g_tracer = &t; }

TraceSession::~TraceSession() { g_tracer = previous_; }

Tracer::Tracer(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

Tracer Tracer::unbounded() {
  Tracer t{1};
  t.ring_.clear();
  t.unbounded_ = true;
  return t;
}

void Tracer::absorb(const Tracer& shard) {
  for (const auto& [track, name] : shard.track_names_)
    track_names_[track] = name;
  if (shard.count_ > 0) {
    std::size_t start = (shard.next_ + shard.ring_.size() - shard.count_) %
                        shard.ring_.size();
    for (std::size_t i = 0; i < shard.count_; ++i) {
      TraceEvent e = shard.ring_[(start + i) % shard.ring_.size()];
      e.ts_us += base_us_;
      push(std::move(e));
    }
  }
  dropped_ += shard.dropped_;
}

Seconds Tracer::now() const {
  return Seconds::from_microseconds(base_us_ + now_us_);
}

void Tracer::set_time(Seconds t) { now_us_ = t.microseconds(); }

void Tracer::shift_base(Seconds dt) {
  base_us_ += dt.microseconds();
  now_us_ = 0.0;
}

void Tracer::reset_clock() {
  base_us_ = 0.0;
  now_us_ = 0.0;
}

void Tracer::name_track(std::uint32_t track, std::string name) {
  track_names_[track] = std::move(name);
}

void Tracer::push(TraceEvent event) {
  if (unbounded_) {
    ring_.push_back(std::move(event));
    ++count_;
    next_ = 0;  // keeps the oldest-first recovery arithmetic valid
    return;
  }
  if (count_ == ring_.size()) ++dropped_;
  else ++count_;
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % ring_.size();
}

void Tracer::instant(const char* category, std::string name,
                     std::vector<TraceArg> args) {
  TraceEvent e;
  e.ts_us = base_us_ + now_us_;
  e.phase = 'i';
  e.track = track_;
  e.category = category;
  e.name = std::move(name);
  e.args = std::move(args);
  push(std::move(e));
}

void Tracer::complete(const char* category, std::string name, Seconds start,
                      Seconds duration, std::vector<TraceArg> args) {
  TraceEvent e;
  e.ts_us = start.microseconds();
  e.dur_us = duration.microseconds();
  e.phase = 'X';
  e.track = track_;
  e.category = category;
  e.name = std::move(name);
  e.args = std::move(args);
  push(std::move(e));
}

void Tracer::flow_begin(const char* category, std::string name,
                        std::uint64_t id) {
  TraceEvent e;
  e.ts_us = base_us_ + now_us_;
  e.phase = 's';
  e.track = track_;
  e.flow_id = id;
  e.category = category;
  e.name = std::move(name);
  push(std::move(e));
}

void Tracer::flow_step(const char* category, std::string name,
                       std::uint64_t id) {
  TraceEvent e;
  e.ts_us = base_us_ + now_us_;
  e.phase = 't';
  e.track = track_;
  e.flow_id = id;
  e.category = category;
  e.name = std::move(name);
  push(std::move(e));
}

void Tracer::flow_end(const char* category, std::string name,
                      std::uint64_t id) {
  TraceEvent e;
  e.ts_us = base_us_ + now_us_;
  e.phase = 'f';
  e.track = track_;
  e.flow_id = id;
  e.category = category;
  e.name = std::move(name);
  push(std::move(e));
}

void Tracer::counter(const char* category, std::string name, double value) {
  TraceEvent e;
  e.ts_us = base_us_ + now_us_;
  e.phase = 'C';
  e.track = track_;
  e.category = category;
  e.name = std::move(name);
  e.args.push_back(TraceArg::num("value", value));
  push(std::move(e));
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  if (count_ == 0) return out;
  out.reserve(count_);
  std::size_t start = (next_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

std::size_t Tracer::count_category(std::string_view category) const {
  if (count_ == 0) return 0;
  std::size_t n = 0;
  std::size_t start = (next_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i)
    if (category == ring_[(start + i) % ring_.size()].category) ++n;
  return n;
}

void Tracer::clear() {
  if (unbounded_) ring_.clear();
  next_ = 0;
  count_ = 0;
  dropped_ = 0;
  track_names_.clear();
  reset_clock();
  track_ = 0;
}

namespace {

/// Flow ids export as hex strings: uint64 ids are not exactly
/// representable as JSON numbers past 2^53.
std::string flow_id_hex(std::uint64_t id) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out{"0x"};
  bool leading = true;
  for (int shift = 60; shift >= 0; shift -= 4) {
    unsigned nibble = static_cast<unsigned>((id >> shift) & 0xF);
    if (leading && nibble == 0 && shift != 0) continue;
    leading = false;
    out.push_back(kDigits[nibble]);
  }
  return out;
}

void write_args(std::ostream& out, const std::vector<TraceArg>& args) {
  out << "{";
  bool first = true;
  for (const auto& a : args) {
    if (!first) out << ",";
    first = false;
    out << json_quote(a.key) << ":";
    if (a.is_string) out << json_quote(a.text);
    else out << json_number(a.number);
  }
  out << "}";
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, name] : track_names_) {
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << track
        << ",\"name\":\"thread_name\",\"args\":{\"name\":"
        << json_quote(name) << "}}";
  }
  std::size_t start =
      count_ == 0 ? 0 : (next_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    const TraceEvent& e = ring_[(start + i) % ring_.size()];
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"" << e.phase << "\",\"pid\":0,\"tid\":" << e.track
        << ",\"ts\":" << json_number(e.ts_us);
    if (e.phase == 'X') out << ",\"dur\":" << json_number(e.dur_us);
    // Instants render at thread scope so they show on the node's row.
    if (e.phase == 'i') out << ",\"s\":\"t\"";
    if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
      out << ",\"id\":\"" << flow_id_hex(e.flow_id) << "\"";
      // Bind the flow end to the enclosing slice, not the next one.
      if (e.phase == 'f') out << ",\"bp\":\"e\"";
    }
    out << ",\"cat\":" << json_quote(e.category)
        << ",\"name\":" << json_quote(e.name);
    if (!e.args.empty()) {
      out << ",\"args\":";
      write_args(out, e.args);
    }
    out << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
      << dropped_ << "}}";
}

std::string Tracer::chrome_json() const {
  std::ostringstream oss;
  write_chrome_json(oss);
  return oss.str();
}

}  // namespace tinysdr::obs
