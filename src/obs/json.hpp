// Minimal JSON utilities for the telemetry layer: deterministic number
// formatting, string escaping, and a small recursive-descent parser for
// reading back the documents this repo itself emits (metrics snapshots,
// bench results). Deliberately not a general-purpose JSON library — just
// enough for byte-identical export and round-trip tests without an
// external dependency.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tinysdr::obs {

/// Shortest round-trip decimal form of a double (std::to_chars), so the
/// same value always prints the same bytes and parses back exactly.
/// Infinities and NaN are not representable in JSON; they render as 0.
[[nodiscard]] std::string json_number(double value);

/// Escape a string for embedding in a JSON document (adds the quotes).
[[nodiscard]] std::string json_quote(std::string_view text);

/// Parsed JSON value. Object members live in a sorted std::map, which is
/// all the deterministic round-trip consumers need (member order in the
/// source document is not preserved).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Member's number value, or `fallback` when absent / wrong type.
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;

  /// Member's string value, or `fallback` when absent / wrong type.
  [[nodiscard]] std::string_view string_or(const std::string& key,
                                           std::string_view fallback) const;

  /// Member's boolean value, or `fallback` when absent / wrong type.
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;

  /// Parse a complete document. nullopt on any syntax error or trailing
  /// garbage.
  [[nodiscard]] static std::optional<JsonValue> parse(std::string_view src);
};

}  // namespace tinysdr::obs
