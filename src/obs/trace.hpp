// Sim-time event tracer: a low-overhead, ring-buffered recorder of
// timestamped structured events, exportable as Chrome/Perfetto
// `trace_event` JSON so an entire OTA campaign (ANNOUNCE -> READY -> DATA
// windows -> SACK -> reprogram, interleaved with radio deliveries, power
// transitions and injected faults) renders as a visual timeline at
// https://ui.perfetto.dev.
//
// Design rules:
//   - Null sink by default. `tracer()` returns nullptr until a
//     TraceSession installs one, and every instrumentation site guards on
//     that pointer, so an untraced run does no work beyond one branch and
//     is bit-identical to an uninstrumented build.
//   - Sim time, not wall clock. The simulation engines stamp the tracer's
//     clock (`set_time`) as they account simulated time; events inherit
//     that clock, so traces are deterministic for a fixed seed.
//   - Bounded memory. Events live in a fixed-capacity ring; overflow
//     drops the oldest events and counts them (`dropped()`).
//   - Thread-sharded, not thread-shared. The current-tracer pointer is
//     thread_local: each thread traces into its own sink (a Tracer is
//     still single-threaded). Parallel campaigns give every unit of work
//     an unbounded() shard tracer and merge the shards into the bounded
//     campaign tracer in deterministic index order with absorb(), so the
//     exported JSON is byte-identical regardless of thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"

namespace tinysdr::obs {

/// One key/value attachment on an event. Values are numbers or strings.
struct TraceArg {
  std::string key;
  bool is_string = false;
  double number = 0.0;
  std::string text;

  [[nodiscard]] static TraceArg num(std::string key, double value) {
    TraceArg a;
    a.key = std::move(key);
    a.number = value;
    return a;
  }
  [[nodiscard]] static TraceArg str(std::string key, std::string value) {
    TraceArg a;
    a.key = std::move(key);
    a.is_string = true;
    a.text = std::move(value);
    return a;
  }
};

/// A recorded event, in Chrome trace_event terms: phase 'X' = complete
/// span, 'i' = instant, 'C' = counter sample, 's'/'t'/'f' = flow
/// begin/step/end (causal arrows between spans, possibly on different
/// tracks). `track` maps to the tid, so each simulated node renders as
/// its own row; `flow_id` binds the legs of one flow together.
struct TraceEvent {
  double ts_us = 0.0;
  double dur_us = 0.0;
  char phase = 'i';
  std::uint32_t track = 0;
  std::uint64_t flow_id = 0;  ///< 's'/'t'/'f' phases only
  const char* category = "";
  std::string name;
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Shard tracer for one unit of parallel work: grows on demand and
  /// never drops, records against base 0, and is later absorb()ed into a
  /// bounded campaign tracer — which then applies the exact drop-oldest
  /// semantics a serial run would have.
  [[nodiscard]] static Tracer unbounded();
  [[nodiscard]] bool is_unbounded() const { return unbounded_; }

  /// Append a shard's events (oldest first) with their timestamps offset
  /// by this tracer's current base, merge its track names, and fold its
  /// dropped count in. The shard is left untouched; this tracer's clock
  /// and current track do not move (campaigns follow up with shift_base).
  void absorb(const Tracer& shard);

  // ------------------------------------------------------------ sim clock
  /// Current absolute sim time (base + engine-relative time).
  [[nodiscard]] Seconds now() const;
  /// Engine-relative clock: now = base + t. Engines call this as they
  /// account simulated time.
  void set_time(Seconds t);
  /// Lay consecutive timelines end to end (e.g. sequential per-node
  /// updates in a campaign): base += dt, and the relative clock restarts.
  void shift_base(Seconds dt);
  void reset_clock();

  // -------------------------------------------------- track (Perfetto tid)
  void set_track(std::uint32_t track) { track_ = track; }
  [[nodiscard]] std::uint32_t track() const { return track_; }
  /// Human name for a track, exported as thread_name metadata.
  void name_track(std::uint32_t track, std::string name);

  // ------------------------------------------------------------ recording
  void instant(const char* category, std::string name,
               std::vector<TraceArg> args = {});
  /// Complete span; `start` is absolute sim time (as returned by now()).
  void complete(const char* category, std::string name, Seconds start,
                Seconds duration, std::vector<TraceArg> args = {});
  /// Counter sample (renders as a value track in Perfetto).
  void counter(const char* category, std::string name, double value);

  // -------------------------------------------------------- causal flows
  // Flow events draw arrows between spans — an OTA chunk's first TX, its
  // retransmissions and the ACK that finally covers it, across node
  // tracks. All legs of one flow share `id` (derive it deterministically,
  // e.g. from the link seed + chunk seq, so exports stay byte-identical).
  // Each leg binds to the enclosing/nearest span on its track at the
  // current sim time.
  void flow_begin(const char* category, std::string name, std::uint64_t id);
  void flow_step(const char* category, std::string name, std::uint64_t id);
  void flow_end(const char* category, std::string name, std::uint64_t id);

  // --------------------------------------------------- inspection / export
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  /// Events oldest-first (a copy; the ring stays untouched).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Number of recorded events in a category.
  [[nodiscard]] std::size_t count_category(std::string_view category) const;
  void clear();

  /// Chrome trace_event JSON ("traceEvents" array + thread-name
  /// metadata); byte-deterministic for a fixed event sequence.
  void write_chrome_json(std::ostream& out) const;
  [[nodiscard]] std::string chrome_json() const;

 private:
  void push(TraceEvent event);

  std::vector<TraceEvent> ring_;
  bool unbounded_ = false;   ///< shard mode: append-only, never drops
  std::size_t next_ = 0;     ///< ring slot the next event lands in
  std::size_t count_ = 0;    ///< live events (<= capacity)
  std::size_t dropped_ = 0;  ///< events overwritten after overflow
  double base_us_ = 0.0;
  double now_us_ = 0.0;
  std::uint32_t track_ = 0;
  std::map<std::uint32_t, std::string> track_names_;
};

/// The calling thread's installed tracer, or nullptr (the null sink).
/// Instrumented code must guard on this before building any event
/// arguments.
[[nodiscard]] Tracer* tracer();

/// RAII installation of a tracer as the calling thread's sink. Nests;
/// the destructor restores the previously installed tracer. Worker
/// threads install per-shard sessions without disturbing the caller's.
class TraceSession {
 public:
  explicit TraceSession(Tracer& t);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  Tracer* previous_;
};

/// RAII span: remembers the tracer clock at construction and emits a
/// complete event at destruction. No-op when no tracer is installed.
class TraceSpan {
 public:
  TraceSpan(const char* category, std::string name)
      : tracer_(tracer()), category_(category), name_(std::move(name)) {
    if (tracer_ != nullptr) start_ = tracer_->now();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->complete(category_, std::move(name_), start_,
                        tracer_->now() - start_, std::move(args_));
    }
  }

  void arg(std::string key, double value) {
    if (tracer_ != nullptr)
      args_.push_back(TraceArg::num(std::move(key), value));
  }
  void arg(std::string key, std::string value) {
    if (tracer_ != nullptr)
      args_.push_back(TraceArg::str(std::move(key), std::move(value)));
  }

 private:
  Tracer* tracer_;
  const char* category_;
  std::string name_;
  Seconds start_{0.0};
  std::vector<TraceArg> args_;
};

}  // namespace tinysdr::obs
