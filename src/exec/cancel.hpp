// Cooperative cancellation for parallel regions.
//
// A CancellationSource owns the flag; any number of CancellationTokens
// observe it. Workers poll the token between chunks, so cancellation
// stops new work from starting but never interrupts an item mid-flight —
// every item either ran to completion or never started, which keeps
// partially-cancelled campaign results well defined.
#pragma once

#include <atomic>
#include <memory>
#include <utility>

namespace tinysdr::exec {

class CancellationToken {
 public:
  /// Default token: never cancelled (the common, zero-cost case).
  CancellationToken() = default;

  [[nodiscard]] bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }
  /// True when this token is wired to a source at all.
  [[nodiscard]] bool can_cancel() const { return flag_ != nullptr; }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { flag_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    return flag_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] CancellationToken token() const {
    return CancellationToken{flag_};
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace tinysdr::exec
