// ParallelFor: the one-call front door to the worker pool.
//
//   auto status = exec::parallel_for(nodes.size(), policy,
//                                    [&](std::size_t i, std::size_t w) {
//                                      results[i] = run_node(i);
//                                    });
//
// Body requirements for deterministic campaigns: write only to per-index
// state (results[i], shards[i]), derive randomness from
// exec::stream_seed(base, i), and never read another index's output.
// Under those rules the result is independent of thread count, grain and
// stealing order.
#pragma once

#include "exec/policy.hpp"
#include "exec/worker_pool.hpp"

namespace tinysdr::exec {

/// Run body(index, participant) over [0, n) on the shared pool. Blocks;
/// rethrows the first body exception; returns how the region ended.
inline RunStatus parallel_for(std::size_t n, const ExecPolicy& policy,
                              const WorkerPool::Body& body) {
  return WorkerPool::shared().run(n, policy, body);
}

/// Serial-policy shorthand (still chunked, still cancellable).
inline RunStatus serial_for(std::size_t n, const WorkerPool::Body& body) {
  return WorkerPool::shared().run(n, ExecPolicy::serial(), body);
}

}  // namespace tinysdr::exec
