// Fixed-size worker pool with chunked work-stealing over an index space.
//
// One pool of std::jthread workers serves every parallel region in the
// process (campaign passes, benches, tests), growing lazily to the
// largest thread count ever requested and parking between regions. A
// region (`run`) splits [0, n) into one contiguous slice per participant;
// each participant pops grain-sized chunks off the front of its own
// slice, and when its slice runs dry it steals the back half of a
// victim's remaining slice. Items are claimed by CAS on a packed
// (begin, end) word, so every index runs exactly once no matter how the
// stealing interleaves.
//
// Determinism contract: the pool guarantees each index runs exactly once
// and that all body side effects are visible to the caller when run()
// returns. It deliberately guarantees NOTHING about execution order —
// callers that need deterministic output must make per-index work
// self-contained (exec::stream_seed per index, per-index result slots)
// and do any order-sensitive reduction themselves afterwards.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/policy.hpp"

namespace tinysdr::exec {

/// True while the calling thread is executing inside a WorkerPool region
/// body. Nested regions degrade to inline serial execution on the calling
/// thread, so primitives that need real concurrency (exec::run_pinned and
/// the flowgraph's threaded scheduler built on it) check this to fall back
/// to dedicated threads instead.
[[nodiscard]] bool in_parallel_region();

class WorkerPool {
 public:
  /// Body of a parallel region: body(index, participant). `participant`
  /// is in [0, participants) and is stable for the duration of one chunk
  /// (use it to index per-worker scratch shards).
  using Body = std::function<void(std::size_t, std::size_t)>;

  WorkerPool() = default;
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Run body over [0, n) under the given policy. Blocks until every
  /// participant has drained; rethrows the first body exception. The
  /// calling thread is participant 0. Reentrant calls (from inside a
  /// body) degrade to inline serial execution on the calling thread.
  RunStatus run(std::size_t n, const ExecPolicy& policy, const Body& body);

  /// Spawned worker threads so far (grows on demand, never shrinks).
  [[nodiscard]] std::size_t spawned_workers() const;

  /// Process-wide pool shared by parallel_for / TaskGroup / campaigns.
  [[nodiscard]] static WorkerPool& shared();

 private:
  struct Job;

  void ensure_workers(std::size_t count);
  void worker_main(std::stop_token stop, std::size_t index);
  static void work(Job& job, std::size_t participant);
  static bool should_stop(Job& job);

  mutable std::mutex mu_;
  std::condition_variable_any job_cv_;   ///< workers park here
  std::condition_variable done_cv_;      ///< run() waits here
  std::vector<std::jthread> workers_;
  Job* job_ = nullptr;                   ///< region being executed, if any
  std::uint64_t epoch_ = 0;              ///< bumps once per region
};

}  // namespace tinysdr::exec
