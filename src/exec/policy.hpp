// Execution policy for parallel regions: how many workers, how work is
// chunked, and the cancellation / deadline budget the region runs under.
#pragma once

#include <cstddef>
#include <optional>

#include "common/units.hpp"
#include "exec/cancel.hpp"

namespace tinysdr::exec {

/// Why a parallel region stopped.
enum class RunOutcome {
  kCompleted,         ///< every item ran
  kCancelled,         ///< the region's CancellationToken fired
  kDeadlineExceeded,  ///< the wall-clock budget ran out
};

struct RunStatus {
  RunOutcome outcome = RunOutcome::kCompleted;
  std::size_t items_completed = 0;

  [[nodiscard]] bool complete() const {
    return outcome == RunOutcome::kCompleted;
  }
};

[[nodiscard]] const char* to_string(RunOutcome outcome);

struct ExecPolicy {
  /// Worker count for the region, including the calling thread.
  /// 0 = resolve from the TINYSDR_THREADS environment variable, falling
  /// back to std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Items a worker claims per grab; 0 = auto (max(1, n / (8 * threads))).
  /// Heavy, irregular items (one OTA update per index) want grain 1.
  std::size_t grain = 0;
  /// Checked between chunks; cancelling stops new items from starting.
  CancellationToken cancel{};
  /// Wall-clock budget for the whole region, checked between chunks.
  std::optional<Seconds> deadline{};

  [[nodiscard]] static ExecPolicy serial() { return ExecPolicy{.threads = 1}; }
  [[nodiscard]] static ExecPolicy with_threads(std::size_t n) {
    return ExecPolicy{.threads = n};
  }
  /// This policy with a (tighter) wall-clock budget. Used by the serve
  /// engine to spread one job-level deadline across its parallel regions:
  /// each region gets the time remaining, never more than it had.
  [[nodiscard]] ExecPolicy with_budget(Seconds budget) const {
    ExecPolicy p = *this;
    if (!p.deadline || budget < *p.deadline) p.deadline = budget;
    return p;
  }
};

/// Resolve a requested thread count: `requested` if nonzero, else the
/// TINYSDR_THREADS environment variable, else hardware concurrency.
/// Always at least 1, clamped to kMaxThreads.
[[nodiscard]] std::size_t resolved_threads(std::size_t requested);

inline constexpr std::size_t kMaxThreads = 512;

}  // namespace tinysdr::exec
