// TaskGroup: a bag of heterogeneous closures executed as one parallel
// region (each task is one index of a ParallelFor). Used for fleet work
// that is not a clean index space — e.g. one task per fault scenario, or
// mixed maintenance jobs across a testbed.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "exec/parallel_for.hpp"
#include "exec/policy.hpp"

namespace tinysdr::exec {

class TaskGroup {
 public:
  using Task = std::function<void()>;

  void add(Task task) { tasks_.push_back(std::move(task)); }

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] bool empty() const { return tasks_.empty(); }

  /// Run every task on the shared pool (grain forced to 1: tasks are
  /// heavy and unrelated). Blocks; rethrows the first task exception.
  /// Tasks added after run() returns belong to the next run().
  RunStatus run(const ExecPolicy& policy = {}) {
    ExecPolicy p = policy;
    if (p.grain == 0) p.grain = 1;
    auto status = parallel_for(
        tasks_.size(), p,
        [this](std::size_t i, std::size_t) { tasks_[i](); });
    tasks_.clear();
    return status;
  }

 private:
  std::vector<Task> tasks_;
};

}  // namespace tinysdr::exec
