#include "exec/policy.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace tinysdr::exec {

const char* to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kCompleted: return "completed";
    case RunOutcome::kCancelled: return "cancelled";
    case RunOutcome::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "unknown";
}

std::size_t resolved_threads(std::size_t requested) {
  std::size_t n = requested;
  if (n == 0) {
    if (const char* env = std::getenv("TINYSDR_THREADS");
        env != nullptr && *env != '\0') {
      char* end = nullptr;
      unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0') n = parsed;
    }
  }
  if (n == 0) n = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(n, 1, kMaxThreads);
}

}  // namespace tinysdr::exec
