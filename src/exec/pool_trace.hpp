// Wall-clock observability for the worker pool: an opt-in, process-wide
// trace sink that records every parallel_for region and every claimed
// chunk as Perfetto spans — region on track 0, one track per
// participant — with flow arrows (Tracer::flow_*) linking each chunk
// back to the region that dispatched it. Load the export next to a
// campaign trace and a single view answers "which worker ran node 37's
// update, and what else was that worker doing".
//
// This sink is deliberately OUTSIDE the determinism contract: it records
// wall-clock time and stealing order, which vary run to run. Campaign
// telemetry (per-node shard tracers merged in node order) stays
// byte-identical whether or not a pool trace session is active; the
// byte-identity tests never install one. The sink is mutex-guarded and
// shared by every worker; the null-sink rule still holds — without a
// session the pool pays one relaxed atomic load per chunk.
#pragma once

#include <cstdint>

#include "obs/trace.hpp"

namespace tinysdr::exec {

/// RAII installation of a process-wide pool trace sink. Nests; the
/// destructor restores the previously installed sink. The Tracer is
/// driven in wall-clock microseconds since session start (its sim-time
/// clock API is not used).
class PoolTraceSession {
 public:
  explicit PoolTraceSession(obs::Tracer& sink);
  ~PoolTraceSession();
  PoolTraceSession(const PoolTraceSession&) = delete;
  PoolTraceSession& operator=(const PoolTraceSession&) = delete;

 private:
  obs::Tracer* previous_;
};

namespace pool_trace {

/// Deterministic flow id for region `region_id` (splitmix64-mixed so ids
/// spread over the 64-bit space and do not collide with OTA chunk flows).
[[nodiscard]] std::uint64_t region_flow_id(std::uint64_t region_id);

/// True while a PoolTraceSession is installed (one relaxed load).
[[nodiscard]] bool active();

/// Wall-clock microseconds since the current session started.
[[nodiscard]] double now_us();

/// Next region id (process-wide, monotonic).
[[nodiscard]] std::uint64_t next_region_id();

/// Record one claimed chunk [begin, end) executed by `participant`
/// between wall timestamps [start_us, end_us], flow-linked to region
/// `region_id`.
void chunk(std::uint64_t region_id, std::size_t begin, std::size_t end,
           std::size_t participant, double start_us, double end_us);

/// Record a whole parallel region: n items over `participants` workers
/// between [start_us, end_us].
void region(std::uint64_t region_id, std::size_t n, std::size_t participants,
            double start_us, double end_us);

}  // namespace pool_trace

}  // namespace tinysdr::exec
