// run_pinned: one dedicated worker per task, for tasks that block on each
// other's progress.
//
// parallel_for's contract is throughput over an index space — items may be
// time-sliced, reordered, or run inline — which is exactly wrong for a set
// of long-lived cooperating loops (the flowgraph's per-block schedulers
// parking on ring credit). run_pinned guarantees each task its own thread
// for its whole lifetime, so a task may legitimately block until another
// task makes progress.
#pragma once

#include <cstddef>
#include <functional>

namespace tinysdr::exec {

/// Run task(0) ... task(count-1) concurrently, each pinned to its own
/// worker; the calling thread runs one of them. Blocks until every task
/// returns, then rethrows the first task exception.
///
/// CAUTION for blocking tasks: a task that throws aborts the region, and
/// tasks not yet started are skipped — a peer blocked on a skipped task's
/// progress would then never return. Tasks that park on each other must
/// catch their own failures and unblock their peers cooperatively (the
/// flow scheduler catches everything and poisons its rings) so every task
/// returns; the exception still propagates from here afterwards.
///
/// Uses the shared WorkerPool (threads = count, grain = 1: one one-item
/// slice per participant, claimed only after the claimer's previous item
/// completed) when that yields a dedicated thread per task; falls back to
/// dedicated jthreads when called from inside a pool region (nested pool
/// regions run inline — fatal for blocking tasks) or when count exceeds
/// the pool's thread clamp.
void run_pinned(std::size_t count,
                const std::function<void(std::size_t)>& task);

}  // namespace tinysdr::exec
