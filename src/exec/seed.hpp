// Deterministic seed streams for parallel work.
//
// A campaign draws ONE base seed, and every task's RNG stream is derived
// up front from (base, task index) with splitmix64 — a pure function, so
// per-task randomness is independent of execution order, thread count and
// work-stealing decisions. This is what lets a sharded campaign produce
// byte-identical results to a serial one.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace tinysdr::exec {

/// SplitMix64 finalizer (Steele, Lea & Flood, "Fast splittable
/// pseudorandom number generators"). Bijective on 64-bit values; a single
/// application is enough to decorrelate consecutive inputs.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Seed for stream `index` of a campaign rooted at `base`. Pure in both
/// arguments: stream i's seed never depends on how many other streams
/// were derived before it, or in what order.
[[nodiscard]] constexpr std::uint64_t stream_seed(std::uint64_t base,
                                                  std::uint64_t index) {
  return splitmix64(base + 0x9E3779B97F4A7C15ULL * index);
}

/// Draw a 64-bit campaign base seed from a caller-provided RNG (the only
/// sequential draw a campaign makes; everything downstream is derived).
[[nodiscard]] inline std::uint64_t draw_base_seed(Rng& rng) {
  std::uint64_t hi = rng.next_u32();
  std::uint64_t lo = rng.next_u32();
  return (hi << 32) | lo;
}

/// Ready-to-use PCG32 stream for task `index`.
[[nodiscard]] inline Rng stream_rng(std::uint64_t base, std::uint64_t index) {
  return Rng{stream_seed(base, index), splitmix64(index)};
}

}  // namespace tinysdr::exec
