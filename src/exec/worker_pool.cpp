#include "exec/worker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "exec/pool_trace.hpp"
#include "obs/flight.hpp"

namespace tinysdr::exec {

namespace {

/// Pack a half-open index range into one atomic word: begin in the high
/// 32 bits, end in the low 32. A single CAS claims from either side.
constexpr std::uint64_t pack_range(std::uint32_t begin, std::uint32_t end) {
  return (static_cast<std::uint64_t>(begin) << 32) | end;
}
constexpr std::uint32_t range_begin(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed >> 32);
}
constexpr std::uint32_t range_end(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed);
}

struct alignas(64) WorkerSlice {
  std::atomic<std::uint64_t> range{0};
};

/// True while the calling thread is executing a region body; nested
/// parallel regions fall back to inline serial execution.
thread_local bool t_in_region = false;

}  // namespace

bool in_parallel_region() { return t_in_region; }

struct WorkerPool::Job {
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t participants = 1;
  const Body* body = nullptr;
  std::vector<WorkerSlice> slices;  ///< one per participant

  CancellationToken cancel;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  std::atomic<bool> aborted{false};
  std::atomic<int> outcome{static_cast<int>(RunOutcome::kCompleted)};
  std::atomic<std::size_t> completed{0};

  std::mutex error_mu;
  std::exception_ptr error;

  /// Record why the region is stopping; first cause wins.
  void abort(RunOutcome why) {
    int expected = static_cast<int>(RunOutcome::kCompleted);
    outcome.compare_exchange_strong(expected, static_cast<int>(why),
                                    std::memory_order_relaxed);
    aborted.store(true, std::memory_order_relaxed);
  }

  void record_error(std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::move(e);
    }
    // Cancelled from the engine's point of view: stop starting items.
    abort(RunOutcome::kCancelled);
  }

  std::atomic<std::size_t> pending{0};  ///< spawned participants still working

  bool traced = false;          ///< a PoolTraceSession was active at launch
  std::uint64_t trace_id = 0;   ///< region id for flow linkage
};

WorkerPool::~WorkerPool() {
  for (auto& w : workers_) w.request_stop();
  job_cv_.notify_all();
  // jthread joins on destruction.
}

std::size_t WorkerPool::spawned_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool;
  return pool;
}

void WorkerPool::ensure_workers(std::size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  while (workers_.size() < count) {
    std::size_t index = workers_.size();
    workers_.emplace_back(
        [this, index](std::stop_token stop) { worker_main(stop, index); });
  }
}

bool WorkerPool::should_stop(Job& job) {
  if (job.aborted.load(std::memory_order_relaxed)) return true;
  if (job.cancel.cancelled()) {
    job.abort(RunOutcome::kCancelled);
    return true;
  }
  if (job.has_deadline &&
      std::chrono::steady_clock::now() >= job.deadline) {
    job.abort(RunOutcome::kDeadlineExceeded);
    return true;
  }
  return false;
}

void WorkerPool::work(Job& job, std::size_t participant) {
  const std::size_t p_count = job.participants;
  auto& own = job.slices[participant].range;

  auto claim_front = [&](std::atomic<std::uint64_t>& slot,
                         std::uint32_t take_at_most,
                         std::uint32_t& out_begin,
                         std::uint32_t& out_end) -> bool {
    std::uint64_t cur = slot.load(std::memory_order_acquire);
    while (true) {
      std::uint32_t b = range_begin(cur), e = range_end(cur);
      if (b >= e) return false;
      std::uint32_t take = std::min<std::uint32_t>(take_at_most, e - b);
      if (slot.compare_exchange_weak(cur, pack_range(b + take, e),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        out_begin = b;
        out_end = b + take;
        return true;
      }
    }
  };

  try {
    while (!should_stop(job)) {
      std::uint32_t b = 0, e = 0;
      bool got =
          claim_front(own, static_cast<std::uint32_t>(job.grain), b, e);
      if (!got) {
        // Own slice dry: steal the back half of some victim's remainder.
        for (std::size_t off = 1; off < p_count && !got; ++off) {
          auto& victim = job.slices[(participant + off) % p_count].range;
          std::uint64_t cur = victim.load(std::memory_order_acquire);
          while (true) {
            std::uint32_t vb = range_begin(cur), ve = range_end(cur);
            if (vb >= ve) break;
            std::uint32_t keep = (ve - vb) / 2;  // victim keeps the front
            std::uint32_t sb = vb + keep;
            if (victim.compare_exchange_weak(cur, pack_range(vb, sb),
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
              std::uint32_t take = std::min<std::uint32_t>(
                  static_cast<std::uint32_t>(job.grain), ve - sb);
              b = sb;
              e = sb + take;
              // Park any leftover in our own (empty) slice so other
              // thieves can keep load-balancing it.
              if (sb + take < ve)
                own.store(pack_range(sb + take, ve),
                          std::memory_order_release);
              got = true;
              break;
            }
          }
        }
      }
      if (!got) return;  // no work anywhere
      const double chunk_start =
          job.traced ? pool_trace::now_us() : 0.0;
      std::size_t ran = 0;
      for (std::uint32_t i = b; i < e; ++i) {
        (*job.body)(i, participant);
        ++ran;
      }
      job.completed.fetch_add(ran, std::memory_order_relaxed);
      if (job.traced)
        pool_trace::chunk(job.trace_id, b, e, participant, chunk_start,
                          pool_trace::now_us());
    }
  } catch (...) {
    job.record_error(std::current_exception());
  }
}

void WorkerPool::worker_main(std::stop_token stop, std::size_t index) {
  std::uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    job_cv_.wait(lock, stop, [&] {
      return job_ != nullptr && epoch_ != seen_epoch;
    });
    if (stop.stop_requested()) return;
    seen_epoch = epoch_;
    Job* job = job_;
    // Spawned worker `index` is participant index + 1 (caller is 0).
    if (job != nullptr && index + 1 < job->participants) {
      lock.unlock();
      t_in_region = true;
      work(*job, index + 1);
      t_in_region = false;
      lock.lock();
      if (job->pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
        done_cv_.notify_all();
    }
  }
}

RunStatus WorkerPool::run(std::size_t n, const ExecPolicy& policy,
                          const Body& body) {
  if (n > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("WorkerPool::run: index space > 2^32");

  Job job;
  job.n = n;
  job.body = &body;
  job.cancel = policy.cancel;
  if (policy.deadline) {
    job.has_deadline = true;
    job.deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(
                           policy.deadline->value()));
  }

  std::size_t threads = resolved_threads(policy.threads);
  // Nested regions and trivial spans run inline on the caller.
  if (t_in_region || n <= 1) threads = 1;
  job.participants = std::min(threads, std::max<std::size_t>(n, 1));
  job.grain = policy.grain != 0
                  ? policy.grain
                  : std::max<std::size_t>(1, n / (8 * job.participants));

  // One contiguous slice per participant; participant p gets
  // [p*n/P, (p+1)*n/P) so slices differ in size by at most one item.
  job.slices = std::vector<WorkerSlice>(job.participants);
  for (std::size_t p = 0; p < job.participants; ++p) {
    std::uint32_t begin =
        static_cast<std::uint32_t>(n * p / job.participants);
    std::uint32_t end =
        static_cast<std::uint32_t>(n * (p + 1) / job.participants);
    job.slices[p].range.store(pack_range(begin, end),
                              std::memory_order_relaxed);
  }

  double region_start = 0.0;
  if (pool_trace::active()) {
    job.traced = true;
    job.trace_id = pool_trace::next_region_id();
    region_start = pool_trace::now_us();
  }

  const bool was_in_region = t_in_region;
  if (job.participants == 1) {
    // Inline fast path: no pool involvement, same chunking semantics.
    t_in_region = true;
    work(job, 0);
    t_in_region = was_in_region;
  } else {
    ensure_workers(job.participants - 1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job.pending.store(job.participants - 1, std::memory_order_relaxed);
      job_ = &job;
      ++epoch_;
    }
    job_cv_.notify_all();
    t_in_region = true;
    work(job, 0);
    t_in_region = was_in_region;
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return job.pending.load(std::memory_order_acquire) == 0;
      });
      job_ = nullptr;
    }
  }

  if (job.traced)
    pool_trace::region(job.trace_id, n, job.participants, region_start,
                       pool_trace::now_us());

  {
    std::lock_guard<std::mutex> lock(job.error_mu);
    if (job.error) std::rethrow_exception(job.error);
  }
  RunStatus status;
  status.outcome =
      static_cast<RunOutcome>(job.outcome.load(std::memory_order_relaxed));
  status.items_completed = job.completed.load(std::memory_order_relaxed);
  // A tripped deadline or cancellation is exactly what a post-mortem
  // needs to see; completed regions stay silent so the flight log keeps
  // the byte-identical-across-threads guarantee.
  if (!status.complete()) {
    if (auto* f = obs::flight()) {
      f->record(obs::FlightLevel::kWarn, "exec", to_string(status.outcome),
                {obs::TraceArg::num(
                     "items_completed",
                     static_cast<double>(status.items_completed)),
                 obs::TraceArg::num("items_total", static_cast<double>(n))});
    }
  }
  return status;
}

}  // namespace tinysdr::exec
