#include "exec/pool_trace.hpp"

#include <atomic>
#include <chrono>
#include <mutex>

namespace tinysdr::exec {

namespace {

struct PoolTraceState {
  std::mutex mu;
  std::atomic<obs::Tracer*> sink{nullptr};
  std::chrono::steady_clock::time_point t0{};
  std::atomic<std::uint64_t> next_region{0};
};

PoolTraceState& state() {
  static PoolTraceState s;
  return s;
}

}  // namespace

PoolTraceSession::PoolTraceSession(obs::Tracer& sink) {
  PoolTraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  previous_ = s.sink.load(std::memory_order_relaxed);
  s.t0 = std::chrono::steady_clock::now();
  s.sink.store(&sink, std::memory_order_release);
}

PoolTraceSession::~PoolTraceSession() {
  PoolTraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.sink.store(previous_, std::memory_order_release);
}

namespace pool_trace {

std::uint64_t region_flow_id(std::uint64_t region_id) {
  // splitmix64 finalizer over a salted id keeps pool flows disjoint from
  // OTA chunk flows, which use a golden-ratio product of the link seed.
  std::uint64_t z = region_id + 0xB5297A4D2F6E5B37ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool active() {
  return state().sink.load(std::memory_order_relaxed) != nullptr;
}

double now_us() {
  PoolTraceState& s = state();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - s.t0)
      .count();
}

std::uint64_t next_region_id() {
  return state().next_region.fetch_add(1, std::memory_order_relaxed);
}

void chunk(std::uint64_t region_id, std::size_t begin, std::size_t end,
           std::size_t participant, double start_us, double end_us) {
  PoolTraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  obs::Tracer* t = s.sink.load(std::memory_order_relaxed);
  if (t == nullptr) return;
  const auto track = static_cast<std::uint32_t>(participant + 1);
  t->name_track(track, "worker-" + std::to_string(participant));
  t->set_track(track);
  t->set_time(Seconds::from_microseconds(start_us));
  t->flow_step("pool", "dispatch", region_flow_id(region_id));
  std::vector<obs::TraceArg> args;
  args.push_back(obs::TraceArg::num("begin", static_cast<double>(begin)));
  args.push_back(obs::TraceArg::num("end", static_cast<double>(end)));
  t->complete("pool", "chunk", Seconds::from_microseconds(start_us),
              Seconds::from_microseconds(end_us - start_us),
              std::move(args));
}

void region(std::uint64_t region_id, std::size_t n, std::size_t participants,
            double start_us, double end_us) {
  PoolTraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  obs::Tracer* t = s.sink.load(std::memory_order_relaxed);
  if (t == nullptr) return;
  t->name_track(0, "parallel_for");
  t->set_track(0);
  t->set_time(Seconds::from_microseconds(start_us));
  t->flow_begin("pool", "dispatch", region_flow_id(region_id));
  std::vector<obs::TraceArg> args;
  args.push_back(obs::TraceArg::num("items", static_cast<double>(n)));
  args.push_back(
      obs::TraceArg::num("participants", static_cast<double>(participants)));
  t->complete("pool", "region", Seconds::from_microseconds(start_us),
              Seconds::from_microseconds(end_us - start_us),
              std::move(args));
}

}  // namespace pool_trace

}  // namespace tinysdr::exec
