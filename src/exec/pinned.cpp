#include "exec/pinned.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/policy.hpp"
#include "exec/worker_pool.hpp"

namespace tinysdr::exec {

void run_pinned(std::size_t count,
                const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (count == 1) {
    task(0);
    return;
  }

  if (!in_parallel_region() && count <= kMaxThreads) {
    // threads = count and grain = 1 give every participant a one-item
    // slice; a participant only claims another task after its current one
    // returned, so at any moment each live task has a thread to itself.
    ExecPolicy policy;
    policy.threads = count;
    policy.grain = 1;
    (void)WorkerPool::shared().run(
        count, policy, [&](std::size_t i, std::size_t) { task(i); });
    return;
  }

  // Dedicated-thread fallback: pool concurrency is unavailable here.
  std::mutex mu;
  std::exception_ptr first_error;
  auto wrapped = [&](std::size_t i) {
    try {
      task(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!first_error) first_error = std::current_exception();
    }
  };
  {
    std::vector<std::jthread> threads;
    threads.reserve(count - 1);
    for (std::size_t i = 1; i < count; ++i)
      threads.emplace_back([&wrapped, i] { wrapped(i); });
    wrapped(0);
  }  // jthreads join here
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tinysdr::exec
