// Sigfox-style ultra-narrowband (UNB) DBPSK uplink — the remaining LPWAN
// protocol on the paper's support list ("LoRa, SIGFOX, LTE-M, NB-IoT,
// ZigBee and Bluetooth"; §1 notes Sigfox occupies only ~200 Hz).
//
// Sigfox's actual uplink is 100 bps DBPSK in a 100-200 Hz slice of the
// 868/915 MHz band with 12-byte payloads. We implement that PHY: a
// differential-BPSK modulator (phase flips on '0' bits, the Sigfox
// convention) with raised-cosine-smoothed transitions to bound the
// occupied bandwidth, and a differential-detection receiver that needs no
// carrier recovery. The frame follows the public Sigfox structure:
// preamble (0xAAAAA), frame type / sync, length-implied payload, CRC-16.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "dsp/types.hpp"

namespace tinysdr::sigfox {

inline constexpr double kBitRate = 100.0;
inline constexpr std::size_t kMaxPayload = 12;  ///< Sigfox uplink limit
inline constexpr std::uint16_t kSyncWord = 0xA35F;

struct UnbConfig {
  std::uint32_t samples_per_bit = 8;
  /// Fraction of the bit period used for the smooth phase transition.
  double transition_fraction = 0.25;

  [[nodiscard]] Hertz sample_rate() const {
    return Hertz{kBitRate * samples_per_bit};
  }
  /// Occupied bandwidth ~ bit rate * (1 + rolloff): a few hundred Hz.
  [[nodiscard]] Hertz occupied_bandwidth() const {
    return Hertz{kBitRate * 2.0};
  }
};

class UnbModem {
 public:
  explicit UnbModem(UnbConfig config = {});

  [[nodiscard]] const UnbConfig& config() const { return config_; }

  /// Frame bits: preamble (20 alternating bits) | sync (16) | length (4,
  /// payload bytes 0..12) | payload | CRC16.
  [[nodiscard]] std::vector<bool> frame_bits(
      std::span<const std::uint8_t> payload) const;

  /// DBPSK waveform: '1' keeps phase, '0' flips it (differential), with a
  /// smoothed transition to keep the signal ultra-narrowband.
  [[nodiscard]] dsp::Samples modulate(
      std::span<const std::uint8_t> payload) const;

  /// Differential receiver: per-bit correlation with the previous bit;
  /// preamble/sync hunt; CRC check.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> demodulate(
      std::span<const dsp::Complex> iq) const;

  /// Airtime: Sigfox frames take seconds (the price of 100 bps).
  [[nodiscard]] Seconds airtime(std::size_t payload_bytes) const;

 private:
  UnbConfig config_;
};

}  // namespace tinysdr::sigfox
