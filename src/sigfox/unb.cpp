#include "sigfox/unb.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/bitio.hpp"
#include "common/crc.hpp"

namespace tinysdr::sigfox {

UnbModem::UnbModem(UnbConfig config) : config_(config) {
  if (config_.samples_per_bit < 4)
    throw std::invalid_argument("UnbModem: need >= 4 samples/bit");
  if (config_.transition_fraction <= 0.0 ||
      config_.transition_fraction > 0.5)
    throw std::invalid_argument("UnbModem: transition fraction in (0, 0.5]");
}

std::vector<bool> UnbModem::frame_bits(
    std::span<const std::uint8_t> payload) const {
  if (payload.size() > kMaxPayload)
    throw std::invalid_argument("UnbModem: Sigfox payloads cap at 12 B");
  BitWriter bits;
  for (int i = 0; i < 20; ++i) bits.push_bit(i % 2 == 0);  // 1010... preamble
  bits.push_bits_msb_first(kSyncWord, 16);
  bits.push_bits_msb_first(payload.size(), 4);
  for (std::uint8_t b : payload) bits.push_bits_msb_first(b, 8);
  std::uint16_t crc = crc16_ccitt(payload);
  bits.push_bits_msb_first(crc, 16);
  return bits.bits();
}

dsp::Samples UnbModem::modulate(std::span<const std::uint8_t> payload) const {
  auto bits = frame_bits(payload);
  const std::uint32_t spb = config_.samples_per_bit;
  const auto trans = static_cast<std::uint32_t>(
      config_.transition_fraction * static_cast<double>(spb));

  // Differential encoding: '0' flips the carrier phase, '1' keeps it.
  dsp::Samples out;
  out.reserve((bits.size() + 1) * spb);
  double phase = 0.0;  // 0 or pi
  // One reference bit period before the data so the differential receiver
  // has a phase anchor.
  for (std::uint32_t s = 0; s < spb; ++s)
    out.push_back(dsp::Complex{1.0f, 0.0f});

  for (bool bit : bits) {
    double target = bit ? phase : (phase == 0.0 ? std::numbers::pi : 0.0);
    for (std::uint32_t s = 0; s < spb; ++s) {
      double p;
      if (s < trans && target != phase) {
        // Smooth raised-cosine phase ramp across the transition region.
        double x = static_cast<double>(s) / static_cast<double>(trans);
        double blend = 0.5 * (1.0 - std::cos(std::numbers::pi * x));
        p = phase + (target - phase) * blend;
      } else {
        p = target;
      }
      out.push_back(dsp::Complex{static_cast<float>(std::cos(p)),
                                 static_cast<float>(std::sin(p))});
    }
    phase = target;
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> UnbModem::demodulate(
    std::span<const dsp::Complex> iq) const {
  const std::uint32_t spb = config_.samples_per_bit;
  if (iq.size() < spb * 40) return std::nullopt;

  // Differential detection per offset: bit k decision =
  // sign(Re sum x[n] conj(x[n - spb])) over the bit's stable region.
  auto bits_at = [&](std::size_t offset) {
    std::vector<bool> bits;
    const std::uint32_t guard = spb / 2;  // skip the transition region
    for (std::size_t start = offset + spb; start + spb <= iq.size();
         start += spb) {
      double acc = 0.0;
      for (std::uint32_t s = guard; s < spb; ++s) {
        auto d = iq[start + s] * std::conj(iq[start + s - spb]);
        acc += d.real();
      }
      bits.push_back(acc > 0.0);
    }
    return bits;
  };

  // Sync hunt over sample offsets and bit positions.
  for (std::size_t offset = 0; offset < spb; ++offset) {
    auto bits = bits_at(offset);
    for (std::size_t start = 0; start + 16 + 4 <= bits.size(); ++start) {
      // Check sync word at candidate position (after >= 6 preamble bits).
      std::uint16_t sync = 0;
      for (int i = 0; i < 16; ++i)
        sync = static_cast<std::uint16_t>(
            (sync << 1) | (bits[start + static_cast<std::size_t>(i)] ? 1 : 0));
      if (sync != kSyncWord) continue;

      std::size_t pos = start + 16;
      std::uint8_t len = 0;
      for (int i = 0; i < 4; ++i)
        len = static_cast<std::uint8_t>((len << 1) | (bits[pos + static_cast<std::size_t>(i)] ? 1 : 0));
      pos += 4;
      if (len > kMaxPayload) continue;
      std::size_t need = (static_cast<std::size_t>(len) + 2) * 8;
      if (pos + need > bits.size()) continue;

      std::vector<std::uint8_t> payload;
      for (std::size_t b = 0; b < len; ++b) {
        std::uint8_t byte = 0;
        for (int i = 0; i < 8; ++i)
          byte = static_cast<std::uint8_t>(
              (byte << 1) |
              (bits[pos + b * 8 + static_cast<std::size_t>(i)] ? 1 : 0));
        payload.push_back(byte);
      }
      pos += static_cast<std::size_t>(len) * 8;
      std::uint16_t crc = 0;
      for (int i = 0; i < 16; ++i)
        crc = static_cast<std::uint16_t>(
            (crc << 1) | (bits[pos + static_cast<std::size_t>(i)] ? 1 : 0));
      if (crc16_ccitt(payload) == crc) return payload;
    }
  }
  return std::nullopt;
}

Seconds UnbModem::airtime(std::size_t payload_bytes) const {
  double bits = 20.0 + 16.0 + 4.0 +
                static_cast<double>(payload_bytes) * 8.0 + 16.0 + 1.0;
  return Seconds{bits / kBitRate};
}

}  // namespace tinysdr::sigfox
