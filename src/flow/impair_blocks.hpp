// Impairment and calibration blocks for free-running flowgraphs.
//
// The schedule-aware ImpairStreamBlock (link_stream.hpp) exists to replay
// LinkSimulator trials byte-for-byte. These blocks are the general-purpose
// counterparts for graphs with no FrameSchedule — a front-end capture
// chain, a TX distortion model ahead of a spectrum probe:
//
//   ImpairChainBlock  the whole stream is one region: every chain slot is
//                     seeded once at construction and its state carries
//                     forever (a radio's defects don't reset per packet);
//   DcNotchBlock      the streaming single-pole DC notch (impair::DcNotch);
//   CfoCorrectBlock   a fixed-frequency de-rotator with phase carried
//                     across chunks (apply the negative of an estimate).
//
// All three are pure stream functions of their input sequence — output
// independent of chunking — so they compose with either scheduler.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "dsp/cfo.hpp"
#include "flow/graph.hpp"
#include "impair/correct.hpp"
#include "impair/impair.hpp"

namespace tinysdr::flow {

/// The impairment chain over a continuous stream. Slot k draws from RNG
/// stream (seed, stream_base + k), mirroring the trial engines' layout.
class ImpairChainBlock : public Block {
 public:
  ImpairChainBlock(impair::Chain chain, std::uint64_t seed,
                   std::uint64_t stream_base = 0)
      : Block("impair_chain"), chain_(std::move(chain)) {
    states_.reserve(chain_.size());
    for (std::size_t k = 0; k < chain_.size(); ++k)
      states_.push_back(impair::ImpairState{Rng{seed, stream_base + k}});
  }

  WorkResult work(const ReadView& in, WriteView& out) override {
    const std::size_t n = std::min(in.size(), out.size());
    for (std::size_t i = 0; i < n; ++i) out[i] = in[i];
    std::size_t done = 0;
    while (done < n) {
      auto seg = out.chunk(done, n - done);
      for (std::size_t k = 0; k < chain_.size(); ++k)
        chain_[k].impairment->apply(seg, states_[k]);
      done += seg.size();
    }
    return {n, n};
  }

 private:
  impair::Chain chain_;
  std::vector<impair::ImpairState> states_;
};

/// Streaming DC removal: impair::DcNotch as a flow block.
class DcNotchBlock : public Block {
 public:
  explicit DcNotchBlock(float alpha = 1.0f / 1024.0f)
      : Block("dc_notch"), notch_(alpha) {}

  WorkResult work(const ReadView& in, WriteView& out) override {
    const std::size_t n = std::min(in.size(), out.size());
    for (std::size_t i = 0; i < n; ++i) out[i] = in[i];
    std::size_t done = 0;
    while (done < n) {
      auto seg = out.chunk(done, n - done);
      notch_.process(seg);
      done += seg.size();
    }
    return {n, n};
  }

  [[nodiscard]] dsp::Complex dc() const { return notch_.dc(); }

 private:
  impair::DcNotch notch_;
};

/// Fixed-frequency mixer: rotates the stream by e^{j*2*pi*f*n}, n the
/// absolute sample index, phase continuous across chunks. To correct an
/// offset, feed it the negative of a dsp::estimate_cfo reading.
class CfoCorrectBlock : public Block {
 public:
  explicit CfoCorrectBlock(double cycles_per_sample)
      : Block("cfo_correct"), cycles_per_sample_(cycles_per_sample) {}

  WorkResult work(const ReadView& in, WriteView& out) override {
    const std::size_t n = std::min(in.size(), out.size());
    // Phase is position-pure: phi = step * absolute_index, one rounding
    // path per sample, so chunk boundaries can never skew the rotation.
    const double step = 2.0 * std::numbers::pi * cycles_per_sample_;
    for (std::size_t i = 0; i < n; ++i) {
      const double phi = step * static_cast<double>(pos_ + i);
      out[i] = in[i] * dsp::Complex{static_cast<float>(std::cos(phi)),
                                    static_cast<float>(std::sin(phi))};
    }
    pos_ += n;
    return {n, n};
  }

  [[nodiscard]] double cycles_per_sample() const { return cycles_per_sample_; }

 private:
  double cycles_per_sample_;
  std::uint64_t pos_ = 0;
};

}  // namespace tinysdr::flow
