// Standard block library for the flowgraph framework: the platform's DSP
// primitives in GNU-Radio-style clothing.
#pragma once

#include <cmath>
#include <functional>

#include "dsp/fir.hpp"
#include "dsp/nco.hpp"
#include "flow/graph.hpp"
#include "phy/phy.hpp"
#include "radio/quantizer.hpp"

namespace tinysdr::flow {

inline constexpr std::size_t kChunk = 1024;

/// Source emitting a fixed sample vector once.
class VectorSource : public Block {
 public:
  explicit VectorSource(dsp::Samples data)
      : Block("vector_source"), data_(std::move(data)) {}

  bool work(Ring*, Ring* out) override {
    if (pos_ >= data_.size() || out == nullptr) return false;
    std::span<const dsp::Complex> remaining{data_.data() + pos_,
                                            data_.size() - pos_};
    std::size_t pushed = out->push(remaining.subspan(
        0, std::min<std::size_t>(remaining.size(), kChunk)));
    pos_ += pushed;
    return pushed > 0;
  }
  [[nodiscard]] bool finished() const override { return pos_ >= data_.size(); }

 private:
  dsp::Samples data_;
  std::size_t pos_ = 0;
};

/// Source emitting `count` samples of a complex tone from the DDS.
class NcoSource : public Block {
 public:
  NcoSource(double cycles_per_sample, std::size_t count)
      : Block("nco_source"), count_(count) {
    nco_.set_frequency(cycles_per_sample);
  }

  bool work(Ring*, Ring* out) override {
    if (emitted_ >= count_ || out == nullptr) return false;
    std::size_t n = std::min({kChunk, count_ - emitted_, out->space()});
    if (n == 0) return false;
    dsp::Samples chunk;
    chunk.reserve(n);
    for (std::size_t i = 0; i < n; ++i) chunk.push_back(nco_.next());
    emitted_ += out->push(chunk);
    return true;
  }
  [[nodiscard]] bool finished() const override { return emitted_ >= count_; }

 private:
  dsp::Nco nco_;
  std::size_t count_;
  std::size_t emitted_ = 0;
};

/// Streaming FIR filter block.
class FirBlock : public Block {
 public:
  explicit FirBlock(std::vector<float> taps)
      : Block("fir"), fir_(std::move(taps)) {}

  bool work(Ring* in, Ring* out) override {
    if (in == nullptr || out == nullptr) return false;
    std::size_t n = std::min(in->size(), out->space());
    if (n == 0) return false;
    dsp::Samples chunk;
    in->pop(std::min(n, kChunk), chunk);
    auto filtered = fir_.filter(chunk);
    out->push(filtered);
    return !chunk.empty();
  }

 private:
  dsp::FirFilter fir_;
};

/// Keep-one-in-N decimator.
class DecimatorBlock : public Block {
 public:
  explicit DecimatorBlock(std::size_t factor)
      : Block("decimator"), factor_(factor) {
    if (factor == 0) throw std::invalid_argument("DecimatorBlock: factor 0");
  }

  bool work(Ring* in, Ring* out) override {
    if (in == nullptr || out == nullptr || in->empty()) return false;
    dsp::Samples chunk;
    in->pop(kChunk, chunk);
    dsp::Samples kept;
    for (const auto& s : chunk) {
      if (phase_ == 0) kept.push_back(s);
      phase_ = (phase_ + 1) % factor_;
    }
    out->push(kept);
    return true;
  }

 private:
  std::size_t factor_;
  std::size_t phase_ = 0;
};

/// Block-AGC + ADC quantization (the radio receive path as a block).
class QuantizerBlock : public Block {
 public:
  explicit QuantizerBlock(int bits = 13)
      : Block("quantizer"), quantizer_(bits, 1.0f) {}

  bool work(Ring* in, Ring* out) override {
    if (in == nullptr || out == nullptr || in->empty()) return false;
    dsp::Samples chunk;
    in->pop(kChunk, chunk);
    auto quantized = quantizer_.roundtrip(chunk);
    out->push(quantized);
    return true;
  }

 private:
  radio::IqQuantizer quantizer_;
};

/// Apply an arbitrary per-sample function (lambda block).
class MapBlock : public Block {
 public:
  using Fn = std::function<dsp::Complex(dsp::Complex)>;
  explicit MapBlock(Fn fn) : Block("map"), fn_(std::move(fn)) {}

  bool work(Ring* in, Ring* out) override {
    if (in == nullptr || out == nullptr || in->empty()) return false;
    dsp::Samples chunk;
    in->pop(kChunk, chunk);
    for (auto& s : chunk) s = fn_(s);
    out->push(chunk);
    return true;
  }

 private:
  Fn fn_;
};

/// Source transmitting one frame through a unified-PHY transmitter: the
/// payload is modulated up front and the waveform streamed out in chunks,
/// so any PhyTx drops into a flowgraph as its head end.
class PhyTxSource : public Block {
 public:
  PhyTxSource(const phy::PhyTx& tx, std::span<const std::uint8_t> payload,
              std::size_t pad_samples = 0)
      : Block("phy_tx:" + std::string(phy::protocol_name(tx.protocol()))) {
    data_.assign(pad_samples, dsp::Complex{0.0f, 0.0f});
    tx.modulate(payload, data_);
    data_.insert(data_.end(), pad_samples, dsp::Complex{0.0f, 0.0f});
  }

  bool work(Ring*, Ring* out) override {
    if (pos_ >= data_.size() || out == nullptr) return false;
    std::span<const dsp::Complex> remaining{data_.data() + pos_,
                                            data_.size() - pos_};
    std::size_t pushed = out->push(remaining.subspan(
        0, std::min<std::size_t>(remaining.size(), kChunk)));
    pos_ += pushed;
    return pushed > 0;
  }
  [[nodiscard]] bool finished() const override { return pos_ >= data_.size(); }

 private:
  dsp::Samples data_;
  std::size_t pos_ = 0;
};

/// Terminal sink feeding a unified-PHY receiver: samples accumulate until
/// the graph drains, then `result()` demodulates the whole capture and
/// scores it against the reference payload.
class PhyRxSink : public Block {
 public:
  PhyRxSink(const phy::PhyRx& rx, std::vector<std::uint8_t> reference)
      : Block("phy_rx:" + std::string(phy::protocol_name(rx.protocol()))),
        rx_(&rx),
        reference_(std::move(reference)) {}

  bool work(Ring* in, Ring*) override {
    if (in == nullptr || in->empty()) return false;
    in->pop(in->size(), data_);
    return true;
  }

  [[nodiscard]] const dsp::Samples& data() const { return data_; }
  [[nodiscard]] phy::FrameResult result() const {
    return rx_->demodulate(data_, reference_);
  }

 private:
  const phy::PhyRx* rx_;
  std::vector<std::uint8_t> reference_;
  dsp::Samples data_;
};

/// Terminal sink collecting everything.
class VectorSink : public Block {
 public:
  VectorSink() : Block("vector_sink") {}

  bool work(Ring* in, Ring*) override {
    if (in == nullptr || in->empty()) return false;
    in->pop(in->size(), data_);
    return true;
  }

  [[nodiscard]] const dsp::Samples& data() const { return data_; }

 private:
  dsp::Samples data_;
};

/// Terminal sink measuring mean power and peak magnitude.
class PowerProbe : public Block {
 public:
  PowerProbe() : Block("power_probe") {}

  bool work(Ring* in, Ring*) override {
    if (in == nullptr || in->empty()) return false;
    dsp::Samples chunk;
    in->pop(in->size(), chunk);
    for (const auto& s : chunk) {
      double m = std::norm(s);
      power_sum_ += m;
      peak_ = std::max(peak_, std::sqrt(m));
      ++count_;
    }
    return true;
  }

  [[nodiscard]] double mean_power() const {
    return count_ == 0 ? 0.0 : power_sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double peak() const { return peak_; }
  [[nodiscard]] std::size_t samples() const { return count_; }

 private:
  double power_sum_ = 0.0;
  double peak_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace tinysdr::flow
