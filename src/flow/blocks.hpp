// Standard block library for the zero-copy flowgraph: the platform's DSP
// primitives in GNU-Radio-style clothing, working in place on ring views.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>

#include "dsp/fir.hpp"
#include "dsp/nco.hpp"
#include "flow/graph.hpp"
#include "obs/metrics.hpp"
#include "phy/phy.hpp"
#include "radio/quantizer.hpp"

namespace tinysdr::flow {

/// Per-activation production cap for sources: bounds single-thread
/// scheduler latency per pass without affecting output (blocks are
/// chunk-size independent). 4096 complex samples (32 KiB) amortizes
/// per-activation accounting while staying L1/L2 resident downstream.
inline constexpr std::size_t kChunk = 4096;

/// Source emitting a fixed sample vector once.
class VectorSource : public Block {
 public:
  explicit VectorSource(dsp::Samples data)
      : Block("vector_source"), data_(std::move(data)) {}

  WorkResult work(const ReadView&, WriteView& out) override {
    std::size_t n = std::min(out.size(), data_.size() - pos_);
    out.write(0, std::span<const dsp::Complex>{data_.data() + pos_, n});
    pos_ += n;
    return {0, n};
  }
  [[nodiscard]] bool finished() const override { return pos_ >= data_.size(); }

 private:
  dsp::Samples data_;
  std::size_t pos_ = 0;
};

/// Source emitting `count` samples of a complex tone from the DDS,
/// synthesized directly into the ring.
class NcoSource : public Block {
 public:
  NcoSource(double cycles_per_sample, std::size_t count)
      : Block("nco_source"), count_(count) {
    nco_.set_frequency(cycles_per_sample);
  }

  WorkResult work(const ReadView&, WriteView& out) override {
    std::size_t n = std::min({kChunk, count_ - emitted_, out.size()});
    std::size_t written = 0;
    while (written < n) {
      auto seg = out.chunk(written, n - written);
      for (auto& s : seg) s = nco_.next();
      written += seg.size();
    }
    emitted_ += n;
    return {0, n};
  }
  [[nodiscard]] bool finished() const override { return emitted_ >= count_; }

 private:
  dsp::Nco nco_;
  std::size_t count_;
  std::size_t emitted_ = 0;
};

/// Streaming FIR filter: contiguous input runs go straight through
/// FirFilter::filter_into into the output view — no staging buffers.
class FirBlock : public Block {
 public:
  explicit FirBlock(std::vector<float> taps)
      : Block("fir"), fir_(std::move(taps)) {}

  WorkResult work(const ReadView& in, WriteView& out) override {
    std::size_t n = std::min(in.size(), out.size());
    std::size_t done = 0;
    while (done < n) {
      auto src = in.chunk(done, n - done);
      auto dst = out.chunk(done, src.size());
      std::size_t m = std::min(src.size(), dst.size());
      fir_.filter_into(src.first(m), dst.first(m));
      done += m;
    }
    return {n, n};
  }

 private:
  dsp::FirFilter fir_;
};

/// Keep-one-in-N decimator (phase carried across activations).
class DecimatorBlock : public Block {
 public:
  explicit DecimatorBlock(std::size_t factor)
      : Block("decimator"), factor_(factor) {
    if (factor == 0) throw std::invalid_argument("DecimatorBlock: factor 0");
  }

  WorkResult work(const ReadView& in, WriteView& out) override {
    // Segment-at-a-time strided copy (per-sample view indexing would
    // branch into the ring's two spans on every access).
    std::size_t consumed = 0;
    std::size_t produced = 0;
    const std::size_t n = in.size();
    while (consumed < n) {
      auto src = in.chunk(consumed, n - consumed);
      auto dst = out.chunk(produced, out.size() - produced);
      std::size_t si = phase_ == 0 ? 0 : factor_ - phase_;
      std::size_t di = 0;
      while (si < src.size() && di < dst.size()) {
        dst[di++] = src[si];
        si += factor_;
      }
      if (si < src.size()) {
        // Output segment full: stop at the last unconsumed input.
        phase_ = 0;
        consumed += si;
        produced += di;
        break;
      }
      phase_ = (phase_ + src.size()) % factor_;
      consumed += src.size();
      produced += di;
    }
    return {consumed, produced};
  }

 private:
  std::size_t factor_;
  std::size_t phase_ = 0;
};

/// Block-AGC + ADC quantization (the radio receive path as a block).
class QuantizerBlock : public Block {
 public:
  explicit QuantizerBlock(int bits = 13)
      : Block("quantizer"), quantizer_(bits, 1.0f) {}

  WorkResult work(const ReadView& in, WriteView& out) override {
    std::size_t n = std::min(in.size(), out.size());
    for (std::size_t i = 0; i < n; ++i)
      out[i] = quantizer_.dequantize(quantizer_.quantize(in[i]));
    return {n, n};
  }

 private:
  radio::IqQuantizer quantizer_;
};

/// Apply an arbitrary per-sample function (lambda block).
class MapBlock : public Block {
 public:
  using Fn = std::function<dsp::Complex(dsp::Complex)>;
  explicit MapBlock(Fn fn) : Block("map"), fn_(std::move(fn)) {}

  WorkResult work(const ReadView& in, WriteView& out) override {
    std::size_t n = std::min(in.size(), out.size());
    for (std::size_t i = 0; i < n; ++i) out[i] = fn_(in[i]);
    return {n, n};
  }

 private:
  Fn fn_;
};

/// Release a burst when the edge's sample counter reaches a target
/// (litex_m2sdr's timed_tx against its hardware sample_counter): emits
/// silence until the output stream position hits `fire_at_sample`, then
/// passes the input burst through verbatim. With `total_samples` set the
/// gate keeps the TX timeline running with silence after the burst until
/// that many samples have left, then ends the stream.
class TimedTxGate : public Block {
 public:
  explicit TimedTxGate(std::uint64_t fire_at_sample,
                       std::optional<std::uint64_t> total_samples = {})
      : Block("timed_tx_gate"),
        fire_at_(fire_at_sample),
        total_(total_samples) {
    if (total_ && *total_ < fire_at_)
      throw std::invalid_argument("TimedTxGate: total < fire_at");
  }

  WorkResult work(const ReadView& in, WriteView& out) override {
    std::uint64_t pos = out.stream_pos();
    std::size_t produced = 0;
    // Lead-in silence up to the fire point.
    if (pos < fire_at_) {
      std::size_t zeros = static_cast<std::size_t>(
          std::min<std::uint64_t>(fire_at_ - pos, out.size()));
      out.fill(0, zeros, dsp::Complex{0.0f, 0.0f});
      produced += zeros;
    }
    // The burst itself.
    std::size_t n = std::min(in.size(), out.size() - produced);
    std::size_t copied = 0;
    while (copied < n) {
      auto src = in.chunk(copied, n - copied);
      out.write(produced + copied, src);
      copied += src.size();
    }
    produced += n;
    // Tail silence once the burst is fully through, if a stream length
    // was requested; returning {0,0} afterwards retires the gate.
    if (total_ && in.done() && in.size() == n) {
      std::uint64_t sent = pos + produced;
      if (sent < *total_) {
        std::size_t zeros = static_cast<std::size_t>(std::min<std::uint64_t>(
            *total_ - sent, out.size() - produced));
        out.fill(produced, zeros, dsp::Complex{0.0f, 0.0f});
        produced += zeros;
      }
    }
    return {n, produced};
  }

 private:
  std::uint64_t fire_at_;
  std::optional<std::uint64_t> total_;
};

/// Source transmitting one frame through a unified-PHY transmitter: the
/// payload is modulated up front and the waveform streamed out, so any
/// PhyTx drops into a flowgraph as its head end.
class PhyTxSource : public Block {
 public:
  PhyTxSource(const phy::PhyTx& tx, std::span<const std::uint8_t> payload,
              std::size_t pad_samples = 0)
      : Block("phy_tx:" + std::string(phy::protocol_name(tx.protocol()))) {
    data_.assign(pad_samples, dsp::Complex{0.0f, 0.0f});
    tx.modulate(payload, data_);
    data_.insert(data_.end(), pad_samples, dsp::Complex{0.0f, 0.0f});
  }

  WorkResult work(const ReadView&, WriteView& out) override {
    std::size_t n = std::min(out.size(), data_.size() - pos_);
    out.write(0, std::span<const dsp::Complex>{data_.data() + pos_, n});
    pos_ += n;
    return {0, n};
  }
  [[nodiscard]] bool finished() const override { return pos_ >= data_.size(); }

 private:
  dsp::Samples data_;
  std::size_t pos_ = 0;
};

/// Terminal sink feeding a unified-PHY receiver: samples accumulate until
/// the graph drains, then `result()` demodulates the whole capture and
/// scores it against the reference payload. `capture_cap` bounds the
/// stored capture for long streaming runs; samples past the cap are still
/// consumed (so the stream keeps flowing) but dropped and counted.
class PhyRxSink : public Block {
 public:
  static constexpr std::size_t kUncapped =
      std::numeric_limits<std::size_t>::max();

  PhyRxSink(const phy::PhyRx& rx, std::vector<std::uint8_t> reference,
            std::size_t capture_cap = kUncapped)
      : Block("phy_rx:" + std::string(phy::protocol_name(rx.protocol()))),
        rx_(&rx),
        reference_(std::move(reference)),
        cap_(capture_cap) {}

  WorkResult work(const ReadView& in, WriteView&) override {
    std::size_t keep = std::min(in.size(), cap_ - data_.size());
    std::size_t old = data_.size();
    data_.resize(old + keep);
    in.copy_to(std::span<dsp::Complex>{data_.data() + old, keep});
    std::size_t dropped = in.size() - keep;
    if (dropped > 0) {
      dropped_ += dropped;
      if (auto* m = obs::metrics())
        m->counter("flow.sink_overflow").add(static_cast<double>(dropped));
    }
    return {in.size(), 0};
  }

  [[nodiscard]] const dsp::Samples& data() const { return data_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] phy::FrameResult result() const {
    return rx_->demodulate(data_, reference_);
  }

 private:
  const phy::PhyRx* rx_;
  std::vector<std::uint8_t> reference_;
  dsp::Samples data_;
  std::size_t cap_;
  std::uint64_t dropped_ = 0;
};

/// Terminal sink collecting everything (up to an optional cap; overflow
/// is consumed-but-dropped and counted, so capped sinks never stall a
/// streaming graph).
class VectorSink : public Block {
 public:
  static constexpr std::size_t kUncapped =
      std::numeric_limits<std::size_t>::max();

  explicit VectorSink(std::size_t cap = kUncapped)
      : Block("vector_sink"), cap_(cap) {}

  WorkResult work(const ReadView& in, WriteView&) override {
    std::size_t keep = std::min(in.size(), cap_ - data_.size());
    std::size_t old = data_.size();
    data_.resize(old + keep);
    in.copy_to(std::span<dsp::Complex>{data_.data() + old, keep});
    std::size_t dropped = in.size() - keep;
    if (dropped > 0) {
      dropped_ += dropped;
      if (auto* m = obs::metrics())
        m->counter("flow.sink_overflow").add(static_cast<double>(dropped));
    }
    return {in.size(), 0};
  }

  [[nodiscard]] const dsp::Samples& data() const { return data_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  dsp::Samples data_;
  std::size_t cap_;
  std::uint64_t dropped_ = 0;
};

/// Terminal sink measuring mean power and peak magnitude in place.
class PowerProbe : public Block {
 public:
  PowerProbe() : Block("power_probe") {}

  WorkResult work(const ReadView& in, WriteView&) override {
    for (auto seg : {in.first(), in.second()}) {
      for (const auto& s : seg) {
        double m = std::norm(s);
        power_sum_ += m;
        peak_ = std::max(peak_, std::sqrt(m));
        ++count_;
      }
    }
    return {in.size(), 0};
  }

  [[nodiscard]] double mean_power() const {
    return count_ == 0 ? 0.0 : power_sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double peak() const { return peak_; }
  [[nodiscard]] std::size_t samples() const { return count_; }

 private:
  double power_sum_ = 0.0;
  double peak_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace tinysdr::flow
