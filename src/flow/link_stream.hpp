// Continuous-waveform LinkSimulator mode: the trial engine rebuilt as a
// streaming flowgraph.
//
// LinkSimulator::run_point() processes trials as isolated vectors — fine
// for PER curves, wrong shape for a testbed that streams frames
// back-to-back through a live channel. StreamingLink runs the same
// experiment as one continuous sample stream:
//
//   FrameStreamSource -> InterfererMixBlock -> AwgnStreamBlock
//                     -> FrameSlicerSink
//
// The source modulates frame after frame (pad + waveform + pad, then an
// inter-frame gap of silence) and publishes a FrameSchedule entry per
// frame; the channel blocks look the schedule up by absolute stream
// position (ReadView::stream_pos) to know which trial's RNG drives each
// sample; the slicer reassembles each frame region and demodulates it.
//
// Determinism contract: every random draw replays LinkSimulator's exact
// streams (payload / interferer / channel selectors off the same
// (point, trial) seeds) and every float lands in the same accumulation
// order, so the aggregated PointResult is byte-identical to
// LinkSimulator::run_point() for the same plan and point — pinned by
// tests, and equally true for run() and run_threaded().
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "channel/noise.hpp"
#include "flow/blocks.hpp"
#include "flow/graph.hpp"
#include "phy/link_sim.hpp"
#include "phy/phy.hpp"

namespace tinysdr::flow {

/// Continuous-mode configuration: the familiar TrialPlan (trials become
/// back-to-back frames) plus the streaming-only knobs.
struct StreamPlan {
  phy::TrialPlan trial;
  /// Silence between consecutive frame regions.
  std::size_t gap_samples = 0;
  /// Capacity of every ring in the streaming graph.
  std::size_t ring_capacity = kDefaultRingCapacity;
};

/// One frame's region in the stream: where it sits, what was sent, and
/// the randomness that shaped it. Immutable once published.
struct FrameEntry {
  std::uint64_t start = 0;   ///< absolute stream position of the region
  std::size_t length = 0;    ///< pad + waveform + pad
  std::uint64_t trial_seed = 0;
  std::vector<std::uint8_t> payload;
  /// Interferer emissions for this frame, one per active slot, plus the
  /// clean region they superpose onto (populated only when waves exist).
  /// The mix block replays channel::superpose over these verbatim, so the
  /// combined region is bit-for-bit what run_point() computes.
  std::vector<dsp::Samples> waves;
  std::vector<double> rel_dbs;  ///< per-wave power relative to the signal
  dsp::Samples clean;
};

/// Append-only, position-ordered frame metadata shared by the source and
/// the downstream channel/slicer blocks. The source publishes an entry
/// before committing any of the region's samples, so by the time a
/// consumer's ReadView covers a position, its entry is visible; each
/// consumer walks the schedule with its own cursor.
class FrameSchedule {
 public:
  void push(FrameEntry entry);
  /// Entry at `cursor`, or nullptr if not published yet. The pointer stays
  /// valid for the schedule's lifetime (entries are never removed).
  [[nodiscard]] const FrameEntry* at(std::size_t cursor) const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<FrameEntry> entries_;
};

/// Source: modulates the plan's trials as one continuous stream of frame
/// regions separated by gaps, publishing a FrameEntry per region.
class FrameStreamSource : public Block {
 public:
  FrameStreamSource(const phy::PhyTx& tx, const StreamPlan& plan,
                    const phy::SweepPoint& point,
                    std::vector<std::pair<const phy::Interferer*,
                                          std::optional<Dbm>>> slots,
                    FrameSchedule* schedule);

  WorkResult work(const ReadView& in, WriteView& out) override;
  [[nodiscard]] bool finished() const override;

 private:
  void stage_frame(std::uint64_t start);

  const phy::PhyTx* tx_;
  const StreamPlan* plan_;
  phy::SweepPoint point_;
  std::vector<std::pair<const phy::Interferer*, std::optional<Dbm>>> slots_;
  FrameSchedule* schedule_;
  std::uint64_t point_seed_ = 0;

  std::size_t frame_idx_ = 0;
  dsp::Samples staged_;        ///< current region's clean padded waveform
  std::size_t region_pos_ = 0;
  std::size_t gap_left_ = 0;
  bool in_gap_ = false;
};

/// Superposes each schedule entry's interferer overlays onto the stream
/// (the only thing between frame regions is silence, passed through).
class InterfererMixBlock : public Block {
 public:
  explicit InterfererMixBlock(const FrameSchedule* schedule)
      : Block("interferer_mix"), schedule_(schedule) {}

  WorkResult work(const ReadView& in, WriteView& out) override;

 private:
  const FrameSchedule* schedule_;
  std::size_t cursor_ = 0;
  dsp::Samples mixed_;  ///< current region after superposition
};

/// AWGN channel as a stream block: each frame region gets its own
/// AwgnChannel seeded from the entry's trial seed (LinkSimulator's channel
/// stream), gaps stay noiseless — exactly what the per-trial engine does.
class AwgnStreamBlock : public Block {
 public:
  AwgnStreamBlock(const FrameSchedule* schedule, Hertz sample_rate,
                  double noise_figure_db, Dbm rssi);

  WorkResult work(const ReadView& in, WriteView& out) override;

 private:
  const FrameSchedule* schedule_;
  Hertz sample_rate_;
  double noise_figure_db_;
  double snr_db_ = 0.0;
  std::size_t cursor_ = 0;
  std::optional<channel::AwgnChannel> channel_;  ///< current region's RNG
};

/// The impairment chain as a schedule-aware stream block: applies every
/// slot of one stage, in chain order, to each frame region (gaps pass
/// through untouched). Per-slot ImpairState is re-seeded at region entry
/// from the entry's trial seed and the slot's *global* chain index —
/// exactly LinkSimulator's Rng{tseed, kImpairStreamBase + k} — and carried
/// across chunks, so the output is byte-identical to the batch engine for
/// any ring size and either scheduler.
class ImpairStreamBlock : public Block {
 public:
  ImpairStreamBlock(const FrameSchedule* schedule, const impair::Chain& chain,
                    impair::Stage stage);

  WorkResult work(const ReadView& in, WriteView& out) override;

  /// Total region samples this stage processed (same count for every slot
  /// in the stage — each slot sees the whole region).
  [[nodiscard]] std::uint64_t samples_processed() const {
    return samples_processed_;
  }

 private:
  struct Slot {
    const impair::Impairment* impairment;
    std::size_t chain_index;  ///< index in the full chain (RNG stream)
  };

  const FrameSchedule* schedule_;
  impair::Stage stage_;
  std::vector<Slot> slots_;
  std::size_t cursor_ = 0;
  std::vector<impair::ImpairState> states_;  ///< parallel to slots_
  bool region_active_ = false;
  std::uint64_t samples_processed_ = 0;
};

/// Sink: reassembles each frame region from the stream, demodulates it
/// against the entry's payload, and aggregates the PointResult.
class FrameSlicerSink : public Block {
 public:
  FrameSlicerSink(const phy::PhyRx& rx, const FrameSchedule* schedule)
      : Block("frame_slicer"), rx_(&rx), schedule_(schedule) {}

  WorkResult work(const ReadView& in, WriteView& out) override;

  [[nodiscard]] const phy::PointResult& result() const { return result_; }
  [[nodiscard]] std::size_t frames_sliced() const { return frames_sliced_; }

 private:
  const phy::PhyRx* rx_;
  const FrameSchedule* schedule_;
  std::size_t cursor_ = 0;
  dsp::Samples region_;
  phy::PointResult result_;
  std::size_t frames_sliced_ = 0;
};

/// What a continuous run produced: the aggregated link stats (byte-equal
/// to LinkSimulator::run_point) plus how the graph run ended.
struct StreamResult {
  phy::PointResult point;
  RunReport report;
};

/// The streaming trial engine. Borrows the TX/RX and any attached
/// interferers; they must outlive it and be safe for concurrent const use.
class StreamingLink {
 public:
  StreamingLink(const phy::PhyTx& tx, const phy::PhyRx& rx, StreamPlan plan);

  /// Attach an interferer exactly as LinkSimulator::add_interferer does:
  /// `power` fixes its received power, nullopt defers to the sweep
  /// point's interferer_rssi.
  void add_interferer(const phy::Interferer& source,
                      std::optional<Dbm> power = std::nullopt);

  /// Append an impairment block exactly as LinkSimulator::add_impairment
  /// does: same chain order, same stage placement (TX between the
  /// interferer mix and the AWGN channel, RX after it), same RNG streams —
  /// run() stays byte-identical to run_point() with the same chain.
  void add_impairment(const impair::Impairment& block, impair::Stage stage);

  [[nodiscard]] const impair::Chain& impairments() const {
    return impairments_;
  }

  [[nodiscard]] const StreamPlan& plan() const { return plan_; }

  /// Stream every trial through a freshly built flowgraph. `threaded`
  /// selects run_threaded(); the result is byte-identical either way.
  [[nodiscard]] StreamResult run(const phy::SweepPoint& point,
                                 bool threaded = false) const;

 private:
  const phy::PhyTx* tx_;
  const phy::PhyRx* rx_;
  StreamPlan plan_;
  std::vector<std::pair<const phy::Interferer*, std::optional<Dbm>>> slots_;
  impair::Chain impairments_;
};

}  // namespace tinysdr::flow
