// Streaming flowgraph framework (paper §7: "Future versions can
// incorporate a pipeline to use high level synthesis tools or integrate
// with GNUradio for easy prototyping").
//
// A deliberately small GNU-Radio-shaped core: blocks process chunks of
// complex baseband samples through bounded FIFOs; a round-robin scheduler
// runs the graph until the source dries up and every buffer drains. The
// platform's DSP primitives (NCO, FIR, decimator, AGC, quantizer, probes)
// are wrapped as blocks so a receive chain can be assembled the way a
// GNU Radio user would sketch it — see flow/blocks.hpp.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dsp/types.hpp"

namespace tinysdr::flow {

/// Bounded FIFO of samples connecting two blocks.
class Ring {
 public:
  explicit Ring(std::size_t capacity = std::size_t{1} << 14)
      : capacity_(capacity) {}

  [[nodiscard]] std::size_t size() const { return data_.size() - head_; }
  [[nodiscard]] std::size_t space() const { return capacity_ - size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Append up to space() samples; returns how many were accepted.
  std::size_t push(std::span<const dsp::Complex> in);
  /// Remove up to `max` samples into `out` (appended); returns how many.
  std::size_t pop(std::size_t max, dsp::Samples& out);

 private:
  std::size_t capacity_;
  std::vector<dsp::Complex> data_;
  std::size_t head_ = 0;  // index of the first valid sample
};

/// A processing stage. Sources ignore `in`; sinks produce nothing.
class Block {
 public:
  explicit Block(std::string name) : name_(std::move(name)) {}
  virtual ~Block() = default;

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Move data forward: consume from `in` (may be nullptr for sources),
  /// produce into `out` (may be nullptr for sinks). Return true if any
  /// progress was made (samples consumed or produced).
  virtual bool work(Ring* in, Ring* out) = 0;

  /// Sources report completion so the scheduler knows when to stop.
  [[nodiscard]] virtual bool finished() const { return false; }

 private:
  std::string name_;
};

/// A linear chain of blocks: source -> transforms... -> sink.
class FlowGraph {
 public:
  /// Append a block; the graph owns it. Returns a borrowed pointer for
  /// later inspection (e.g. reading a probe).
  template <typename B, typename... Args>
  B* add(Args&&... args) {
    auto block = std::make_unique<B>(std::forward<Args>(args)...);
    B* raw = block.get();
    blocks_.push_back(std::move(block));
    if (blocks_.size() > 1) rings_.push_back(std::make_unique<Ring>());
    return raw;
  }

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

  /// Run until the source is finished and all buffers have drained, or no
  /// block can make progress (stall — returns false).
  bool run(std::size_t max_iterations = 1 << 20);

 private:
  std::vector<std::unique_ptr<Block>> blocks_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace tinysdr::flow
