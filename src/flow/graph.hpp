// Zero-copy streaming flowgraph (paper §7: "Future versions can
// incorporate a pipeline to use high level synthesis tools or integrate
// with GNUradio for easy prototyping").
//
// A GNU-Radio-shaped core rebuilt for throughput: blocks process samples
// in place through lock-free SPSC rings (flow/ring.hpp) instead of
// copy-on-push vectors. A block's work() receives a ReadView over its
// input edge and a WriteView over its primary output edge and reports how
// much it consumed/produced; the graph commits on its behalf. Graphs are
// DAGs: every block has at most one input edge, one primary output edge,
// and any number of *tap* edges (fan-out probes that receive a copy of
// whatever the primary edge gets — the only copies left in the engine).
//
// Two schedulers, one output:
//   run()           deterministic single-thread round-robin in topological
//                   order, with a typed report (drained / stalled / budget
//                   exhausted) naming the first non-progressing block.
//   run_threaded()  each block pinned to its own exec worker, parking on
//                   ring credit (wait_readable / wait_writable). Because
//                   every block is a pure stream function of its input
//                   sequence, the sink output is byte-identical to run()'s
//                   regardless of how chunks interleave (pinned by tests).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dsp/types.hpp"
#include "flow/ring.hpp"

namespace tinysdr::flow {

/// What one activation accomplished: samples consumed from the input view
/// and produced into the output view. The graph commits exactly these.
struct WorkResult {
  std::size_t consumed = 0;
  std::size_t produced = 0;

  [[nodiscard]] bool progressed() const { return consumed + produced > 0; }
};

/// A processing stage. Sources receive an empty ReadView; sinks (and
/// blocks with no output edge) receive a zero-capacity WriteView.
///
/// Contract: a block offered readable samples and writable space must make
/// progress (consume or produce); returning {0,0} in that state is a logic
/// stall and both schedulers report it as such. Blocks must be pure stream
/// functions of their input sequence — output independent of how the
/// stream is chunked across activations — which is what makes the
/// threaded and single-thread schedules byte-identical.
class Block {
 public:
  explicit Block(std::string name) : name_(std::move(name)) {}
  virtual ~Block() = default;

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  virtual WorkResult work(const ReadView& in, WriteView& out) = 0;

  /// Sources report completion so the scheduler can close their edges.
  [[nodiscard]] virtual bool finished() const { return false; }

 private:
  std::string name_;
};

/// How a graph run ended.
enum class RunState {
  kDrained,          ///< every source finished and every edge emptied
  kStalled,          ///< a block stopped progressing with work available
  kBudgetExhausted,  ///< run() hit max_iterations while still progressing
};

[[nodiscard]] const char* to_string(RunState state);

struct RunReport {
  RunState state = RunState::kDrained;
  std::size_t iterations = 0;        ///< scheduler passes (run() only)
  std::string stalled_block;         ///< first non-progressing block
  std::uint64_t samples_streamed = 0;  ///< total committed across all edges

  [[nodiscard]] bool drained() const { return state == RunState::kDrained; }
  explicit operator bool() const { return drained(); }
};

/// A DAG of blocks connected by SPSC rings.
class FlowGraph {
 public:
  /// Append a block and auto-chain it after the previous add()'ed block
  /// (the classic linear-pipeline convenience). Returns a borrowed
  /// pointer for later inspection and explicit wiring.
  template <typename B, typename... Args>
  B* add(Args&&... args) {
    B* raw = add_block<B>(std::forward<Args>(args)...);
    if (last_chained_ >= 0)
      connect(nodes_[static_cast<std::size_t>(last_chained_)].block.get(),
              raw);
    last_chained_ = static_cast<int>(nodes_.size()) - 1;
    return raw;
  }

  /// Append a block with no implicit edge (wire it with connect()/
  /// connect_tap()). Does not disturb the add() auto-chain.
  template <typename B, typename... Args>
  B* add_block(Args&&... args) {
    auto block = std::make_unique<B>(std::forward<Args>(args)...);
    B* raw = block.get();
    Node node;
    node.block = std::move(block);
    nodes_.push_back(std::move(node));
    return raw;
  }

  /// Primary edge from -> to. Throws if `from` already has a primary
  /// output or `to` already has an input (blocks are single-in/single-out
  /// plus taps).
  void connect(Block* from, Block* to,
               std::size_t capacity = kDefaultRingCapacity);

  /// Tap edge: `tap` receives a copy of every sample `from` produces on
  /// its primary edge. Throws if `tap` already has an input.
  void connect_tap(Block* from, Block* tap,
                   std::size_t capacity = kDefaultRingCapacity);

  [[nodiscard]] std::size_t block_count() const { return nodes_.size(); }

  /// Deterministic single-thread schedule: round-robin in topological
  /// order until drained, stalled, or out of passes.
  RunReport run(std::size_t max_iterations = std::size_t{1} << 20);

  /// Threaded schedule: one pinned worker per block, parking on ring
  /// credit. Blocks until drained or stalled (no iteration budget — a
  /// healthy streaming graph finishes when its sources do). Sink output
  /// is byte-identical to run()'s.
  RunReport run_threaded();

 private:
  struct Node {
    std::unique_ptr<Block> block;
    int in_edge = -1;            ///< index into edges_, -1 = source
    int out_edge = -1;           ///< primary output, -1 = sink
    std::vector<int> tap_edges;  ///< extra outputs fed by copy
  };
  struct Edge {
    std::unique_ptr<SpscRing> ring;
    int from = -1;
    int to = -1;
  };

  [[nodiscard]] int index_of(Block* block) const;
  int add_edge(Block* from, Block* to, std::size_t capacity);
  /// Topological order of node indices; throws on a cycle.
  [[nodiscard]] std::vector<std::size_t> topo_order() const;

  /// One activation of node i against its edges: acquire views, call
  /// work(), mirror produced samples into taps, commit. Returns the
  /// block's WorkResult; sets *exhausted_input when the input is done and
  /// untouched (the node can be retired).
  WorkResult activate(std::size_t i, bool* exhausted_input);
  void close_outputs(std::size_t i);
  /// Writable space on every output edge of node i (primary + taps).
  [[nodiscard]] std::size_t output_space(const Node& node);

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  int last_chained_ = -1;
};

}  // namespace tinysdr::flow
