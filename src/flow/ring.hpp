// Lock-free SPSC sample ring: the edge type of the zero-copy flowgraph.
//
// Modeled on the DMA streaming stacks of real SDR front ends (litex_m2sdr's
// ring of DMA descriptors + hardware sample counter): a fixed, power-of-two
// capacity buffer indexed by two free-running 64-bit counters. The producer
// owns `head_` (total samples ever produced), the consumer owns `tail_`
// (total samples ever consumed); occupancy is `head - tail`, the slot of
// sample N is `N & mask`, and the counters never wrap in practice (2^64
// samples at 4 MHz is ~146 millennia). Those counters double as the edge's
// monotonic absolute sample clock — `stream_pos()` on a view is the index
// of its first sample, which is what timed-TX blocks key off.
//
// Zero-copy protocol: a side *acquires* a view over the in-place storage
// (ReadView over committed samples, WriteView over free slots; a wrap
// shows up as the view's second span), works directly in that memory, then
// *commits* how much it actually used. Commit is the only operation that
// publishes: `commit_write` release-stores head (making the samples
// visible to the consumer), `commit_read` release-stores tail (returning
// the slots to the producer). Each side caches the opposite counter and
// refreshes it only when the cached value is insufficient, so the steady
// state costs one relaxed load + one release store per batch.
//
// Blocking (threaded scheduler) mode: waiters park on dedicated event
// epochs rather than on head/tail, because std::atomic::wait only wakes
// when the *waited word* changes — close() must be able to wake a side
// without forging sample counts. Event bumps and notifies only happen when
// `set_blocking(true)` was called, so the single-threaded deterministic
// schedule pays nothing for them.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "dsp/types.hpp"

namespace tinysdr::flow {

inline constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 14;

/// Consumer-side window over committed samples. `first()`/`second()` are
/// the contiguous region(s) — second is empty unless the window wraps.
class ReadView {
 public:
  ReadView() = default;

  [[nodiscard]] std::size_t size() const {
    return first_.size() + second_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::span<const dsp::Complex> first() const { return first_; }
  [[nodiscard]] std::span<const dsp::Complex> second() const {
    return second_;
  }

  [[nodiscard]] const dsp::Complex& operator[](std::size_t i) const {
    return i < first_.size() ? first_[i] : second_[i - first_.size()];
  }

  /// Largest contiguous span starting at `offset`, at most `max_len` long.
  [[nodiscard]] std::span<const dsp::Complex> chunk(
      std::size_t offset, std::size_t max_len) const {
    std::span<const dsp::Complex> seg =
        offset < first_.size() ? first_.subspan(offset)
                               : second_.subspan(offset - first_.size());
    return seg.subspan(0, std::min(seg.size(), max_len));
  }

  /// Copy the view's first dst.size() samples out (dst.size() <= size()).
  void copy_to(std::span<dsp::Complex> dst) const {
    std::size_t n = std::min(dst.size(), first_.size());
    std::copy_n(first_.begin(), n, dst.begin());
    std::copy_n(second_.begin(), dst.size() - n, dst.begin() + n);
  }

  /// Absolute index (per the edge's monotonic sample counter) of the
  /// view's first sample.
  [[nodiscard]] std::uint64_t stream_pos() const { return stream_pos_; }

  /// True when the producer has closed and this view already covers every
  /// sample that will ever exist: after consuming it the stream is over.
  [[nodiscard]] bool done() const { return done_; }

 private:
  friend class SpscRing;
  std::span<const dsp::Complex> first_{};
  std::span<const dsp::Complex> second_{};
  std::uint64_t stream_pos_ = 0;
  bool done_ = false;
};

/// Producer-side window over free slots; same contiguity contract.
class WriteView {
 public:
  WriteView() = default;

  [[nodiscard]] std::size_t size() const {
    return first_.size() + second_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::span<dsp::Complex> first() const { return first_; }
  [[nodiscard]] std::span<dsp::Complex> second() const { return second_; }

  [[nodiscard]] dsp::Complex& operator[](std::size_t i) const {
    return i < first_.size() ? first_[i] : second_[i - first_.size()];
  }

  [[nodiscard]] std::span<dsp::Complex> chunk(std::size_t offset,
                                              std::size_t max_len) const {
    std::span<dsp::Complex> seg =
        offset < first_.size() ? first_.subspan(offset)
                               : second_.subspan(offset - first_.size());
    return seg.subspan(0, std::min(seg.size(), max_len));
  }

  void fill(std::size_t offset, std::size_t n, dsp::Complex value) const {
    while (n > 0) {
      auto seg = chunk(offset, n);
      std::fill(seg.begin(), seg.end(), value);
      offset += seg.size();
      n -= seg.size();
    }
  }

  void write(std::size_t offset, std::span<const dsp::Complex> src) const {
    while (!src.empty()) {
      auto seg = chunk(offset, src.size());
      std::copy_n(src.begin(), seg.size(), seg.begin());
      offset += seg.size();
      src = src.subspan(seg.size());
    }
  }

  /// Absolute index the view's first slot will have once committed.
  [[nodiscard]] std::uint64_t stream_pos() const { return stream_pos_; }

 private:
  friend class SpscRing;
  std::span<dsp::Complex> first_{};
  std::span<dsp::Complex> second_{};
  std::uint64_t stream_pos_ = 0;
};

class SpscRing {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  /// Capacity is rounded up to a power of two (mask indexing).
  explicit SpscRing(std::size_t capacity = kDefaultRingCapacity) {
    if (capacity == 0) throw std::invalid_argument("SpscRing: capacity 0");
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    data_.assign(cap, dsp::Complex{0.0f, 0.0f});
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return data_.size(); }

  /// Enable event bumps + notifies on commit/close so wait_readable /
  /// wait_writable can park. Call before handing the ring to two threads.
  void set_blocking(bool blocking) { blocking_ = blocking; }

  // ----------------------------------------------------------- producer
  /// Free-slot count from the producer's point of view (refreshes the
  /// cached consumer counter).
  [[nodiscard]] std::size_t writable() {
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    cached_tail_ = tail_.load(std::memory_order_acquire);
    return capacity() - static_cast<std::size_t>(head - cached_tail_);
  }

  /// Acquire up to `max_n` free slots as an in-place view. The view stays
  /// valid until the matching commit_write(); acquiring again re-derives.
  [[nodiscard]] WriteView acquire_write(std::size_t max_n = npos) {
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t free =
        capacity() - static_cast<std::size_t>(head - cached_tail_);
    if (free < max_n || free == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      free = capacity() - static_cast<std::size_t>(head - cached_tail_);
    }
    std::size_t n = std::min(free, max_n);
    WriteView view;
    std::size_t offset = static_cast<std::size_t>(head) & mask_;
    std::size_t run = std::min(n, capacity() - offset);
    view.first_ = std::span<dsp::Complex>{data_.data() + offset, run};
    view.second_ = std::span<dsp::Complex>{data_.data(), n - run};
    view.stream_pos_ = head;
    acquired_write_ = n;
    return view;
  }

  /// Publish the first `n` slots of the last acquired WriteView. Enforces
  /// the protocol: n must not exceed what acquire_write() handed out.
  void commit_write(std::size_t n) {
    if (n > acquired_write_)
      throw std::logic_error("SpscRing: commit_write exceeds acquired view");
    acquired_write_ -= n;
    if (n == 0) return;
    head_.store(head_.load(std::memory_order_relaxed) + n,
                std::memory_order_release);
    if (blocking_) {
      readable_events_.fetch_add(1, std::memory_order_release);
      readable_events_.notify_one();
    }
  }

  /// Park until at least `min_n` slots are free or the ring is closed.
  /// Returns the writable count (which may be < min_n only when closed).
  std::size_t wait_writable(std::size_t min_n = 1) {
    for (;;) {
      std::uint64_t ev = writable_events_.load(std::memory_order_acquire);
      std::size_t free = writable();
      if (free >= min_n || closed_.load(std::memory_order_acquire))
        return free;
      producer_waits_.fetch_add(1, std::memory_order_relaxed);
      writable_events_.wait(ev, std::memory_order_acquire);
    }
  }

  /// Producer is finished: no more samples will ever be committed. Wakes
  /// both sides. (The graph also uses this to poison edges on abort.)
  void close() {
    closed_.store(true, std::memory_order_release);
    readable_events_.fetch_add(1, std::memory_order_release);
    writable_events_.fetch_add(1, std::memory_order_release);
    readable_events_.notify_all();
    writable_events_.notify_all();
  }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  // ----------------------------------------------------------- consumer
  /// Committed-sample count from the consumer's point of view.
  [[nodiscard]] std::size_t readable() {
    cached_head_ = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(
        cached_head_ - tail_.load(std::memory_order_relaxed));
  }

  [[nodiscard]] ReadView acquire_read(std::size_t max_n = npos) {
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(cached_head_ - tail);
    if (avail < max_n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(cached_head_ - tail);
    }
    std::size_t n = std::min(avail, max_n);
    ReadView view;
    std::size_t offset = static_cast<std::size_t>(tail) & mask_;
    std::size_t run = std::min(n, capacity() - offset);
    view.first_ = std::span<const dsp::Complex>{data_.data() + offset, run};
    view.second_ = std::span<const dsp::Complex>{data_.data(), n - run};
    view.stream_pos_ = tail;
    // done: producer closed and nothing exists beyond this view. Re-check
    // head AFTER observing closed so a close racing a final commit can't
    // yield done=true with samples missing (commit happens-before close
    // on the producer thread).
    if (closed_.load(std::memory_order_acquire)) {
      cached_head_ = head_.load(std::memory_order_acquire);
      view.done_ = cached_head_ - tail == n;
    }
    acquired_read_ = n;
    return view;
  }

  void commit_read(std::size_t n) {
    if (n > acquired_read_)
      throw std::logic_error("SpscRing: commit_read exceeds acquired view");
    acquired_read_ -= n;
    if (n == 0) return;
    tail_.store(tail_.load(std::memory_order_relaxed) + n,
                std::memory_order_release);
    if (blocking_) {
      writable_events_.fetch_add(1, std::memory_order_release);
      writable_events_.notify_one();
    }
  }

  /// Park until samples are readable or the stream is over. Returns the
  /// readable count; 0 means closed-and-drained.
  std::size_t wait_readable() {
    for (;;) {
      std::uint64_t ev = readable_events_.load(std::memory_order_acquire);
      std::size_t avail = readable();
      if (avail > 0) return avail;
      if (closed_.load(std::memory_order_acquire)) return 0;
      consumer_waits_.fetch_add(1, std::memory_order_relaxed);
      readable_events_.wait(ev, std::memory_order_acquire);
    }
  }

  // -------------------------------------------------------------- stats
  /// Monotonic per-edge sample counters (the litex-style sample_counter).
  [[nodiscard]] std::uint64_t total_produced() const {
    return head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t total_consumed() const {
    return tail_.load(std::memory_order_acquire);
  }
  /// Occupancy snapshot (exact between activations; approximate while
  /// both sides are live).
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }
  /// Times the producer parked waiting for credit (backpressure stalls).
  [[nodiscard]] std::uint64_t producer_waits() const {
    return producer_waits_.load(std::memory_order_relaxed);
  }
  /// Times the consumer parked waiting for samples (credits waited).
  [[nodiscard]] std::uint64_t consumer_waits() const {
    return consumer_waits_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<dsp::Complex> data_;
  std::size_t mask_ = 0;
  bool blocking_ = false;

  // Producer cache line: its own counter plus what it believes about the
  // consumer. The consumer's mirror sits on its own line; the event words
  // get a third so notify traffic doesn't bounce the counters.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;
  std::size_t acquired_write_ = 0;

  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;
  std::size_t acquired_read_ = 0;

  alignas(64) std::atomic<std::uint64_t> readable_events_{0};
  std::atomic<std::uint64_t> writable_events_{0};
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> producer_waits_{0};
  std::atomic<std::uint64_t> consumer_waits_{0};
};

}  // namespace tinysdr::flow
