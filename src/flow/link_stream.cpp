#include "flow/link_stream.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "exec/seed.hpp"
#include "obs/metrics.hpp"

namespace tinysdr::flow {

void FrameSchedule::push(FrameEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
}

const FrameEntry* FrameSchedule::at(std::size_t cursor) const {
  std::lock_guard<std::mutex> lock(mu_);
  // deque growth never relocates existing elements, so the pointer stays
  // valid after the lock drops; entries are immutable once pushed.
  return cursor < entries_.size() ? &entries_[cursor] : nullptr;
}

std::size_t FrameSchedule::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

FrameStreamSource::FrameStreamSource(
    const phy::PhyTx& tx, const StreamPlan& plan, const phy::SweepPoint& point,
    std::vector<std::pair<const phy::Interferer*, std::optional<Dbm>>> slots,
    FrameSchedule* schedule)
    : Block("frame_stream:" +
            std::string(phy::protocol_name(tx.protocol()))),
      tx_(&tx),
      plan_(&plan),
      point_(point),
      slots_(std::move(slots)),
      schedule_(schedule),
      point_seed_(phy::LinkSimulator::point_seed(plan.trial.base_seed,
                                                 point.rssi.value())) {}

void FrameStreamSource::stage_frame(std::uint64_t start) {
  // Identical derivations to LinkSimulator::run_point's trial loop: same
  // trial seed, same payload/interferer RNG streams, same padded layout.
  const std::uint64_t tseed = exec::stream_seed(point_seed_, frame_idx_);
  FrameEntry entry;
  entry.start = start;
  entry.trial_seed = tseed;

  if (plan_->trial.fixed_payload) {
    entry.payload = *plan_->trial.fixed_payload;
  } else {
    Rng payload_rng{tseed, phy::LinkSimulator::kPayloadStream};
    entry.payload.resize(
        std::min(plan_->trial.payload_bytes, tx_->max_payload()));
    for (auto& b : entry.payload) b = payload_rng.next_byte();
  }

  staged_.clear();
  staged_.insert(staged_.end(), plan_->trial.pad_samples,
                 dsp::Complex{0.0f, 0.0f});
  tx_->modulate(entry.payload, staged_);
  staged_.insert(staged_.end(), plan_->trial.pad_samples,
                 dsp::Complex{0.0f, 0.0f});
  entry.length = staged_.size();

  for (std::size_t k = 0; k < slots_.size(); ++k) {
    std::optional<Dbm> power =
        slots_[k].second ? slots_[k].second : point_.interferer_rssi;
    if (!power) continue;
    Rng interferer_rng{
        tseed, k == 0 ? phy::LinkSimulator::kInterfererStream
                      : phy::LinkSimulator::kExtraInterfererBase + k};
    dsp::Samples wave;
    slots_[k].first->emit(staged_, wave, interferer_rng);
    if (wave.empty()) continue;
    entry.waves.push_back(std::move(wave));
    entry.rel_dbs.push_back(power->value() - point_.rssi.value());
  }
  if (!entry.waves.empty()) entry.clean = staged_;

  // Publish before any region sample is committed: consumers that can see
  // a position are guaranteed to see its entry.
  schedule_->push(std::move(entry));
}

WorkResult FrameStreamSource::work(const ReadView&, WriteView& out) {
  const std::size_t trials = plan_->trial.trials;
  std::size_t produced = 0;
  while (produced < out.size()) {
    if (in_gap_) {
      std::size_t n = std::min(gap_left_, out.size() - produced);
      out.fill(produced, n, dsp::Complex{0.0f, 0.0f});
      produced += n;
      gap_left_ -= n;
      if (gap_left_ > 0) break;  // output full mid-gap
      in_gap_ = false;
    } else if (frame_idx_ >= trials) {
      break;
    } else {
      if (region_pos_ == 0 && staged_.empty())
        stage_frame(out.stream_pos() + produced);
      std::size_t n =
          std::min(staged_.size() - region_pos_, out.size() - produced);
      out.write(produced, std::span<const dsp::Complex>{
                              staged_.data() + region_pos_, n});
      region_pos_ += n;
      produced += n;
      if (region_pos_ == staged_.size()) {
        staged_.clear();
        region_pos_ = 0;
        ++frame_idx_;
        in_gap_ = true;
        gap_left_ = plan_->gap_samples;
      }
    }
  }
  return {0, produced};
}

bool FrameStreamSource::finished() const {
  return frame_idx_ >= plan_->trial.trials && gap_left_ == 0;
}

WorkResult InterfererMixBlock::work(const ReadView& in, WriteView& out) {
  const std::size_t n = std::min(in.size(), out.size());
  const std::uint64_t base = in.stream_pos();
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t pos = base + i;
    const FrameEntry* e = schedule_->at(cursor_);
    while (e != nullptr && pos >= e->start + e->length) {
      ++cursor_;
      mixed_.clear();
      e = schedule_->at(cursor_);
    }
    std::size_t run;
    if (e == nullptr || pos < e->start || e->waves.empty()) {
      // Gap silence, or a region with no active interferer: passthrough.
      std::uint64_t limit = e == nullptr ? std::uint64_t(n - i)
                            : pos < e->start
                                ? e->start - pos
                                : e->start + e->length - pos;
      run = static_cast<std::size_t>(
          std::min<std::uint64_t>(n - i, limit));
      for (std::size_t j = 0; j < run; ++j) out[i + j] = in[i + j];
    } else {
      if (mixed_.empty()) {
        // Replays run_point's superposition loop verbatim so every float
        // lands in the same place.
        const dsp::Samples* signal = &e->clean;
        dsp::Samples combined;
        for (std::size_t k = 0; k < e->waves.size(); ++k) {
          combined =
              channel::superpose(*signal, e->waves[k], e->rel_dbs[k]);
          signal = &combined;
        }
        mixed_ = std::move(combined);
      }
      run = static_cast<std::size_t>(std::min<std::uint64_t>(
          n - i, e->start + e->length - pos));
      const std::size_t off = static_cast<std::size_t>(pos - e->start);
      for (std::size_t j = 0; j < run; ++j) out[i + j] = mixed_[off + j];
    }
    i += run;
  }
  return {n, n};
}

AwgnStreamBlock::AwgnStreamBlock(const FrameSchedule* schedule,
                                 Hertz sample_rate, double noise_figure_db,
                                 Dbm rssi)
    : Block("awgn_channel"),
      schedule_(schedule),
      sample_rate_(sample_rate),
      noise_figure_db_(noise_figure_db),
      snr_db_(rssi - channel::noise_floor(sample_rate, noise_figure_db)) {}

WorkResult AwgnStreamBlock::work(const ReadView& in, WriteView& out) {
  const std::size_t n = std::min(in.size(), out.size());
  const std::uint64_t base = in.stream_pos();
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t pos = base + i;
    const FrameEntry* e = schedule_->at(cursor_);
    while (e != nullptr && pos >= e->start + e->length) {
      ++cursor_;
      channel_.reset();
      e = schedule_->at(cursor_);
    }
    std::size_t run;
    if (e == nullptr || pos < e->start) {
      // Inter-frame gaps are noiseless, exactly like the per-trial engine
      // (each trial draws its own channel realisation; nothing between).
      std::uint64_t limit =
          e == nullptr ? std::uint64_t(n - i) : e->start - pos;
      run = static_cast<std::size_t>(
          std::min<std::uint64_t>(n - i, limit));
      for (std::size_t j = 0; j < run; ++j) out[i + j] = in[i + j];
    } else {
      if (!channel_)
        channel_.emplace(
            sample_rate_, noise_figure_db_,
            Rng{e->trial_seed, phy::LinkSimulator::kChannelStream});
      run = static_cast<std::size_t>(std::min<std::uint64_t>(
          n - i, e->start + e->length - pos));
      for (std::size_t j = 0; j < run; ++j) out[i + j] = in[i + j];
      std::size_t done = 0;
      while (done < run) {
        auto seg = out.chunk(i + done, run - done);
        channel_->add_noise(seg, snr_db_);
        done += seg.size();
      }
    }
    i += run;
  }
  return {n, n};
}

ImpairStreamBlock::ImpairStreamBlock(const FrameSchedule* schedule,
                                     const impair::Chain& chain,
                                     impair::Stage stage)
    : Block("impair_" + std::string(impair::stage_name(stage))),
      schedule_(schedule),
      stage_(stage) {
  for (std::size_t k = 0; k < chain.size(); ++k)
    if (chain[k].stage == stage) slots_.push_back({chain[k].impairment, k});
}

WorkResult ImpairStreamBlock::work(const ReadView& in, WriteView& out) {
  const std::size_t n = std::min(in.size(), out.size());
  const std::uint64_t base = in.stream_pos();
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t pos = base + i;
    const FrameEntry* e = schedule_->at(cursor_);
    while (e != nullptr && pos >= e->start + e->length) {
      ++cursor_;
      region_active_ = false;
      e = schedule_->at(cursor_);
    }
    std::size_t run;
    if (e == nullptr || pos < e->start || slots_.empty()) {
      // Gap silence (or a stage with no slots): passthrough, like the
      // batch engine which never touches inter-trial silence.
      std::uint64_t limit =
          e == nullptr ? std::uint64_t(n - i) : e->start - pos;
      run = static_cast<std::size_t>(std::min<std::uint64_t>(n - i, limit));
      for (std::size_t j = 0; j < run; ++j) out[i + j] = in[i + j];
    } else {
      if (!region_active_) {
        // Fresh per-slot state at region entry: same seeds run_point uses
        // (trial seed, kImpairStreamBase + global chain index).
        states_.clear();
        for (const Slot& s : slots_)
          states_.push_back(impair::ImpairState{
              Rng{e->trial_seed,
                  phy::LinkSimulator::kImpairStreamBase + s.chain_index}});
        region_active_ = true;
      }
      run = static_cast<std::size_t>(
          std::min<std::uint64_t>(n - i, e->start + e->length - pos));
      for (std::size_t j = 0; j < run; ++j) out[i + j] = in[i + j];
      std::size_t done = 0;
      while (done < run) {
        auto seg = out.chunk(i + done, run - done);
        // Slots compose in chain order per segment; each block's
        // chunk-independence makes this equal to whole-region application.
        for (std::size_t k = 0; k < slots_.size(); ++k)
          slots_[k].impairment->apply(seg, states_[k]);
        done += seg.size();
      }
      samples_processed_ += run;
    }
    i += run;
  }
  return {n, n};
}

WorkResult FrameSlicerSink::work(const ReadView& in, WriteView&) {
  const std::size_t n = in.size();
  const std::uint64_t base = in.stream_pos();
  auto drain_complete = [&] {
    while (const FrameEntry* e = schedule_->at(cursor_)) {
      if (region_.size() != e->length) break;
      phy::FrameResult r = rx_->demodulate(region_, e->payload);
      result_.frames += 1;
      result_.frame_errors += r.frame_ok ? 0 : 1;
      result_.bits += r.bits;
      result_.bit_errors += r.bit_errors;
      result_.symbols += r.symbols;
      result_.symbol_errors += r.symbol_errors;
      ++frames_sliced_;
      region_.clear();
      ++cursor_;
    }
  };
  drain_complete();  // zero-length regions need no samples
  for (std::size_t i = 0; i < n; ++i) {
    const FrameEntry* e = schedule_->at(cursor_);
    if (e != nullptr && base + i >= e->start) {
      region_.push_back(in[i]);
      if (region_.size() == e->length) drain_complete();
    }
  }
  return {n, 0};
}

StreamingLink::StreamingLink(const phy::PhyTx& tx, const phy::PhyRx& rx,
                             StreamPlan plan)
    : tx_(&tx), rx_(&rx), plan_(std::move(plan)) {}

void StreamingLink::add_interferer(const phy::Interferer& source,
                                   std::optional<Dbm> power) {
  slots_.emplace_back(&source, power);
}

void StreamingLink::add_impairment(const impair::Impairment& block,
                                   impair::Stage stage) {
  impairments_.push_back({&block, stage});
}

StreamResult StreamingLink::run(const phy::SweepPoint& point,
                                bool threaded) const {
  FrameSchedule schedule;
  FlowGraph graph;
  const Hertz rate = plan_.trial.channel_rate.value_or(rx_->sample_rate());

  bool has_tx_impair = false;
  bool has_rx_impair = false;
  for (const auto& slot : impairments_) {
    if (slot.stage == impair::Stage::kTx) has_tx_impair = true;
    if (slot.stage == impair::Stage::kRx) has_rx_impair = true;
  }

  auto* src = graph.add_block<FrameStreamSource>(*tx_, plan_, point, slots_,
                                                 &schedule);
  auto* mix = graph.add_block<InterfererMixBlock>(&schedule);
  ImpairStreamBlock* tx_imp =
      has_tx_impair ? graph.add_block<ImpairStreamBlock>(
                          &schedule, impairments_, impair::Stage::kTx)
                    : nullptr;
  auto* awgn = graph.add_block<AwgnStreamBlock>(
      &schedule, rate, plan_.trial.noise_figure_db, point.rssi);
  ImpairStreamBlock* rx_imp =
      has_rx_impair ? graph.add_block<ImpairStreamBlock>(
                          &schedule, impairments_, impair::Stage::kRx)
                    : nullptr;
  auto* sink = graph.add_block<FrameSlicerSink>(*rx_, &schedule);
  graph.connect(src, mix, plan_.ring_capacity);
  if (tx_imp != nullptr) {
    graph.connect(mix, tx_imp, plan_.ring_capacity);
    graph.connect(tx_imp, awgn, plan_.ring_capacity);
  } else {
    graph.connect(mix, awgn, plan_.ring_capacity);
  }
  if (rx_imp != nullptr) {
    graph.connect(awgn, rx_imp, plan_.ring_capacity);
    graph.connect(rx_imp, sink, plan_.ring_capacity);
  } else {
    graph.connect(awgn, sink, plan_.ring_capacity);
  }

  StreamResult result;
  result.report = threaded ? graph.run_threaded() : graph.run();
  result.point = sink->result();
  result.point.rssi_dbm = point.rssi.value();

  if (auto* m = obs::metrics()) {
    m->counter("flow.stream.frames")
        .add(static_cast<double>(result.point.frames));
    m->counter("flow.stream.samples")
        .add(static_cast<double>(result.report.samples_streamed));
    // Chain-order totals added once per run, like run_point — journaled
    // metrics stay identical across ring sizes and schedulers.
    for (const auto& slot : impairments_) {
      const ImpairStreamBlock* stage_block =
          slot.stage == impair::Stage::kTx ? tx_imp : rx_imp;
      m->counter("impair." + std::string(impair::stage_name(slot.stage)) +
                 "." + std::string(slot.impairment->name()) + ".samples")
          .add(stage_block == nullptr
                   ? 0.0
                   : static_cast<double>(stage_block->samples_processed()));
    }
  }
  return result;
}

}  // namespace tinysdr::flow
