#include "flow/graph.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tinysdr::flow {

std::size_t Ring::push(std::span<const dsp::Complex> in) {
  std::size_t n = std::min(in.size(), space());
  data_.insert(data_.end(), in.begin(), in.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

std::size_t Ring::pop(std::size_t max, dsp::Samples& out) {
  std::size_t n = std::min(max, data_.size() - head_);
  out.insert(out.end(), data_.begin() + static_cast<std::ptrdiff_t>(head_),
             data_.begin() + static_cast<std::ptrdiff_t>(head_ + n));
  head_ += n;
  // Compact once the consumed prefix dominates, keeping push() amortized.
  if (head_ > data_.size() / 2 && head_ > 1024) {
    data_.erase(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return n;
}

bool FlowGraph::run(std::size_t max_iterations) {
  if (blocks_.empty()) return true;
  obs::TraceSpan span{"flow", "graph-run"};
  span.arg("blocks", static_cast<double>(blocks_.size()));
  std::size_t iterations = 0;
  bool result = false;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    ++iterations;
    bool progress = false;
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      Ring* in = i == 0 ? nullptr : rings_[i - 1].get();
      Ring* out = i + 1 == blocks_.size() ? nullptr : rings_[i].get();
      progress |= blocks_[i]->work(in, out);
    }
    if (progress) continue;
    // No progress: done if the source finished and all rings are empty.
    bool drained = blocks_.front()->finished();
    for (const auto& ring : rings_)
      if (!ring->empty()) drained = false;
    result = drained;
    break;
  }
  span.arg("iterations", static_cast<double>(iterations));
  span.arg("drained", result ? 1.0 : 0.0);
  if (auto* m = obs::metrics()) {
    m->counter("flow.graph_runs").add();
    m->counter("flow.block_iterations")
        .add(static_cast<double>(iterations * blocks_.size()));
  }
  return result;
}

}  // namespace tinysdr::flow
