#include "flow/graph.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "exec/pinned.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tinysdr::flow {

namespace {

// 16 buckets of 1/16 occupancy plus one catching exactly-full rings.
const obs::HistogramSpec kOccupancySpec =
    obs::HistogramSpec::linear(0.0, 1.0625, 17);

}  // namespace

const char* to_string(RunState state) {
  switch (state) {
    case RunState::kDrained:
      return "drained";
    case RunState::kStalled:
      return "stalled";
    case RunState::kBudgetExhausted:
      return "budget-exhausted";
  }
  return "unknown";
}

int FlowGraph::index_of(Block* block) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].block.get() == block) return static_cast<int>(i);
  throw std::invalid_argument("FlowGraph: block not owned by this graph");
}

int FlowGraph::add_edge(Block* from, Block* to, std::size_t capacity) {
  int f = index_of(from);
  int t = index_of(to);
  if (f == t) throw std::invalid_argument("FlowGraph: self-loop");
  if (nodes_[static_cast<std::size_t>(t)].in_edge >= 0)
    throw std::invalid_argument("FlowGraph: block '" + to->name() +
                                "' already has an input edge");
  edges_.push_back(Edge{std::make_unique<SpscRing>(capacity), f, t});
  int edge = static_cast<int>(edges_.size()) - 1;
  nodes_[static_cast<std::size_t>(t)].in_edge = edge;
  return edge;
}

void FlowGraph::connect(Block* from, Block* to, std::size_t capacity) {
  if (nodes_[static_cast<std::size_t>(index_of(from))].out_edge >= 0)
    throw std::invalid_argument("FlowGraph: block '" + from->name() +
                                "' already has a primary output edge");
  int edge = add_edge(from, to, capacity);
  nodes_[static_cast<std::size_t>(edges_[edge].from)].out_edge = edge;
}

void FlowGraph::connect_tap(Block* from, Block* tap, std::size_t capacity) {
  int edge = add_edge(from, tap, capacity);
  nodes_[static_cast<std::size_t>(edges_[edge].from)].tap_edges.push_back(
      edge);
}

std::vector<std::size_t> FlowGraph::topo_order() const {
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  for (const Edge& e : edges_) ++indegree[static_cast<std::size_t>(e.to)];
  std::vector<std::size_t> order;
  order.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (indegree[i] == 0) order.push_back(i);
  for (std::size_t k = 0; k < order.size(); ++k) {
    const Node& node = nodes_[order[k]];
    auto relax = [&](int edge) {
      std::size_t to = static_cast<std::size_t>(edges_[edge].to);
      if (--indegree[to] == 0) order.push_back(to);
    };
    if (node.out_edge >= 0) relax(node.out_edge);
    for (int t : node.tap_edges) relax(t);
  }
  if (order.size() != nodes_.size())
    throw std::invalid_argument("FlowGraph: cycle detected");
  for (const Node& node : nodes_)
    if (!node.tap_edges.empty() && node.out_edge < 0)
      throw std::invalid_argument("FlowGraph: block '" + node.block->name() +
                                  "' has taps but no primary output");
  return order;
}

std::size_t FlowGraph::output_space(const Node& node) {
  if (node.out_edge < 0) return 0;
  std::size_t space =
      edges_[static_cast<std::size_t>(node.out_edge)].ring->writable();
  for (int t : node.tap_edges)
    space = std::min(space,
                     edges_[static_cast<std::size_t>(t)].ring->writable());
  return space;
}

void FlowGraph::close_outputs(std::size_t i) {
  const Node& node = nodes_[i];
  if (node.out_edge >= 0)
    edges_[static_cast<std::size_t>(node.out_edge)].ring->close();
  for (int t : node.tap_edges)
    edges_[static_cast<std::size_t>(t)].ring->close();
}

WorkResult FlowGraph::activate(std::size_t i, bool* exhausted_input) {
  Node& node = nodes_[i];
  *exhausted_input = false;

  SpscRing* in_ring =
      node.in_edge >= 0
          ? edges_[static_cast<std::size_t>(node.in_edge)].ring.get()
          : nullptr;
  SpscRing* out_ring =
      node.out_edge >= 0
          ? edges_[static_cast<std::size_t>(node.out_edge)].ring.get()
          : nullptr;

  obs::Registry* m = obs::metrics();

  ReadView in;
  if (in_ring != nullptr) {
    in = in_ring->acquire_read();
    if (m != nullptr)
      m->histogram("flow.ring.occupancy", kOccupancySpec)
          .observe(static_cast<double>(in.size()) /
                   static_cast<double>(in_ring->capacity()));
  }

  WriteView out;
  if (out_ring != nullptr) {
    std::size_t space = output_space(node);
    if (space == 0 && m != nullptr)
      m->counter("flow.backpressure_stalls").add();
    out = out_ring->acquire_write(space);
  }

  WorkResult r = node.block->work(in, out);
  if (r.consumed > in.size() || r.produced > out.size())
    throw std::logic_error("FlowGraph: block '" + node.block->name() +
                           "' overran its views");

  if (out_ring != nullptr) {
    // Taps get their copy before the primary commit publishes the region.
    for (int t : node.tap_edges) {
      SpscRing* tap = edges_[static_cast<std::size_t>(t)].ring.get();
      WriteView mirror = tap->acquire_write(r.produced);
      std::size_t off = 0;
      while (off < r.produced) {
        auto src = out.chunk(off, r.produced - off);
        mirror.write(off, src);
        off += src.size();
      }
      tap->commit_write(r.produced);
    }
    out_ring->commit_write(r.produced);
  } else if (r.produced > 0) {
    throw std::logic_error("FlowGraph: block '" + node.block->name() +
                           "' produced without an output edge");
  }

  if (in_ring != nullptr) {
    in_ring->commit_read(r.consumed);
    *exhausted_input = in.done() && in.empty() && !r.progressed();
  }
  return r;
}

RunReport FlowGraph::run(std::size_t max_iterations) {
  RunReport report;
  if (nodes_.empty()) return report;
  auto order = topo_order();

  obs::TraceSpan span{"flow", "graph-run"};
  span.arg("blocks", static_cast<double>(nodes_.size()));

  const bool traced = obs::tracer() != nullptr;
  std::vector<char> retired(nodes_.size(), 0);
  std::size_t live = nodes_.size();
  bool budget_hit = true;

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    ++report.iterations;
    bool progress = false;
    for (std::size_t idx : order) {
      if (retired[idx] != 0) continue;
      Node& node = nodes_[idx];
      bool exhausted = false;
      WorkResult r;
      if (traced) {
        obs::TraceSpan act{"flow", node.block->name()};
        r = activate(idx, &exhausted);
        act.arg("consumed", static_cast<double>(r.consumed));
        act.arg("produced", static_cast<double>(r.produced));
      } else {
        r = activate(idx, &exhausted);
      }
      progress |= r.progressed();
      bool done = node.in_edge < 0 ? node.block->finished() : exhausted;
      if (done) {
        close_outputs(idx);
        retired[idx] = 1;
        --live;
      }
    }
    if (live == 0) {
      report.state = RunState::kDrained;
      budget_hit = false;
      break;
    }
    if (!progress) {
      report.state = RunState::kStalled;
      budget_hit = false;
      // Name the first block (topo order) that had work available yet
      // made none: readable input (or an unfinished source) plus writable
      // space — or no output edge at all, the classic missing-sink stall.
      for (std::size_t idx : order) {
        if (retired[idx] != 0) continue;
        Node& node = nodes_[idx];
        bool has_input =
            node.in_edge >= 0 &&
            edges_[static_cast<std::size_t>(node.in_edge)].ring->readable() >
                0;
        bool source_ready = node.in_edge < 0 && !node.block->finished();
        bool space_ok = node.out_edge < 0 || output_space(node) > 0;
        if ((has_input || source_ready) && space_ok) {
          report.stalled_block = node.block->name();
          break;
        }
      }
      if (report.stalled_block.empty()) {
        for (std::size_t idx : order)
          if (retired[idx] == 0) {
            report.stalled_block = nodes_[idx].block->name();
            break;
          }
      }
      break;
    }
  }
  if (budget_hit) report.state = RunState::kBudgetExhausted;

  for (const Edge& e : edges_)
    report.samples_streamed += e.ring->total_produced();

  span.arg("iterations", static_cast<double>(report.iterations));
  span.arg("state", std::string(to_string(report.state)));
  if (!report.stalled_block.empty())
    span.arg("stalled_block", report.stalled_block);
  if (auto* m = obs::metrics()) {
    m->counter("flow.graph_runs").add();
    m->counter("flow.samples_streamed")
        .add(static_cast<double>(report.samples_streamed));
  }
  return report;
}

RunReport FlowGraph::run_threaded() {
  RunReport report;
  if (nodes_.empty()) return report;
  (void)topo_order();  // validates the topology (cycles, tap wiring)

  obs::TraceSpan span{"flow", "graph-run-threaded"};
  span.arg("blocks", static_cast<double>(nodes_.size()));

  for (Edge& e : edges_) e.ring->set_blocking(true);

  std::atomic<bool> abort{false};
  std::atomic<int> stalled{-1};
  std::mutex error_mu;
  std::exception_ptr first_error;
  auto poison = [this] {
    for (Edge& e : edges_) e.ring->close();
  };

  obs::Registry* parent_metrics = obs::metrics();
  obs::Tracer* parent_tracer = obs::tracer();
  std::vector<std::unique_ptr<obs::Registry>> metric_shards(nodes_.size());
  std::vector<std::unique_ptr<obs::Tracer>> trace_shards(nodes_.size());

  auto node_loop = [&](std::size_t i) {
    Node& node = nodes_[i];
    SpscRing* in_ring =
        node.in_edge >= 0
            ? edges_[static_cast<std::size_t>(node.in_edge)].ring.get()
            : nullptr;
    SpscRing* out_ring =
        node.out_edge >= 0
            ? edges_[static_cast<std::size_t>(node.out_edge)].ring.get()
            : nullptr;
    const bool traced = obs::tracer() != nullptr;
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      if (in_ring != nullptr) (void)in_ring->wait_readable();
      if (out_ring != nullptr) {
        (void)out_ring->wait_writable();
        for (int t : node.tap_edges)
          (void)edges_[static_cast<std::size_t>(t)].ring->wait_writable();
      }
      if (abort.load(std::memory_order_relaxed)) return;
      bool exhausted = false;
      WorkResult r;
      if (traced) {
        obs::TraceSpan act{"flow", node.block->name()};
        r = activate(i, &exhausted);
        act.arg("consumed", static_cast<double>(r.consumed));
        act.arg("produced", static_cast<double>(r.produced));
      } else {
        r = activate(i, &exhausted);
      }
      if (node.in_edge < 0 && node.block->finished()) {
        close_outputs(i);
        return;
      }
      if (exhausted) {
        close_outputs(i);
        return;
      }
      if (!r.progressed()) {
        bool has_input = in_ring != nullptr && in_ring->readable() > 0;
        bool source_ready = in_ring == nullptr;  // unfinished, see above
        bool space_ok = out_ring == nullptr || output_space(node) > 0;
        if ((has_input || source_ready) && space_ok) {
          int expected = -1;
          stalled.compare_exchange_strong(expected, static_cast<int>(i));
          abort.store(true, std::memory_order_relaxed);
          poison();
          return;
        }
        // Transient: input empty but upstream still open, or output
        // full — loop back to the waits.
      }
    }
  };

  exec::run_pinned(nodes_.size(), [&](std::size_t i) {
    std::optional<obs::MetricsSession> msession;
    if (parent_metrics != nullptr) {
      metric_shards[i] = std::make_unique<obs::Registry>();
      metric_shards[i]->enable_journal();
      msession.emplace(*metric_shards[i]);
    }
    std::optional<obs::TraceSession> tsession;
    if (parent_tracer != nullptr) {
      trace_shards[i] = std::make_unique<obs::Tracer>(obs::Tracer::unbounded());
      tsession.emplace(*trace_shards[i]);
    }
    try {
      node_loop(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      abort.store(true, std::memory_order_relaxed);
      poison();
    }
  });

  for (Edge& e : edges_) e.ring->set_blocking(false);

  // Shards merge in node-index order, so telemetry is deterministic given
  // a deterministic per-node event sequence.
  if (parent_metrics != nullptr)
    for (const auto& shard : metric_shards)
      if (shard != nullptr) parent_metrics->merge_from(*shard);
  if (parent_tracer != nullptr)
    for (const auto& shard : trace_shards)
      if (shard != nullptr) parent_tracer->absorb(*shard);

  if (first_error) std::rethrow_exception(first_error);

  int stalled_idx = stalled.load(std::memory_order_relaxed);
  if (stalled_idx >= 0) {
    report.state = RunState::kStalled;
    report.stalled_block =
        nodes_[static_cast<std::size_t>(stalled_idx)].block->name();
  } else if (abort.load(std::memory_order_relaxed)) {
    report.state = RunState::kStalled;
  }

  std::uint64_t backpressure = 0;
  std::uint64_t credits = 0;
  for (const Edge& e : edges_) {
    report.samples_streamed += e.ring->total_produced();
    backpressure += e.ring->producer_waits();
    credits += e.ring->consumer_waits();
  }

  span.arg("state", std::string(to_string(report.state)));
  if (!report.stalled_block.empty())
    span.arg("stalled_block", report.stalled_block);
  if (auto* m = obs::metrics()) {
    m->counter("flow.graph_runs").add();
    m->counter("flow.samples_streamed")
        .add(static_cast<double>(report.samples_streamed));
    m->counter("flow.backpressure_stalls")
        .add(static_cast<double>(backpressure));
    m->counter("flow.credits_waited").add(static_cast<double>(credits));
  }
  return report;
}

}  // namespace tinysdr::flow
