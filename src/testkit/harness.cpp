#include "testkit/harness.hpp"

#include <algorithm>
#include <cctype>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "exec/seed.hpp"

namespace tinysdr::testkit {

namespace fs = std::filesystem;

HarnessRegistry& HarnessRegistry::instance() {
  static HarnessRegistry registry;
  return registry;
}

void HarnessRegistry::add(Harness h) {
  if (find(h.name) != nullptr)
    throw std::invalid_argument("HarnessRegistry: duplicate harness: " +
                                h.name);
  harnesses_.push_back(std::move(h));
}

const Harness* HarnessRegistry::find(std::string_view name) const {
  for (const auto& h : harnesses_)
    if (h.name == name) return &h;
  return nullptr;
}

namespace {

/// Run the harness on one input; failure text or nullopt.
std::optional<std::string> fails(const Harness& harness,
                                 std::span<const std::uint8_t> input) {
  try {
    harness.run(input);
    return std::nullopt;
  } catch (const std::exception& e) {
    return std::string(e.what());
  } catch (...) {
    return std::string("non-standard exception");
  }
}

std::string sanitize(std::string_view name) {
  std::string out{name};
  for (char& c : out)
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
          c == '_'))
      c = '_';
  return out;
}

std::string write_artifact(const FuzzRunConfig& cfg, const Harness& harness,
                           const FuzzFailure& failure) {
  if (cfg.artifact_dir.empty()) return {};
  std::error_code ec;
  fs::create_directories(cfg.artifact_dir, ec);
  if (ec) return {};

  std::ostringstream stem;
  stem << sanitize(harness.name) << "-";
  if (failure.index)
    stem << "seed" << failure.seed << "-index" << *failure.index;
  else
    stem << "corpus-" << sanitize(failure.corpus_file);

  fs::path bin = fs::path(cfg.artifact_dir) / (stem.str() + ".bin");
  std::ofstream out(bin, std::ios::binary);
  out.write(reinterpret_cast<const char*>(failure.shrunk.data()),
            static_cast<std::streamsize>(failure.shrunk.size()));
  out.close();

  fs::path txt = fs::path(cfg.artifact_dir) / (stem.str() + ".txt");
  std::ofstream meta(txt);
  meta << "harness: " << harness.name << "\n"
       << "error: " << failure.error << "\n";
  if (failure.index) {
    meta << "replay: tinysdr_fuzz --harness " << harness.name << " --seed "
         << failure.seed << " --replay-index " << *failure.index << "\n";
  } else {
    meta << "source corpus file: " << failure.corpus_file << "\n";
  }
  meta << "replay (shrunk input): tinysdr_fuzz --harness " << harness.name
       << " --replay " << bin.string() << "\n";
  return bin.string();
}

}  // namespace

std::vector<std::vector<std::uint8_t>> load_corpus(const std::string& dir) {
  std::vector<std::vector<std::uint8_t>> corpus;
  if (dir.empty()) return corpus;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return corpus;

  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec))
    if (entry.is_regular_file()) files.push_back(entry.path());
  std::sort(files.begin(), files.end());

  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>()};
    corpus.push_back(std::move(bytes));
  }
  return corpus;
}

std::vector<std::uint8_t> fuzz_input(
    const Harness& harness, std::uint64_t seed, std::uint64_t index,
    std::span<const std::vector<std::uint8_t>> corpus) {
  Rng rng = exec::stream_rng(seed, index);

  // A quarter of generated inputs mutate a corpus entry instead of being
  // drawn fresh — structured prefixes reach deeper states. The draw order
  // below is part of the replay contract: never reorder it.
  if (!corpus.empty() && rng.next_below(4) == 0) {
    std::vector<std::uint8_t> input =
        corpus[rng.next_below(static_cast<std::uint32_t>(corpus.size()))];
    std::size_t ops = 1 + rng.next_below(8);
    for (std::size_t op = 0; op < ops; ++op) {
      switch (rng.next_below(4)) {
        case 0:  // flip one bit
          if (!input.empty())
            input[rng.next_below(static_cast<std::uint32_t>(input.size()))] ^=
                static_cast<std::uint8_t>(1u << rng.next_below(8));
          break;
        case 1:  // overwrite one byte
          if (!input.empty())
            input[rng.next_below(static_cast<std::uint32_t>(input.size()))] =
                rng.next_byte();
          break;
        case 2:  // truncate
          if (!input.empty())
            input.resize(rng.next_below(
                static_cast<std::uint32_t>(input.size()) + 1));
          break;
        default:  // append a short random tail
          for (std::uint32_t n = rng.next_below(16); n > 0; --n)
            input.push_back(rng.next_byte());
          break;
      }
    }
    if (input.size() > harness.max_len) input.resize(harness.max_len);
    return input;
  }

  std::size_t len =
      rng.next_below(static_cast<std::uint32_t>(harness.max_len) + 1);
  std::vector<std::uint8_t> input(len);
  for (auto& b : input) b = rng.next_byte();
  return input;
}

std::pair<std::vector<std::uint8_t>, std::size_t> shrink_bytes(
    const Harness& harness, std::vector<std::uint8_t> input,
    std::size_t max_candidates) {
  std::size_t budget = max_candidates;
  std::size_t steps = 0;

  auto try_candidate = [&](std::vector<std::uint8_t> candidate) {
    if (budget == 0 || candidate.size() >= input.size() + 1) return false;
    --budget;
    if (fails(harness, candidate)) {
      input = std::move(candidate);
      ++steps;
      return true;
    }
    return false;
  };

  bool improved = true;
  while (improved && budget > 0) {
    improved = false;

    // Structural: empty, halves, quarter-chunk drops.
    if (!input.empty() && try_candidate({})) {
      improved = true;
      continue;
    }
    if (input.size() > 1) {
      std::size_t half = input.size() / 2;
      if (try_candidate({input.begin(),
                         input.begin() + static_cast<std::ptrdiff_t>(half)}) ||
          try_candidate({input.begin() + static_cast<std::ptrdiff_t>(half),
                         input.end()})) {
        improved = true;
        continue;
      }
      std::size_t chunk = std::max<std::size_t>(1, input.size() / 4);
      for (std::size_t at = 0; at + chunk <= input.size(); at += chunk) {
        std::vector<std::uint8_t> candidate = input;
        candidate.erase(
            candidate.begin() + static_cast<std::ptrdiff_t>(at),
            candidate.begin() + static_cast<std::ptrdiff_t>(at + chunk));
        if (try_candidate(std::move(candidate))) {
          improved = true;
          break;
        }
      }
      if (improved) continue;
    }

    // Simplify: zero out bytes left to right (bounded per pass).
    std::size_t zeroed = 0;
    for (std::size_t i = 0; i < input.size() && zeroed < 64; ++i) {
      if (input[i] == 0) continue;
      std::vector<std::uint8_t> candidate = input;
      candidate[i] = 0;
      // Same length — bypass the "must not grow" guard in try_candidate.
      if (budget == 0) break;
      --budget;
      if (fails(harness, candidate)) {
        input = std::move(candidate);
        ++steps;
        ++zeroed;
        improved = true;
      }
    }
  }
  return {std::move(input), steps};
}

FuzzReport run_fuzz(const Harness& harness, const FuzzRunConfig& cfg) {
  FuzzReport report;
  report.harness = harness.name;

  auto fail_with = [&](std::vector<std::uint8_t> input, std::string error,
                       std::optional<std::uint64_t> index,
                       std::string corpus_file) {
    FuzzFailure failure;
    failure.seed = cfg.seed;
    failure.index = index;
    failure.corpus_file = std::move(corpus_file);
    failure.error = std::move(error);
    failure.input = input;
    auto [shrunk, steps] = shrink_bytes(harness, std::move(input),
                                        cfg.max_shrinks);
    // Keep the error text of the *shrunk* input when it still fails (it
    // does by construction of shrink_bytes).
    if (auto e = fails(harness, shrunk)) failure.error = *e;
    failure.shrunk = std::move(shrunk);
    failure.shrink_steps = steps;
    failure.artifact = write_artifact(cfg, harness, failure);
    report.failure = std::move(failure);
  };

  auto corpus = load_corpus(cfg.corpus_dir);
  report.corpus_inputs = corpus.size();
  std::size_t file_index = 0;
  for (const auto& entry : corpus) {
    std::ostringstream name;
    name << "entry-" << file_index++;
    if (auto error = fails(harness, entry)) {
      fail_with(entry, std::move(*error), std::nullopt, name.str());
      return report;
    }
  }

  for (std::uint64_t i = 0; i < cfg.iterations; ++i) {
    auto input = fuzz_input(harness, cfg.seed, i, corpus);
    ++report.iterations_run;
    if (auto error = fails(harness, input)) {
      fail_with(std::move(input), std::move(*error), i, {});
      return report;
    }
  }
  return report;
}

std::string FuzzReport::message() const {
  std::ostringstream oss;
  if (ok()) {
    oss << harness << ": ok (" << iterations_run << " generated inputs, "
        << corpus_inputs << " corpus inputs)";
    return oss.str();
  }
  const FuzzFailure& f = *failure;
  oss << harness << ": FAILED";
  if (f.index)
    oss << " at (seed=" << f.seed << ", index=" << *f.index << ")";
  else
    oss << " on corpus input " << f.corpus_file;
  oss << "\n  error: " << f.error;
  oss << "\n  input: " << f.input.size() << " bytes, shrunk to "
      << f.shrunk.size() << " bytes in " << f.shrink_steps << " steps";
  if (!f.artifact.empty()) oss << "\n  artifact: " << f.artifact;
  if (f.index)
    oss << "\n  replay: tinysdr_fuzz --harness " << harness << " --seed "
        << f.seed << " --replay-index " << *f.index;
  return oss.str();
}

}  // namespace tinysdr::testkit
