// Property runner: N generated cases, replayable failures, shrinking.
//
// Every case draws its value from Rng(exec::stream_seed(seed, index)) — a
// pure function of the (seed, index) pair — so a failure report carries
// everything needed to reproduce it:
//
//   TINYSDR_PROP_SEED=<seed> TINYSDR_PROP_INDEX=<index> ctest -R <test>
//
// re-runs exactly the failing case (check() reads those variables and
// pins the run to that one case), regenerates the same value, re-shrinks
// deterministically, and lands on the same minimal counterexample.
#pragma once

#include <cstdint>
#include <exception>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "exec/seed.hpp"
#include "testkit/gen.hpp"

namespace tinysdr::testkit {

struct PropertyConfig {
  /// Base seed of the case stream. Fixed by default: properties are
  /// regression tests first, explorers second — bump the seed (or run the
  /// fuzz driver) to explore.
  std::uint64_t seed = 0x7E57C0DE;
  std::size_t cases = 200;
  /// Upper bound of the size ramp (vector lengths etc. grow toward this).
  std::size_t max_size = 64;
  /// Budget of candidate evaluations during shrinking.
  std::size_t max_shrinks = 2000;
  /// Replay pin (normally set via TINYSDR_PROP_INDEX): run only this case.
  std::optional<std::uint64_t> only_index;

  /// Overlay TINYSDR_PROP_SEED / TINYSDR_PROP_INDEX / TINYSDR_PROP_CASES
  /// from the environment onto `base` (defaults when omitted).
  [[nodiscard]] static PropertyConfig from_env(PropertyConfig base);
  [[nodiscard]] static PropertyConfig from_env();
};

struct PropertyResult {
  bool ok = true;
  std::string name;             ///< optional label for the report
  std::uint64_t seed = 0;
  std::uint64_t index = 0;      ///< failing case index
  std::size_t cases_run = 0;
  std::size_t shrink_steps = 0; ///< accepted shrinks (not candidates tried)
  std::string counterexample;   ///< printed shrunk value
  std::string error;            ///< exception text or "property returned false"

  /// Human-readable failure report with the replay recipe; empty on ok.
  [[nodiscard]] std::string message() const;
};

namespace detail {

// ----------------------------------------------------------- value printing
template <typename T>
concept Streamable = requires(std::ostream& os, const T& v) { os << v; };

inline void show_value(std::ostream& os, const std::vector<std::uint8_t>& v) {
  os << v.size() << " bytes [";
  static constexpr char kHex[] = "0123456789abcdef";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i == 64) {
      os << "...";
      break;
    }
    os << kHex[v[i] >> 4] << kHex[v[i] & 0xF];
  }
  os << "]";
}

template <typename T>
void show_value(std::ostream& os, const T& v);

template <typename A, typename B>
void show_value(std::ostream& os, const std::pair<A, B>& v) {
  os << "(";
  show_value(os, v.first);
  os << ", ";
  show_value(os, v.second);
  os << ")";
}

template <typename... Ts>
void show_value(std::ostream& os, const std::tuple<Ts...>& v) {
  os << "(";
  bool first = true;
  std::apply(
      [&](const auto&... elem) {
        ((os << (first ? "" : ", "), first = false, show_value(os, elem)), ...);
      },
      v);
  os << ")";
}

template <typename T>
void show_value(std::ostream& os, const std::vector<T>& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ", ";
    if (i == 32) {
      os << "... (" << v.size() << " total)";
      break;
    }
    show_value(os, v[i]);
  }
  os << "]";
}

template <typename T>
void show_value(std::ostream& os, const T& v) {
  if constexpr (Streamable<T>) {
    if constexpr (std::is_same_v<T, std::uint8_t> ||
                  std::is_same_v<T, std::int8_t>) {
      os << static_cast<int>(v);
    } else {
      os << v;
    }
  } else {
    os << "<unprintable " << sizeof(T) << "-byte value>";
  }
}

template <typename T>
std::string show(const T& v) {
  std::ostringstream oss;
  show_value(oss, v);
  return oss.str();
}

// -------------------------------------------------------- property adapters
/// Evaluate the property on one value. Returns the failure text, or
/// nullopt on success. Properties either return bool (false = fail) or
/// return void and throw to fail.
template <typename Prop, typename T>
std::optional<std::string> eval_property(Prop& prop, const T& value) {
  try {
    if constexpr (std::is_void_v<std::invoke_result_t<Prop&, const T&>>) {
      prop(value);
      return std::nullopt;
    } else {
      if (prop(value)) return std::nullopt;
      return "property returned false";
    }
  } catch (const std::exception& e) {
    return std::string("exception: ") + e.what();
  } catch (...) {
    return "non-standard exception";
  }
}

}  // namespace detail

/// Greedy deterministic shrink: repeatedly take the first failing shrink
/// candidate until none fails (or the budget runs out). Returns the
/// minimal value found, its failure text, and the number of accepted
/// steps.
template <typename T, typename Prop>
std::tuple<T, std::string, std::size_t> shrink_failure(
    const Gen<T>& g, Prop& prop, T value, std::string error,
    std::size_t max_candidates) {
  std::size_t budget = max_candidates;
  std::size_t steps = 0;
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    for (auto& candidate : g.shrink(value)) {
      if (budget == 0) break;
      --budget;
      if (auto fail = detail::eval_property(prop, candidate)) {
        value = std::move(candidate);
        error = std::move(*fail);
        ++steps;
        improved = true;
        break;
      }
    }
  }
  return {std::move(value), std::move(error), steps};
}

/// Run `prop` over `cases` generated values. Stops at the first failure,
/// shrinks it, and reports the replayable (seed, index).
template <typename T, typename Prop>
PropertyResult check(const Gen<T>& g, Prop prop,
                     PropertyConfig cfg = PropertyConfig::from_env(),
                     std::string name = {}) {
  PropertyResult result;
  result.name = std::move(name);
  result.seed = cfg.seed;

  std::uint64_t begin = 0;
  std::uint64_t end = cfg.cases;
  if (cfg.only_index) {
    begin = *cfg.only_index;
    end = begin + 1;
  }

  for (std::uint64_t i = begin; i < end; ++i) {
    // Size ramp: early cases small, late cases at max_size. Pure in the
    // index, so a replayed case sees the same size.
    std::size_t size =
        cfg.cases <= 1
            ? cfg.max_size
            : 1 + (cfg.max_size - 1) * (i % cfg.cases) / (cfg.cases - 1);
    Rng rng = exec::stream_rng(cfg.seed, i);
    T value = g(rng, size);
    ++result.cases_run;

    if (auto fail = detail::eval_property(prop, value)) {
      auto [shrunk, error, steps] = shrink_failure(
          g, prop, std::move(value), std::move(*fail), cfg.max_shrinks);
      result.ok = false;
      result.index = i;
      result.shrink_steps = steps;
      result.error = std::move(error);
      result.counterexample = detail::show(shrunk);
      return result;
    }
  }
  return result;
}

}  // namespace tinysdr::testkit
