// Fuzz harness table and the deterministic fuzz driver.
//
// A Harness is a named, total function over a byte string that throws to
// signal a property violation — exactly the libFuzzer entry-point shape.
// All harnesses register into one HarnessRegistry so every driver runs
// the same code:
//
//   - ctest:      tests/fuzz/fuzz_smoke_test.cpp runs each harness for a
//                 fixed iteration count,
//   - CLI/CI:     the tinysdr_fuzz executable (tests/fuzz/fuzz_main.cpp)
//                 runs corpus + generated inputs and writes shrunk
//                 counterexample artifacts,
//   - libFuzzer:  the same file compiled with TINYSDR_LIBFUZZER exposes
//                 LLVMFuzzerTestOneInput over the selected harness.
//
// Generated input `i` of a run is a pure function of (seed, i) via
// exec::stream_seed, so a failure replays from that pair alone — no
// corpus file required (corpus entries are extra inputs on top, replayed
// by file). On failure the driver shrinks the input byte-wise (truncate,
// drop chunks, zero bytes) while the harness keeps failing, and reports
// the minimal input.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tinysdr::testkit {

struct Harness {
  std::string name;  ///< dotted id, e.g. "lvds.deframer_bits"
  /// Total over all inputs; throws (anything) to report a violation.
  std::function<void(std::span<const std::uint8_t>)> run;
  /// Length cap for generated inputs (corpus files are run as-is).
  std::size_t max_len = 512;
};

class HarnessRegistry {
 public:
  /// Process-wide table (harness translation units register into it via
  /// their register_*() functions; see tests/fuzz/harnesses/).
  [[nodiscard]] static HarnessRegistry& instance();

  /// @throws std::invalid_argument on a duplicate name.
  void add(Harness h);

  [[nodiscard]] const Harness* find(std::string_view name) const;
  [[nodiscard]] const std::vector<Harness>& all() const { return harnesses_; }
  void clear() { harnesses_.clear(); }

 private:
  std::vector<Harness> harnesses_;
};

struct FuzzRunConfig {
  std::uint64_t seed = 0xF0220;
  std::size_t iterations = 1000;
  /// Directory of seed inputs for this harness (every regular file is run
  /// first, and entries also serve as mutation bases for generated
  /// inputs). Empty = generated inputs only.
  std::string corpus_dir;
  /// Where to write shrunk counterexamples; empty = don't write.
  std::string artifact_dir;
  /// Candidate-execution budget for byte-level shrinking.
  std::size_t max_shrinks = 4000;
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  /// Generated-input index, or nullopt when a corpus file failed.
  std::optional<std::uint64_t> index;
  std::string corpus_file;  ///< set when a corpus entry failed
  std::vector<std::uint8_t> input;   ///< the original failing input
  std::vector<std::uint8_t> shrunk;  ///< minimal failing input found
  std::size_t shrink_steps = 0;
  std::string error;
  std::string artifact;  ///< path of the written artifact, if any
};

struct FuzzReport {
  std::string harness;
  std::size_t iterations_run = 0;
  std::size_t corpus_inputs = 0;
  std::optional<FuzzFailure> failure;

  [[nodiscard]] bool ok() const { return !failure.has_value(); }
  /// Failure report with replay recipe; one summary line on success.
  [[nodiscard]] std::string message() const;
};

/// Regenerate generated input `index` of a (seed-rooted) run — the replay
/// half of the (seed, index) contract. Mirrors run_fuzz exactly.
[[nodiscard]] std::vector<std::uint8_t> fuzz_input(
    const Harness& harness, std::uint64_t seed, std::uint64_t index,
    std::span<const std::vector<std::uint8_t>> corpus = {});

/// Load every regular file under `dir` in name order. Missing/empty dir
/// yields an empty corpus.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> load_corpus(
    const std::string& dir);

/// Run corpus entries then `iterations` generated inputs through the
/// harness; stop at the first failure, shrink it, optionally write the
/// artifact.
[[nodiscard]] FuzzReport run_fuzz(const Harness& harness,
                                  const FuzzRunConfig& cfg);

/// Byte-level greedy shrink of a failing input: empty/truncations, chunk
/// drops, byte zeroing — bounded by `max_candidates` harness executions.
[[nodiscard]] std::pair<std::vector<std::uint8_t>, std::size_t> shrink_bytes(
    const Harness& harness, std::vector<std::uint8_t> input,
    std::size_t max_candidates);

}  // namespace tinysdr::testkit
