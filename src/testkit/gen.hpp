// Typed generators for property-based tests.
//
// A Gen<T> draws a value from an Rng under a size bound (the property
// runner ramps size up across cases, so early cases are small and late
// cases stress the upper range) and optionally knows how to shrink a
// failing value toward a minimal counterexample. Shrink candidates are
// produced by the generator itself so they always respect the generator's
// own constraints (an int_in(3, 9) never shrinks below 3, a vector_of with
// min_len 2 never drops under 2 elements).
//
// Generators are pure in (rng state, size): the property runner derives
// one Rng per case from (base seed, case index) via exec::stream_seed, so
// every failure replays from that pair alone.
#pragma once

#include <cstdint>
#include <functional>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace tinysdr::testkit {

template <typename T>
class Gen {
 public:
  using value_type = T;
  using GenFn = std::function<T(Rng&, std::size_t)>;
  using ShrinkFn = std::function<std::vector<T>(const T&)>;

  explicit Gen(GenFn fn, ShrinkFn shrink = nullptr)
      : fn_(std::move(fn)), shrink_(std::move(shrink)) {}

  [[nodiscard]] T operator()(Rng& rng, std::size_t size) const {
    return fn_(rng, size);
  }

  /// Shrink candidates for `value`, smaller/simpler first. Empty when the
  /// generator has no shrinker (shrinking then stops at the raw value).
  [[nodiscard]] std::vector<T> shrink(const T& value) const {
    return shrink_ ? shrink_(value) : std::vector<T>{};
  }

  /// Replace the shrinker (e.g. after map(), which cannot invert the
  /// mapping to reuse the source shrinker).
  [[nodiscard]] Gen<T> with_shrink(ShrinkFn shrink) const {
    return Gen<T>{fn_, std::move(shrink)};
  }

  template <typename F>
  [[nodiscard]] auto map(F f) const -> Gen<std::invoke_result_t<F, T>> {
    using U = std::invoke_result_t<F, T>;
    auto fn = fn_;
    return Gen<U>{[fn, f](Rng& rng, std::size_t size) { return f(fn(rng, size)); }};
  }

  /// Retry until `pred` holds (up to `max_tries` draws, then the last
  /// draw is returned as-is — properties should treat the predicate as a
  /// soft bias, not a hard precondition). Shrink candidates are filtered
  /// through the predicate, so shrinking never escapes it.
  template <typename P>
  [[nodiscard]] Gen<T> filter(P pred, std::size_t max_tries = 100) const {
    auto fn = fn_;
    auto shrink = shrink_;
    return Gen<T>{
        [fn, pred, max_tries](Rng& rng, std::size_t size) {
          T v = fn(rng, size);
          for (std::size_t i = 1; i < max_tries && !pred(v); ++i)
            v = fn(rng, size);
          return v;
        },
        shrink == nullptr
            ? ShrinkFn{}
            : ShrinkFn{[shrink, pred](const T& v) {
                std::vector<T> all = shrink(v);
                std::vector<T> kept;
                for (auto& c : all)
                  if (pred(c)) kept.push_back(std::move(c));
                return kept;
              }}};
  }

 private:
  GenFn fn_;
  ShrinkFn shrink_;
};

namespace gen {

namespace detail {

/// Integer shrink candidates within [lo, hi]: the in-range value closest
/// to zero first, then bisection steps from it toward the failing value.
template <typename T>
std::vector<T> shrink_int_toward(T value, T lo, T hi) {
  T target = 0;
  if (lo > 0) target = lo;
  if (hi < 0) target = hi;
  std::vector<T> out;
  if (value == target) return out;
  out.push_back(target);
  // Halve the distance until it degenerates to +/-1.
  T delta = value - target;
  while (true) {
    delta = static_cast<T>(delta / 2);
    if (delta == 0) break;
    T candidate = static_cast<T>(value - delta);
    if (candidate != target && candidate != value) out.push_back(candidate);
  }
  return out;
}

}  // namespace detail

[[nodiscard]] inline Gen<bool> boolean() {
  return Gen<bool>{[](Rng& rng, std::size_t) { return (rng.next_u32() & 1u) != 0; },
                   [](const bool& v) {
                     return v ? std::vector<bool>{false} : std::vector<bool>{};
                   }};
}

[[nodiscard]] inline Gen<std::uint8_t> byte() {
  return Gen<std::uint8_t>{
      [](Rng& rng, std::size_t) { return rng.next_byte(); },
      [](const std::uint8_t& v) {
        return detail::shrink_int_toward<std::uint8_t>(v, 0, 255);
      }};
}

/// Uniform in [lo, hi] (inclusive). Shrinks toward the in-range value
/// closest to zero.
[[nodiscard]] inline Gen<std::int64_t> int_in(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) hi = lo;
  auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return Gen<std::int64_t>{
      [lo, span](Rng& rng, std::size_t) {
        std::uint64_t raw =
            (std::uint64_t{rng.next_u32()} << 32) | rng.next_u32();
        return lo + static_cast<std::int64_t>(span == 0 ? raw : raw % span);
      },
      [lo, hi](const std::int64_t& v) {
        return detail::shrink_int_toward<std::int64_t>(v, lo, hi);
      }};
}

/// Uniform in [0, bound). bound must be > 0.
[[nodiscard]] inline Gen<std::uint32_t> uint_below(std::uint32_t bound) {
  return Gen<std::uint32_t>{
      [bound](Rng& rng, std::size_t) { return rng.next_below(bound); },
      [bound](const std::uint32_t& v) {
        return detail::shrink_int_toward<std::uint32_t>(
            v, 0, bound == 0 ? 0 : bound - 1);
      }};
}

/// Uniform real in [lo, hi). Shrinks toward lo through 0/midpoints.
[[nodiscard]] inline Gen<double> real_in(double lo, double hi) {
  return Gen<double>{
      [lo, hi](Rng& rng, std::size_t) {
        return lo + rng.next_double() * (hi - lo);
      },
      [lo](const double& v) {
        std::vector<double> out;
        if (v != lo) {
          out.push_back(lo);
          double mid = lo + (v - lo) / 2.0;
          if (mid != lo && mid != v) out.push_back(mid);
        }
        return out;
      }};
}

/// Pick one of the given values (uniform). Shrinks toward earlier
/// choices, so order the list simplest-first.
template <typename T>
[[nodiscard]] Gen<T> element_of(std::vector<T> choices) {
  return Gen<T>{
      [choices](Rng& rng, std::size_t) {
        return choices[rng.next_below(
            static_cast<std::uint32_t>(choices.size()))];
      },
      [choices](const T& v) {
        std::vector<T> out;
        for (const T& c : choices) {
          if (c == v) break;
          out.push_back(c);
        }
        return out;
      }};
}

/// Vector of `elem` draws. Length is uniform in [min_len, max_len]; a
/// max_len of 0 means "size-driven": the bound follows the runner's size
/// ramp. Shrinks by dropping chunks/elements (respecting min_len), then by
/// shrinking individual elements.
template <typename T>
[[nodiscard]] Gen<std::vector<T>> vector_of(Gen<T> elem,
                                            std::size_t min_len = 0,
                                            std::size_t max_len = 0) {
  return Gen<std::vector<T>>{
      [elem, min_len, max_len](Rng& rng, std::size_t size) {
        std::size_t hi = max_len != 0 ? max_len : std::max(min_len, size);
        std::size_t lo = std::min(min_len, hi);
        std::size_t len =
            lo + rng.next_below(static_cast<std::uint32_t>(hi - lo + 1));
        std::vector<T> out;
        out.reserve(len);
        for (std::size_t i = 0; i < len; ++i) out.push_back(elem(rng, size));
        return out;
      },
      [elem, min_len](const std::vector<T>& v) {
        std::vector<std::vector<T>> out;
        // Structural shrinks: empty-ish, halves, drop one element.
        if (v.size() > min_len) {
          out.emplace_back(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(min_len));
          std::size_t half = std::max(min_len, v.size() / 2);
          if (half != min_len && half != v.size())
            out.emplace_back(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(half));
          for (std::size_t i = 0; i < v.size() && out.size() < 24; ++i) {
            std::vector<T> copy = v;
            copy.erase(copy.begin() + static_cast<std::ptrdiff_t>(i));
            out.push_back(std::move(copy));
          }
        }
        // Element shrinks: first shrink candidate of each position.
        for (std::size_t i = 0; i < v.size() && out.size() < 48; ++i) {
          auto cands = elem.shrink(v[i]);
          if (!cands.empty()) {
            std::vector<T> copy = v;
            copy[i] = cands.front();
            out.push_back(std::move(copy));
          }
        }
        return out;
      }};
}

/// Random payload bytes, the workhorse of codec properties.
[[nodiscard]] inline Gen<std::vector<std::uint8_t>> bytes(
    std::size_t min_len = 0, std::size_t max_len = 0) {
  return vector_of(byte(), min_len, max_len);
}

/// Zip two generators. Shrinks one component at a time.
template <typename A, typename B>
[[nodiscard]] Gen<std::pair<A, B>> pair_of(Gen<A> a, Gen<B> b) {
  return Gen<std::pair<A, B>>{
      [a, b](Rng& rng, std::size_t size) {
        A first = a(rng, size);
        B second = b(rng, size);
        return std::pair<A, B>{std::move(first), std::move(second)};
      },
      [a, b](const std::pair<A, B>& v) {
        std::vector<std::pair<A, B>> out;
        for (auto&& c : a.shrink(v.first))
          out.emplace_back(std::move(c), v.second);
        for (auto&& c : b.shrink(v.second))
          out.emplace_back(v.first, std::move(c));
        return out;
      }};
}

/// Zip N generators into a tuple. Shrinks one component at a time.
template <typename... Ts>
[[nodiscard]] Gen<std::tuple<Ts...>> tuple_of(Gen<Ts>... gens) {
  auto pack = std::make_tuple(gens...);
  return Gen<std::tuple<Ts...>>{
      [pack](Rng& rng, std::size_t size) {
        return std::apply(
            [&](const auto&... g) {
              // Force left-to-right draw order (brace-init sequencing).
              return std::tuple<Ts...>{g(rng, size)...};
            },
            pack);
      },
      [pack](const std::tuple<Ts...>& v) {
        std::vector<std::tuple<Ts...>> out;
        auto shrink_component = [&](auto index_constant) {
          constexpr std::size_t kIdx = decltype(index_constant)::value;
          for (auto&& c : std::get<kIdx>(pack).shrink(std::get<kIdx>(v))) {
            std::tuple<Ts...> copy = v;
            std::get<kIdx>(copy) = std::move(c);
            out.push_back(std::move(copy));
          }
        };
        [&]<std::size_t... Is>(std::index_sequence<Is...>) {
          (shrink_component(std::integral_constant<std::size_t, Is>{}), ...);
        }(std::index_sequence_for<Ts...>{});
        return out;
      }};
}

}  // namespace gen
}  // namespace tinysdr::testkit
