#include "testkit/property.hpp"

#include <cstdlib>

namespace tinysdr::testkit {

namespace {

std::optional<std::uint64_t> env_u64(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  char* end = nullptr;
  unsigned long long v = std::strtoull(raw, &end, 0);
  if (end == raw || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

}  // namespace

PropertyConfig PropertyConfig::from_env() { return from_env(PropertyConfig{}); }

PropertyConfig PropertyConfig::from_env(PropertyConfig base) {
  if (auto seed = env_u64("TINYSDR_PROP_SEED")) base.seed = *seed;
  if (auto index = env_u64("TINYSDR_PROP_INDEX")) base.only_index = *index;
  if (auto cases = env_u64("TINYSDR_PROP_CASES"))
    base.cases = static_cast<std::size_t>(*cases);
  return base;
}

std::string PropertyResult::message() const {
  if (ok) return {};
  std::ostringstream oss;
  oss << "property";
  if (!name.empty()) oss << " '" << name << "'";
  oss << " failed at (seed=" << seed << ", index=" << index << ")";
  if (shrink_steps > 0) oss << " after " << shrink_steps << " shrinks";
  oss << "\n  counterexample: " << counterexample;
  oss << "\n  failure: " << error;
  oss << "\n  replay: TINYSDR_PROP_SEED=" << seed
      << " TINYSDR_PROP_INDEX=" << index << " ctest -R <this test>";
  return oss.str();
}

}  // namespace tinysdr::testkit
