// ByteSource: structured decoding of a raw fuzz input.
//
// A fuzz harness is a total function of an arbitrary byte string (the
// libFuzzer contract). ByteSource turns that string into bounded integers,
// reals and byte blocks the way FuzzedDataProvider does: every draw
// consumes from the front, and an exhausted source keeps answering with
// zeros, so the harness is defined on *every* input — short, empty or
// adversarial. Because the mapping is pure, an input regenerated from a
// recorded (seed, index) pair replays the exact same harness behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tinysdr::testkit {

class ByteSource {
 public:
  explicit ByteSource(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ >= data_.size(); }

  [[nodiscard]] std::uint8_t u8() {
    return pos_ < data_.size() ? data_[pos_++] : 0;
  }
  [[nodiscard]] std::uint16_t u16() {
    return static_cast<std::uint16_t>(u8() | (std::uint16_t{u8()} << 8));
  }
  [[nodiscard]] std::uint32_t u32() {
    return u16() | (std::uint32_t{u16()} << 16);
  }
  [[nodiscard]] std::uint64_t u64() {
    return u32() | (std::uint64_t{u32()} << 32);
  }

  [[nodiscard]] bool boolean() { return (u8() & 1u) != 0; }

  /// Uniform-ish in [0, bound); bound 0 yields 0. Modulo bias is fine
  /// here — fuzz inputs are not statistics, they are coverage.
  [[nodiscard]] std::uint32_t uint_below(std::uint32_t bound) {
    return bound == 0 ? 0 : u32() % bound;
  }

  /// Inclusive integer range; lo > hi collapses to lo.
  [[nodiscard]] std::int64_t int_in(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(u64() % span);
  }

  /// Real in [0, 1).
  [[nodiscard]] double unit() {
    return static_cast<double>(u32()) * (1.0 / 4294967296.0);
  }
  [[nodiscard]] double real_in(double lo, double hi) {
    return hi <= lo ? lo : lo + unit() * (hi - lo);
  }

  /// Up to `n` bytes (fewer if the input runs out; never padded — block
  /// sizes shrink with the input, which is what byte-level shrinking
  /// wants).
  [[nodiscard]] std::vector<std::uint8_t> take(std::size_t n) {
    std::size_t count = std::min(n, remaining());
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
    pos_ += count;
    return out;
  }

  /// Everything left.
  [[nodiscard]] std::vector<std::uint8_t> rest() { return take(remaining()); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace tinysdr::testkit
