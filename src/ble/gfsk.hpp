// GFSK modulation and demodulation for BLE (paper §4.2).
//
// Modulator (the FPGA pipeline the paper describes): "we upsample and apply
// a Gaussian filter to the bitstream. This gives us the desired changes in
// frequency which we integrate to get the phase. We then feed the phase to
// sine and cosine functions to get the final I and Q samples."
//
// Demodulator (reference receiver standing in for the TI CC2650 used to
// measure BER in Fig. 12): quadrature discriminator (arg of s[n]*conj(s[n-1]))
// followed by per-symbol integrate-and-dump and a sign decision.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "dsp/types.hpp"

namespace tinysdr::ble {

struct GfskConfig {
  double bitrate = 1e6;          ///< BLE 4.x: 1 Mbps (BLE 5: 2 Mbps)
  double modulation_index = 0.5; ///< BLE allows 0.45..0.55
  double bt = 0.5;               ///< Gaussian BT product
  std::uint32_t samples_per_bit = 4;

  [[nodiscard]] Hertz sample_rate() const {
    return Hertz{bitrate * samples_per_bit};
  }
  /// Peak frequency deviation: h * bitrate / 2.
  [[nodiscard]] double deviation_hz() const {
    return modulation_index * bitrate / 2.0;
  }
};

class GfskModulator {
 public:
  explicit GfskModulator(GfskConfig config = {});

  [[nodiscard]] const GfskConfig& config() const { return config_; }

  /// Modulate a bit sequence to baseband I/Q (unit envelope).
  [[nodiscard]] dsp::Samples modulate(const std::vector<bool>& bits) const;

 private:
  GfskConfig config_;
  std::vector<double> gaussian_;
};

class GfskDemodulator {
 public:
  explicit GfskDemodulator(GfskConfig config = {});

  /// Recover bits from baseband I/Q. `bit_offset_hint` skips leading
  /// samples (e.g. after coarse packet detection).
  [[nodiscard]] std::vector<bool> demodulate(std::span<const dsp::Complex> iq,
                                             std::size_t sample_offset = 0) const;

  /// Timing recovery: find the sample offset (0..samples_per_bit-1) that
  /// maximises the eye opening over the preamble region.
  [[nodiscard]] std::size_t estimate_timing(std::span<const dsp::Complex> iq) const;

 private:
  GfskConfig config_;
};

/// Count bit errors between transmitted and received sequences (compared up
/// to the shorter length).
[[nodiscard]] std::size_t count_bit_errors(const std::vector<bool>& tx,
                                           const std::vector<bool>& rx);

/// BER against a known reference, the way a BER tester measures it: search
/// a small alignment window (the demodulated stream can lead/lag by a few
/// bits from discriminator start-up and timing recovery), count errors over
/// the overlap, and require at least 90% of the reference to be covered
/// (otherwise the measurement is void and 1.0 is returned).
[[nodiscard]] double aligned_ber(const std::vector<bool>& reference,
                                 const std::vector<bool>& rx,
                                 int max_shift = 8);

}  // namespace tinysdr::ble
