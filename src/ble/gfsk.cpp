#include "ble/gfsk.hpp"

#include <cmath>
#include <numbers>

#include "dsp/gaussian.hpp"
#include "dsp/nco.hpp"
#include "obs/profile.hpp"

namespace tinysdr::ble {

GfskModulator::GfskModulator(GfskConfig config)
    : config_(config),
      gaussian_(dsp::design_gaussian(config.bt, config.samples_per_bit, 3)) {}

dsp::Samples GfskModulator::modulate(const std::vector<bool>& bits) const {
  const std::uint32_t sps = config_.samples_per_bit;

  // NRZ frequency pulses, upsampled (rectangular hold).
  std::vector<double> freq_pulses;
  freq_pulses.reserve(bits.size() * sps);
  for (bool bit : bits)
    for (std::uint32_t s = 0; s < sps; ++s)
      freq_pulses.push_back(bit ? 1.0 : -1.0);

  // Gaussian pulse shaping; drop the filter's group delay so bit k's
  // center stays at sample k*sps + sps/2 (the hardware pipeline aligns the
  // same way), and keep exactly sps samples per bit.
  auto shaped = dsp::convolve(freq_pulses, gaussian_);
  const std::size_t group_delay = (gaussian_.size() - 1) / 2;
  shaped.erase(shaped.begin(),
               shaped.begin() + static_cast<std::ptrdiff_t>(group_delay));
  shaped.resize(freq_pulses.size());

  // Frequency -> phase (integration), phase -> I/Q via the shared LUT,
  // exactly the hardware pipeline.
  const double dev_cycles_per_sample =
      config_.deviation_hz() / config_.sample_rate().value();
  dsp::Samples out;
  out.reserve(shaped.size());
  double phase = 0.0;
  const auto& lut = dsp::SinCosLut::instance();
  for (double f : shaped) {
    phase += dev_cycles_per_sample * f;
    double wrapped = phase - std::floor(phase);
    out.push_back(
        lut.lookup(static_cast<std::uint32_t>(wrapped * 4294967296.0)));
  }
  return out;
}

GfskDemodulator::GfskDemodulator(GfskConfig config) : config_(config) {}

std::vector<bool> GfskDemodulator::demodulate(std::span<const dsp::Complex> iq,
                                              std::size_t sample_offset) const {
  obs::ProfileScope prof{"gfsk_demod"};
  const std::uint32_t sps = config_.samples_per_bit;
  std::vector<bool> bits;
  if (iq.size() <= sample_offset + 1) return bits;

  // Quadrature discriminator: instantaneous frequency per sample.
  std::vector<double> freq;
  freq.reserve(iq.size() - sample_offset - 1);
  for (std::size_t i = sample_offset + 1; i < iq.size(); ++i) {
    dsp::Complex d = iq[i] * std::conj(iq[i - 1]);
    freq.push_back(std::arg(d));
  }

  // Integrate-and-dump over each bit period, decide by sign.
  for (std::size_t start = 0; start + sps <= freq.size(); start += sps) {
    double acc = 0.0;
    for (std::uint32_t s = 0; s < sps; ++s) acc += freq[start + s];
    bits.push_back(acc > 0.0);
  }
  return bits;
}

std::size_t GfskDemodulator::estimate_timing(std::span<const dsp::Complex> iq) const {
  const std::uint32_t sps = config_.samples_per_bit;
  if (iq.size() < sps * 16) return 0;

  std::size_t best_offset = 0;
  double best_metric = -1.0;
  for (std::size_t offset = 0; offset < sps; ++offset) {
    // Eye metric: sum of sqrt(|integrated frequency|) per dump. The
    // concavity matters — a misaligned grouping produces a few large dumps
    // (same-bit straddles) and many near-zero ones (opposite-bit
    // straddles), which a plain sum rewards; sqrt rewards every dump being
    // consistently non-zero, which only the aligned offset achieves.
    double metric = 0.0;
    std::size_t limit = std::min<std::size_t>(iq.size() - 1, sps * 64);
    double acc = 0.0;
    std::uint32_t in_bit = 0;
    for (std::size_t i = offset + 1; i < limit; ++i) {
      dsp::Complex d = iq[i] * std::conj(iq[i - 1]);
      acc += std::arg(d);
      if (++in_bit == sps) {
        metric += std::sqrt(std::abs(acc));
        acc = 0.0;
        in_bit = 0;
      }
    }
    if (metric > best_metric) {
      best_metric = metric;
      best_offset = offset;
    }
  }
  return best_offset;
}

double aligned_ber(const std::vector<bool>& reference,
                   const std::vector<bool>& rx, int max_shift) {
  if (reference.empty()) return 0.0;
  double best = 1.0;
  for (int shift = -max_shift; shift <= max_shift; ++shift) {
    std::size_t errors = 0;
    std::size_t compared = 0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      long j = static_cast<long>(i) + shift;
      if (j < 0 || j >= static_cast<long>(rx.size())) continue;
      ++compared;
      if (reference[i] != rx[static_cast<std::size_t>(j)]) ++errors;
    }
    if (compared * 10 < reference.size() * 9) continue;  // < 90% coverage
    best = std::min(
        best, static_cast<double>(errors) / static_cast<double>(compared));
  }
  return best;
}

std::size_t count_bit_errors(const std::vector<bool>& tx,
                             const std::vector<bool>& rx) {
  std::size_t n = std::min(tx.size(), rx.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (tx[i] != rx[i]) ++errors;
  return errors;
}

}  // namespace tinysdr::ble
