// BLE beacon advertiser with channel hopping (paper §4.2, Fig. 13).
//
// Beacons are transmitted on the three advertising channels in sequence;
// the gap between transmissions is bounded below by the radio's 220 us
// frequency-switch delay (Table 4) — the quantity Fig. 13 measures (an
// iPhone 8 needs 350 us for comparison).
#pragma once

#include <vector>

#include "ble/gfsk.hpp"
#include "ble/packet.hpp"
#include "radio/timing.hpp"

namespace tinysdr::ble {

struct BeaconBurstEntry {
  int channel_index;
  double start_us;     ///< transmission start within the burst
  double duration_us;  ///< packet airtime
};

/// Schedule and waveform generation for one advertising event (a burst of
/// the same PDU on channels 37, 38, 39).
class Advertiser {
 public:
  Advertiser(AdvPacket packet, GfskConfig gfsk = {},
             radio::TimingModel timing = {});

  [[nodiscard]] const AdvPacket& packet() const { return packet_; }

  /// Timeline of one burst: three transmissions separated by the frequency
  /// switch delay.
  [[nodiscard]] std::vector<BeaconBurstEntry> burst_schedule() const;

  /// Inter-beacon gap (the Fig. 13 number).
  [[nodiscard]] Seconds hop_gap() const {
    return timing_.frequency_switch;
  }

  /// Total burst duration (first bit to last bit).
  [[nodiscard]] Seconds burst_duration() const;

  /// Modulated baseband waveform for one channel's beacon.
  [[nodiscard]] dsp::Samples waveform(int channel_index) const;

  /// The envelope Fig. 13 shows: |amplitude| over time for the whole burst
  /// at the GFSK sample rate, zeros in the hop gaps.
  [[nodiscard]] std::vector<double> burst_envelope() const;

 private:
  AdvPacket packet_;
  GfskConfig gfsk_;
  radio::TimingModel timing_;
  GfskModulator modulator_;
};

}  // namespace tinysdr::ble
