// BLE advertising packet construction (paper §4.2).
//
// Non-connectable advertisements (ADV_NONCONN_IND): preamble 0xAA, access
// address 0x8E89BED6, PDU (header + AdvA + AdvData), CRC-24 from the
// 0x555555-seeded LFSR, then whitening over PDU+CRC with the 7-bit LFSR
// x^7 + x^4 + 1 seeded with the channel index. All bit-exact per the
// Bluetooth Core Specification and round-trip tested.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace tinysdr::ble {

inline constexpr std::uint8_t kPreamble = 0xAA;
inline constexpr std::uint32_t kAccessAddress = 0x8E89BED6;

/// The three advertising channels (index -> RF frequency).
struct AdvChannel {
  int index;          ///< 37, 38, 39
  double freq_mhz;    ///< 2402, 2426, 2480
};
inline constexpr std::array<AdvChannel, 3> kAdvChannels{
    AdvChannel{37, 2402.0}, AdvChannel{38, 2426.0}, AdvChannel{39, 2480.0}};

enum class PduType : std::uint8_t {
  kAdvInd = 0x0,
  kAdvNonconnInd = 0x2,
  kAdvScanInd = 0x6,
};

struct AdvPacket {
  PduType type = PduType::kAdvNonconnInd;
  std::array<std::uint8_t, 6> adv_address{};  ///< AdvA, little-endian
  std::vector<std::uint8_t> adv_data;         ///< 0..31 bytes

  /// PDU bytes: 2-byte header + AdvA + AdvData.
  /// @throws std::invalid_argument if adv_data exceeds 31 bytes.
  [[nodiscard]] std::vector<std::uint8_t> pdu() const;
};

/// Whitening LFSR (x^7 + x^4 + 1), seeded with the channel index (bit 6
/// set, lower 6 bits = channel). Self-inverse XOR stream.
class Whitener {
 public:
  explicit Whitener(int channel_index);
  /// Next whitening bit.
  [[nodiscard]] bool next_bit();
  /// Whiten/dewhiten a byte (LSB first, matching air order).
  [[nodiscard]] std::uint8_t apply(std::uint8_t byte);
  [[nodiscard]] std::vector<std::uint8_t> apply(
      std::span<const std::uint8_t> bytes);

 private:
  std::uint8_t state_;
};

/// Assemble the full on-air bit sequence (LSB-first per byte):
/// preamble | access address | whitened(PDU | CRC24).
[[nodiscard]] std::vector<bool> assemble_air_bits(const AdvPacket& packet,
                                                  int channel_index);

/// On-air packet length in bits/bytes (for airtime: 1 Mbps PHY).
[[nodiscard]] std::size_t air_bytes(const AdvPacket& packet);
[[nodiscard]] inline double airtime_us(const AdvPacket& packet,
                                       double bitrate_mbps = 1.0) {
  return static_cast<double>(air_bytes(packet)) * 8.0 / bitrate_mbps;
}

/// Parse a received air bit sequence back into a packet: find the access
/// address, dewhiten, check CRC. Returns nullopt on any mismatch.
struct ParsedAdv {
  AdvPacket packet;
  std::size_t bit_errors_corrected = 0;  ///< always 0 (no FEC in BLE 4)
};
[[nodiscard]] std::optional<ParsedAdv> parse_air_bits(
    const std::vector<bool>& bits, int channel_index);

}  // namespace tinysdr::ble
