#include "ble/packet.hpp"

#include <stdexcept>

#include "common/bitio.hpp"
#include "common/crc.hpp"

namespace tinysdr::ble {

std::vector<std::uint8_t> AdvPacket::pdu() const {
  if (adv_data.size() > 31)
    throw std::invalid_argument("AdvPacket: AdvData exceeds 31 bytes");
  std::vector<std::uint8_t> out;
  // Header: PDU type in bits 0..3, TxAdd/RxAdd zero; length byte.
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(static_cast<std::uint8_t>(6 + adv_data.size()));
  out.insert(out.end(), adv_address.begin(), adv_address.end());
  out.insert(out.end(), adv_data.begin(), adv_data.end());
  return out;
}

Whitener::Whitener(int channel_index) {
  if (channel_index < 0 || channel_index > 39)
    throw std::invalid_argument("Whitener: channel index out of range");
  // Position 0 set to one, positions 1..6 = channel index (BT spec).
  state_ = static_cast<std::uint8_t>(0x40 | (channel_index & 0x3F));
}

bool Whitener::next_bit() {
  // Standard BLE form (matches commercial chipsets): output is position 0
  // (register bit 6); feedback taps realise x^7 + x^4 + 1.
  bool out = (state_ >> 6) & 1u;
  state_ = static_cast<std::uint8_t>((state_ << 1) & 0x7F);
  if (out) state_ ^= 0x11;  // x^4 and x^0 taps
  return out;
}

std::uint8_t Whitener::apply(std::uint8_t byte) {
  std::uint8_t out = 0;
  for (int i = 0; i < 8; ++i) {
    bool w = next_bit();
    bool b = (byte >> i) & 1u;
    out |= static_cast<std::uint8_t>((b != w ? 1u : 0u) << i);
  }
  return out;
}

std::vector<std::uint8_t> Whitener::apply(
    std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> out;
  out.reserve(bytes.size());
  for (std::uint8_t b : bytes) out.push_back(apply(b));
  return out;
}

std::vector<bool> assemble_air_bits(const AdvPacket& packet,
                                    int channel_index) {
  auto pdu = packet.pdu();

  // CRC over the *unwhitened* PDU, LSB-first input.
  std::uint32_t crc = ble_crc24(pdu);
  std::vector<std::uint8_t> pdu_crc = pdu;
  // CRC transmitted MSB of register first: bits 23..0. Packed here as three
  // bytes whose air (LSB-first) order emits bit 23 first.
  std::uint8_t c0 = 0, c1 = 0, c2 = 0;
  for (int i = 0; i < 8; ++i) {
    c0 |= static_cast<std::uint8_t>(((crc >> (23 - i)) & 1u) << i);
    c1 |= static_cast<std::uint8_t>(((crc >> (15 - i)) & 1u) << i);
    c2 |= static_cast<std::uint8_t>(((crc >> (7 - i)) & 1u) << i);
  }
  pdu_crc.push_back(c0);
  pdu_crc.push_back(c1);
  pdu_crc.push_back(c2);

  // Whitening covers PDU + CRC only.
  Whitener whitener{channel_index};
  auto whitened = whitener.apply(pdu_crc);

  BitWriter bits;
  bits.push_byte_lsb_first(kPreamble);
  bits.push_bits_lsb_first(kAccessAddress, 32);
  for (std::uint8_t b : whitened) bits.push_byte_lsb_first(b);
  return bits.bits();
}

std::size_t air_bytes(const AdvPacket& packet) {
  // preamble(1) + AA(4) + header(2) + AdvA(6) + data + CRC(3).
  return 1 + 4 + 2 + 6 + packet.adv_data.size() + 3;
}

std::optional<ParsedAdv> parse_air_bits(const std::vector<bool>& bits,
                                        int channel_index) {
  // Hunt for the access address (allow the preamble to be partially lost).
  if (bits.size() < 48) return std::nullopt;
  std::optional<std::size_t> aa_end;
  for (std::size_t start = 0; start + 32 <= bits.size(); ++start) {
    std::uint32_t aa = 0;
    for (int i = 0; i < 32; ++i)
      aa |= static_cast<std::uint32_t>(bits[start + static_cast<std::size_t>(i)]
                                           ? 1u
                                           : 0u)
            << i;
    if (aa == kAccessAddress) {
      aa_end = start + 32;
      break;
    }
  }
  if (!aa_end) return std::nullopt;

  // Dewhiten the remainder byte by byte.
  std::size_t remaining_bits = bits.size() - *aa_end;
  std::size_t body_bytes = remaining_bits / 8;
  if (body_bytes < 2 + 6 + 3) return std::nullopt;

  Whitener whitener{channel_index};
  std::vector<std::uint8_t> body;
  for (std::size_t i = 0; i < body_bytes; ++i) {
    std::uint8_t raw = 0;
    for (int b = 0; b < 8; ++b)
      raw |= static_cast<std::uint8_t>(
          (bits[*aa_end + i * 8 + static_cast<std::size_t>(b)] ? 1u : 0u)
          << b);
    body.push_back(whitener.apply(raw));
  }

  std::uint8_t length = body[1];
  if (length < 6 || length > 37) return std::nullopt;
  std::size_t pdu_len = 2 + static_cast<std::size_t>(length);
  if (body.size() < pdu_len + 3) return std::nullopt;

  std::vector<std::uint8_t> pdu(body.begin(),
                                body.begin() + static_cast<std::ptrdiff_t>(pdu_len));
  std::uint32_t crc = ble_crc24(pdu);
  std::uint8_t e0 = 0, e1 = 0, e2 = 0;
  for (int i = 0; i < 8; ++i) {
    e0 |= static_cast<std::uint8_t>(((crc >> (23 - i)) & 1u) << i);
    e1 |= static_cast<std::uint8_t>(((crc >> (15 - i)) & 1u) << i);
    e2 |= static_cast<std::uint8_t>(((crc >> (7 - i)) & 1u) << i);
  }
  if (body[pdu_len] != e0 || body[pdu_len + 1] != e1 ||
      body[pdu_len + 2] != e2)
    return std::nullopt;

  ParsedAdv out;
  out.packet.type = static_cast<PduType>(pdu[0] & 0x0F);
  for (int i = 0; i < 6; ++i)
    out.packet.adv_address[static_cast<std::size_t>(i)] =
        pdu[2 + static_cast<std::size_t>(i)];
  out.packet.adv_data.assign(pdu.begin() + 8, pdu.end());
  return out;
}

}  // namespace tinysdr::ble
