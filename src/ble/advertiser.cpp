#include "ble/advertiser.hpp"

namespace tinysdr::ble {

Advertiser::Advertiser(AdvPacket packet, GfskConfig gfsk,
                       radio::TimingModel timing)
    : packet_(std::move(packet)),
      gfsk_(gfsk),
      timing_(timing),
      modulator_(gfsk) {}

std::vector<BeaconBurstEntry> Advertiser::burst_schedule() const {
  std::vector<BeaconBurstEntry> out;
  double t = 0.0;
  double air_us = airtime_us(packet_, gfsk_.bitrate / 1e6);
  for (const auto& chan : kAdvChannels) {
    out.push_back(BeaconBurstEntry{chan.index, t, air_us});
    t += air_us + timing_.frequency_switch.microseconds();
  }
  return out;
}

Seconds Advertiser::burst_duration() const {
  auto schedule = burst_schedule();
  const auto& last = schedule.back();
  return Seconds::from_microseconds(last.start_us + last.duration_us);
}

dsp::Samples Advertiser::waveform(int channel_index) const {
  auto bits = assemble_air_bits(packet_, channel_index);
  return modulator_.modulate(bits);
}

std::vector<double> Advertiser::burst_envelope() const {
  const double fs = gfsk_.sample_rate().value();
  auto schedule = burst_schedule();
  auto total_samples = static_cast<std::size_t>(
      burst_duration().value() * fs) + 1;
  std::vector<double> envelope(total_samples, 0.0);
  for (const auto& entry : schedule) {
    auto wave = waveform(entry.channel_index);
    auto start = static_cast<std::size_t>(entry.start_us * 1e-6 * fs);
    for (std::size_t i = 0; i < wave.size() && start + i < envelope.size();
         ++i)
      envelope[start + i] = std::abs(wave[i]);
  }
  return envelope;
}

}  // namespace tinysdr::ble
