// TI CC2650 receiver model — the commercial BLE chip the paper uses to
// measure tinySDR's beacon BER (Fig. 12). Wraps the reference GFSK
// demodulator with the chip's front-end noise figure; its datasheet
// sensitivity (-97 dBm at BER 1e-3; the paper's plot places tinySDR within
// 2 dB of it) is exposed for the comparison line.
#pragma once

#include <optional>

#include "ble/gfsk.hpp"
#include "ble/packet.hpp"
#include "channel/noise.hpp"

namespace tinysdr::ble {

class Cc2650Model {
 public:
  /// Datasheet sensitivity at BER 10^-3 for 1 Mbps BLE.
  static constexpr double kSensitivityDbm = -97.0;
  /// Receiver noise figure calibrated to that sensitivity.
  static constexpr double kNoiseFigureDb = 5.5;

  explicit Cc2650Model(GfskConfig config = {}) : config_(config) {}

  /// Receive a beacon waveform at a given RSSI; returns the parsed packet
  /// and the measured BER over the air bits (nullopt if the packet failed
  /// CRC or was never found).
  struct Reception {
    ParsedAdv adv;
    double ber;  ///< bit errors / air bits (vs the reference bits)
  };
  [[nodiscard]] std::optional<Reception> receive(
      const dsp::Samples& waveform, const std::vector<bool>& reference_bits,
      int channel_index, Dbm rssi, Rng& rng) const;

  /// Raw bit-error count path (Fig. 12's BER measurement): demodulate and
  /// compare against the reference bits without requiring CRC success.
  [[nodiscard]] double measure_ber(const dsp::Samples& waveform,
                                   const std::vector<bool>& reference_bits,
                                   Dbm rssi, Rng& rng) const;

 private:
  GfskConfig config_;
};

}  // namespace tinysdr::ble
