#include "ble/cc2650.hpp"

namespace tinysdr::ble {

std::optional<Cc2650Model::Reception> Cc2650Model::receive(
    const dsp::Samples& waveform, const std::vector<bool>& reference_bits,
    int channel_index, Dbm rssi, Rng& rng) const {
  channel::AwgnChannel chan{config_.sample_rate(), kNoiseFigureDb, rng};
  auto noisy = chan.apply(waveform, rssi);

  GfskDemodulator demod{config_};
  std::size_t timing = demod.estimate_timing(noisy);
  auto bits = demod.demodulate(noisy, timing);

  auto parsed = parse_air_bits(bits, channel_index);
  if (!parsed) return std::nullopt;

  Reception out;
  out.adv = *parsed;
  out.ber = aligned_ber(reference_bits, bits);
  return out;
}

double Cc2650Model::measure_ber(const dsp::Samples& waveform,
                                const std::vector<bool>& reference_bits,
                                Dbm rssi, Rng& rng) const {
  channel::AwgnChannel chan{config_.sample_rate(), kNoiseFigureDb, rng};
  auto noisy = chan.apply(waveform, rssi);
  GfskDemodulator demod{config_};
  std::size_t timing = demod.estimate_timing(noisy);
  auto bits = demod.demodulate(noisy, timing);
  return aligned_ber(reference_bits, bits);
}

}  // namespace tinysdr::ble
